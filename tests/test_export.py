"""Tests for CSV result export."""

import pytest

from repro.experiments.export import load_rows_csv, rows_to_dicts, save_rows_csv
from repro.experiments.runner import ResultRow


def make_rows():
    return [
        ResultRow(
            suite="casio", workload="dlrm", method="stem", repetition=0,
            error_percent=0.3, speedup=120.0, num_samples=50, num_clusters=20,
        ),
        ResultRow(
            suite="casio", workload="dlrm", method="pka", repetition=0,
            error_percent=9.0, speedup=900.0, num_samples=12, num_clusters=12,
        ),
    ]


class TestExport:
    def test_dataclass_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        assert save_rows_csv(make_rows(), path) == 2
        rows = load_rows_csv(path)
        assert rows[0]["method"] == "stem"
        assert float(rows[1]["error_percent"]) == pytest.approx(9.0)

    def test_mapping_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv([{"a": 1, "b": 2}, {"a": 3, "c": 4}], path)
        rows = load_rows_csv(path)
        assert set(rows[0]) == {"a", "b", "c"}
        assert rows[1]["b"] == ""

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_rows_csv([], tmp_path / "x.csv")

    def test_bad_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_rows_csv([object()], tmp_path / "x.csv")

    def test_rows_to_dicts_as_dict_hook(self):
        class WithAsDict:
            def as_dict(self):
                return {"k": 1}

        assert rows_to_dicts([WithAsDict()]) == [{"k": 1}]
