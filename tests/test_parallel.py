"""Tests for the parallel grid engine (:mod:`repro.parallel`).

The contract under test, in order of importance:

(a) **bit-identity** — ``jobs=N`` produces exactly the rows of
    ``jobs=1``, including N/A rows from infeasible methods and from
    fault plans that kill whole profiles;
(b) **resumability** — a parallel grid checkpoints per cell, a killed
    run resumes to identical rows, and sequential/parallel runs can
    resume each other's checkpoints;
(c) **profile cache** — hits skip collection, every invalidation path
    (seed, workload contents, GPU, tampered or torn entries) recollects,
    and cached profiles are byte-identical to collected ones;
(d) **observability** — worker spans and metrics merge into the parent
    session;
(e) the executor preserves payload order and propagates worker errors.
"""

import json
import math
import os

import numpy as np
import pytest

from repro import obs
from repro.baselines import ProfileStore
from repro.experiments import runner as runner_mod
from repro.experiments.dse import DseWorkloadSpec, run_dse
from repro.experiments.runner import (
    ExperimentConfig,
    run_suite,
    run_workload,
)
from repro.hardware import RTX_2080, get_preset
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel import ProfileCache, resolve_jobs, run_tasks
from repro.resilience import FaultPlan, GridCheckpoint
from repro.workloads import load_workload

METHODS = ["random", "stem"]
NAMES = ["gaussian", "bfs"]


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(repetitions=2, workload_scale=0.01)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def rows_equal(a, b) -> bool:
    """Exact row equality, treating NaN == NaN (N/A rows)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        da, db = ra.as_dict(), rb.as_dict()
        for key in da:
            va, vb = da[key], db[key]
            if (
                isinstance(va, float)
                and isinstance(vb, float)
                and math.isnan(va)
                and math.isnan(vb)
            ):
                continue
            if va != vb:
                return False
    return True


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
def _double(x):
    return x * 2


def _fail_on_two(x):
    if x == 2:
        raise ValueError("payload two is poison")
    return x


class TestRunTasks:
    def test_sequential_path(self):
        seen = []
        out = run_tasks(_double, [1, 2, 3], jobs=1, on_result=lambda i, v: seen.append((i, v)))
        assert out == [2, 4, 6]
        assert seen == [(0, 2), (1, 4), (2, 6)]

    def test_pool_preserves_payload_order(self):
        out = run_tasks(_double, list(range(8)), jobs=2)
        assert out == [2 * i for i in range(8)]

    def test_pool_on_result_covers_every_payload(self):
        seen = {}
        run_tasks(_double, [5, 6, 7], jobs=2, on_result=lambda i, v: seen.update({i: v}))
        assert seen == {0: 10, 1: 12, 2: 14}

    def test_worker_error_propagates(self):
        with pytest.raises(ValueError, match="poison"):
            run_tasks(_fail_on_two, [1, 2, 3], jobs=2)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


# ---------------------------------------------------------------------------
# Property (a): parallel == sequential, bit for bit
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_suite_rows_identical(self):
        config = small_config()
        seq = run_suite("rodinia", config=config, methods=METHODS, workload_names=NAMES)
        par = run_suite(
            "rodinia", config=config, methods=METHODS, workload_names=NAMES, jobs=4
        )
        assert par == seq

    def test_workload_rows_identical(self):
        w = load_workload("casio", "dlrm", scale=0.02, seed=0)
        config = small_config(workload_scale=0.02)
        seq = run_workload(w, config=config, methods=METHODS)
        par = run_workload(w, config=config, methods=METHODS, jobs=3)
        assert par == seq

    def test_infeasible_na_rows_identical(self):
        # PKA profiling is infeasible on HuggingFace-scale workloads;
        # the N/A rows must survive the worker round-trip too.
        w = load_workload("huggingface", "gpt2", scale=0.2, seed=0)
        config = ExperimentConfig(repetitions=2)
        seq = run_workload(w, config=config, methods=["pka", "stem"])
        par = run_workload(w, config=config, methods=["pka", "stem"], jobs=2)
        assert any(not r.feasible for r in seq)
        assert rows_equal(par, seq)

    def test_fault_plan_rows_identical(self):
        plan = FaultPlan(seed=5, nan_rate=0.15, negative_rate=0.05)
        config = small_config(fault_plan=plan)
        seq = run_suite("rodinia", config=config, methods=METHODS, workload_names=NAMES)
        par = run_suite(
            "rodinia", config=config, methods=METHODS, workload_names=NAMES, jobs=2
        )
        assert rows_equal(par, seq)

    def test_unrepairable_faults_degrade_identically(self):
        # drop_rate=1 zeroes every profile entry; repair cannot save it,
        # so every STEM cell (the method that reads the nsys profile at
        # plan time) becomes an N/A row — in both execution modes.
        plan = FaultPlan(seed=5, drop_rate=1.0)
        config = small_config(repetitions=1, fault_plan=plan)
        seq = run_suite(
            "rodinia", config=config, methods=["stem"], workload_names=NAMES
        )
        par = run_suite(
            "rodinia", config=config, methods=["stem"], workload_names=NAMES, jobs=2
        )
        assert all(not r.feasible for r in seq)
        assert rows_equal(par, seq)

    def test_dse_specs_identical(self):
        specs = [
            DseWorkloadSpec("rodinia", "bfs", 0.05, 25),
            DseWorkloadSpec("rodinia", "hotspot", 0.05, 25),
        ]
        seq = run_dse(workloads=specs, methods=["pka", "stem"], repetitions=1)
        par = run_dse(workloads=specs, methods=["pka", "stem"], repetitions=1, jobs=2)
        assert par == seq


# ---------------------------------------------------------------------------
# Property (b): checkpointing under parallel execution
# ---------------------------------------------------------------------------
class TestParallelCheckpoint:
    def _run(self, checkpoint=None, jobs=1):
        return run_suite(
            "rodinia",
            config=small_config(),
            methods=METHODS,
            workload_names=NAMES,
            checkpoint=checkpoint,
            jobs=jobs,
        )

    def test_killed_parallel_grid_resumes_identically(self, tmp_path, monkeypatch):
        clean = self._run()
        path = str(tmp_path / "grid.jsonl")

        # Crash every cell of one workload; the other workload's tasks
        # still land in the checkpoint before the error surfaces.
        real_build = runner_mod.build_plan

        def dying_build(sampler, store, seed):
            if store.workload.name == "bfs":
                raise RuntimeError("simulated worker crash")
            return real_build(sampler, store, seed)

        monkeypatch.setattr(runner_mod, "build_plan", dying_build)
        with pytest.raises(RuntimeError, match="worker crash"):
            self._run(checkpoint=path, jobs=2)
        monkeypatch.setattr(runner_mod, "build_plan", real_build)

        # Whatever made it to disk is complete, valid cells of the
        # surviving workload only.
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        recorded = [l for l in lines if l["kind"] == "row"]
        assert all(l["key"][1] == "gaussian" for l in recorded)

        # Resuming in parallel completes the grid with identical rows...
        resumed = self._run(checkpoint=path, jobs=2)
        assert resumed == clean
        # ...and a *sequential* run can replay the parallel checkpoint.
        assert self._run(checkpoint=path) == clean

    def test_parallel_resume_replays_without_recompute(self, tmp_path, monkeypatch):
        path = str(tmp_path / "grid.jsonl")
        clean = self._run(checkpoint=path, jobs=2)

        def exploding_build(sampler, store, seed):  # pragma: no cover
            raise AssertionError("resume recomputed a checkpointed cell")

        monkeypatch.setattr(runner_mod, "build_plan", exploding_build)
        assert self._run(checkpoint=path, jobs=2) == clean

    def test_sequential_checkpoint_resumed_in_parallel(self, tmp_path, monkeypatch):
        path = str(tmp_path / "grid.jsonl")
        clean = self._run(checkpoint=path)

        def exploding_build(sampler, store, seed):  # pragma: no cover
            raise AssertionError("resume recomputed a checkpointed cell")

        monkeypatch.setattr(runner_mod, "build_plan", exploding_build)
        assert self._run(checkpoint=path, jobs=4) == clean


# ---------------------------------------------------------------------------
# fsync batching
# ---------------------------------------------------------------------------
class TestFsyncBatching:
    def _record_rows(self, checkpoint, n):
        for i in range(n):
            checkpoint.record("s", "w", "m", i, {"repetition": i})

    def test_default_syncs_every_row(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls["n"] += 1
            return real_fsync(fd)

        monkeypatch.setattr(
            "repro.resilience.checkpoint.os.fsync", counting_fsync
        )
        with GridCheckpoint(str(tmp_path / "a.jsonl")) as cp:
            self._record_rows(cp, 6)
        assert calls["n"] == 7  # header + 6 rows (close has nothing left)

    def test_fsync_every_batches_barriers(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls["n"] += 1
            return real_fsync(fd)

        monkeypatch.setattr(
            "repro.resilience.checkpoint.os.fsync", counting_fsync
        )
        with GridCheckpoint(str(tmp_path / "b.jsonl"), fsync_every=4) as cp:
            self._record_rows(cp, 6)
        # header + row 4 + the close() flush of rows 5-6.
        assert calls["n"] == 3

    def test_batched_checkpoint_still_replays(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with GridCheckpoint(path, fsync_every=16) as cp:
            self._record_rows(cp, 5)
        resumed = GridCheckpoint(path)
        assert len(resumed) == 5
        assert resumed.get("s", "w", "m", 3) == {"repetition": 3}
        resumed.close()


# ---------------------------------------------------------------------------
# Property (c): the profile cache
# ---------------------------------------------------------------------------
class TestProfileCache:
    @pytest.fixture()
    def workload(self):
        return load_workload("rodinia", "bfs", scale=0.05, seed=0)

    def test_hit_skips_collection_and_matches_exactly(self, tmp_path, workload):
        cache = ProfileCache(str(tmp_path / "cache"))
        t1 = ProfileStore(workload, RTX_2080, seed=3, cache=cache).execution_times()
        assert (cache.misses, cache.stores) == (1, 1)
        t2 = ProfileStore(workload, RTX_2080, seed=3, cache=cache).execution_times()
        assert cache.hits == 1 and cache.misses == 1
        uncached = ProfileStore(workload, RTX_2080, seed=3).execution_times()
        assert np.array_equal(t1, t2)
        assert np.array_equal(t1, uncached)

    def test_disk_layer_survives_process_boundary(self, tmp_path, workload):
        root = str(tmp_path / "cache")
        ProfileStore(workload, RTX_2080, seed=3, cache=ProfileCache(root)).execution_times()
        # A fresh cache object (= another process) hits the disk layer.
        fresh = ProfileCache(root)
        assert len(fresh) == 1
        ProfileStore(workload, RTX_2080, seed=3, cache=fresh).execution_times()
        assert (fresh.hits, fresh.misses) == (1, 0)

    def test_key_invalidation_axes(self, tmp_path, workload):
        cache = ProfileCache(str(tmp_path / "cache"))
        ProfileStore(workload, RTX_2080, seed=3, cache=cache).execution_times()
        # Different seed: miss.
        assert cache.get(workload, RTX_2080, seed=4) is None
        # Different workload contents (rescaled): miss.
        rescaled = load_workload("rodinia", "bfs", scale=0.1, seed=0)
        assert rescaled.fingerprint() != workload.fingerprint()
        assert cache.get(rescaled, RTX_2080, seed=3) is None
        # Different GPU: miss.
        assert cache.get(workload, get_preset("h100"), seed=3) is None
        # The original key still hits.
        assert cache.get(workload, RTX_2080, seed=3) is not None

    def test_stale_fingerprint_entry_recollected(self, tmp_path, workload):
        """An entry whose stored metadata disagrees with its key is dead."""
        root = str(tmp_path / "cache")
        cache = ProfileCache(root)
        times = ProfileStore(
            workload, RTX_2080, seed=3, cache=cache
        ).execution_times()
        key = ProfileCache.key_for(workload, RTX_2080, 3)
        path = cache._path(key)
        # Forge the entry: right key on disk, wrong fingerprint inside.
        meta = dict(ProfileCache._meta(workload, RTX_2080, 3, "nsys_times"))
        meta["fingerprint"] = "0" * 64
        blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, profile=np.zeros(3), meta=blob)

        fresh = ProfileCache(root)
        assert fresh.get(workload, RTX_2080, 3) is None
        recollected = ProfileStore(
            workload, RTX_2080, seed=3, cache=fresh
        ).execution_times()
        assert fresh.stores == 1  # the bad entry was replaced
        assert np.array_equal(recollected, times)

    def test_torn_entry_recollected(self, tmp_path, workload):
        root = str(tmp_path / "cache")
        cache = ProfileCache(root)
        ProfileStore(workload, RTX_2080, seed=3, cache=cache).execution_times()
        path = cache._path(ProfileCache.key_for(workload, RTX_2080, 3))
        with open(path, "wb") as fh:
            fh.write(b"not an npz file")
        fresh = ProfileCache(root)
        assert fresh.get(workload, RTX_2080, 3) is None

    def test_memory_lru_bounded(self, tmp_path, workload):
        cache = ProfileCache(str(tmp_path / "cache"), max_memory_entries=2)
        for seed in range(4):
            cache.put(workload, RTX_2080, seed, np.full(4, float(seed)))
        assert len(cache._memory) == 2
        assert len(cache) == 4  # disk keeps everything

    def test_grid_reuses_cached_profiles(self, tmp_path):
        config = small_config(repetitions=1)
        cache = ProfileCache(str(tmp_path / "cache"))
        baseline = run_suite(
            "rodinia", config=config, methods=METHODS, workload_names=NAMES
        )
        first = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            profile_cache=cache,
        )
        misses_after_first = cache.misses
        again = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            profile_cache=cache,
        )
        assert cache.misses == misses_after_first  # warm: no recollection
        assert cache.hits > 0
        # Cached and uncached rows are bit-identical.
        assert first == baseline
        assert again == baseline
        # The parallel path reads the same on-disk cache.
        par = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            jobs=2,
            profile_cache=cache,
        )
        assert par == baseline


# ---------------------------------------------------------------------------
# Property (d): observability merging
# ---------------------------------------------------------------------------
class TestObsMerging:
    def test_tracer_ingest_remaps_and_tags(self):
        remote = Tracer()
        with remote.span("outer"):
            with remote.span("inner"):
                pass
        parent = Tracer()
        with parent.span("local"):
            pass
        count = parent.ingest(
            [s.to_dict() for s in remote.finished()],
            worker="w-1",
            epoch_wall=remote.epoch_wall,
        )
        assert count == 2
        spans = {s.name: s for s in parent.finished()}
        assert spans["inner"].attrs["worker"] == "w-1"
        # Parent link survived the id remap (completion order is
        # child-first, so this exercises the two-pass mapping).
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].span_id != 1  # remapped off the remote ids
        assert spans["local"].attrs.get("worker") is None

    def test_metrics_state_roundtrip(self):
        a = MetricsRegistry()
        a.inc("jobs.done", 3)
        a.set_gauge("depth", 2.0)
        for v in (1.0, 2.0, 3.0):
            a.observe("lat", v)
        b = MetricsRegistry()
        b.inc("jobs.done", 4)
        b.observe("lat", 5.0)
        b.merge_state(a.export_state())
        snap = b.snapshot()
        assert snap["counters"]["jobs.done"] == 7
        assert snap["gauges"]["depth"] == 2.0
        assert snap["histograms"]["lat"]["count"] == 4
        assert snap["histograms"]["lat"]["sum"] == 11.0
        assert snap["histograms"]["lat"]["max"] == 5.0

    def test_parallel_grid_merges_worker_obs(self):
        session = obs.configure()
        try:
            run_suite(
                "rodinia",
                config=small_config(repetitions=1),
                methods=["stem"],
                workload_names=NAMES,
                jobs=2,
            )
            spans = session.tracer.finished()
            worker_spans = [s for s in spans if s.attrs.get("worker")]
            assert worker_spans, "no worker spans were merged into the parent"
            assert any(s.name == "parallel.grid_task" for s in worker_spans)
            counters = session.metrics.snapshot()["counters"]
            assert counters.get("parallel.grid.tasks_completed", 0) == 2
            # Worker-side counters folded into the parent registry.
            assert counters.get("sim.kernels_executed", 0) > 0
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# Workload fingerprinting (the cache's key ingredient)
# ---------------------------------------------------------------------------
class TestWorkloadFingerprint:
    def test_deterministic_and_content_sensitive(self):
        a = load_workload("rodinia", "bfs", scale=0.05, seed=0)
        b = load_workload("rodinia", "bfs", scale=0.05, seed=0)
        assert a.fingerprint() == b.fingerprint()
        other_seed = load_workload("rodinia", "bfs", scale=0.05, seed=1)
        other_scale = load_workload("rodinia", "bfs", scale=0.1, seed=0)
        other_wl = load_workload("rodinia", "hotspot", scale=0.05, seed=0)
        fps = {
            a.fingerprint(),
            other_seed.fingerprint(),
            other_scale.fingerprint(),
            other_wl.fingerprint(),
        }
        assert len(fps) == 4
