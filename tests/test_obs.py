"""Tests for the observability layer (repro.obs)."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.baselines import ProfileStore
from repro.core import StemRootSampler, evaluate_plan
from repro.hardware import get_preset
from repro.workloads import load_workload


def _small_store(scale=0.5, seed=0):
    workload = load_workload("rodinia", "bfs", scale=scale, seed=seed)
    return ProfileStore(workload, get_preset("rtx2080"), seed=seed)


class TestTracer:
    def test_span_nesting(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0
        names = [s.name for s in tracer.finished()]
        assert names == ["inner", "outer"]  # completion order

    def test_span_timing_and_attrs(self):
        tracer = obs.Tracer()
        with tracer.span("work", workload="bfs") as sp:
            sp.attrs["extra"] = 7
        assert sp.dur_us >= 0.0
        assert sp.attrs == {"workload": "bfs", "extra": 7}
        assert sp.status == "ok"

    def test_exception_safety(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"
        assert tracer.current() is None  # stack unwound

    def test_thread_safety(self):
        tracer = obs.Tracer()

        def worker():
            for _ in range(50):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished()
        assert len(spans) == 4 * 50 * 2
        # Nesting stayed per-thread: every inner's parent is on its thread.
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name == "inner":
                assert by_id[s.parent_id].thread_id == s.thread_id


class TestNoopMode:
    def test_disabled_produces_zero_events(self):
        assert not obs.is_enabled()
        with obs.span("nothing", attr=1):
            obs.inc("some.counter", 5)
            obs.observe("some.hist", 1.0)
            obs.set_gauge("some.gauge", 2.0)
            obs.log_event("some.event", detail="x")
        # A later session sees none of it.
        with obs.scoped() as session:
            assert len(session.tracer) == 0
            assert session.metrics.snapshot() == {
                "counters": {}, "gauges": {}, "histograms": {}
            }
            assert len(session.events) == 0

    def test_noop_span_attr_writes_discarded(self):
        with obs.span("x") as sp:
            sp.attrs["k"] = "v"
        assert obs.NOOP_SPAN.attrs == {}

    def test_scoped_restores_previous_state(self):
        assert obs.current() is None
        with obs.scoped() as session:
            assert obs.current() is session
            with obs.scoped() as nested:
                assert obs.current() is nested
            assert obs.current() is session
        assert obs.current() is None

    def test_pipeline_bit_identical_with_and_without_obs(self):
        plain = StemRootSampler().build_plan_from_store(_small_store(), seed=0)
        with obs.scoped():
            traced = StemRootSampler().build_plan_from_store(
                _small_store(), seed=0
            )
        assert plain.to_json() == traced.to_json()


class TestMetrics:
    def test_counter_gauge(self):
        reg = obs.MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 2.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_histogram_percentiles(self):
        h = obs.Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.min == 1.0 and h.max == 100.0
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_histogram_reservoir_bounded_and_deterministic(self):
        a, b = obs.Histogram("a"), obs.Histogram("b")
        for v in range(20_000):
            a.observe(float(v))
            b.observe(float(v))
        assert len(a._reservoir) == 4096
        assert a.snapshot() == b.snapshot()
        # Percentiles still roughly track the true distribution.
        assert a.percentile(50) == pytest.approx(10_000, rel=0.1)

    def test_empty_histogram_snapshot(self):
        assert obs.Histogram("e").snapshot()["count"] == 0


class TestExport:
    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        with obs.scoped() as session:
            with obs.span("sampler.build_plan", workload="bfs"):
                with obs.span("root.split", invocations=np.int64(7)):
                    pass
            path = tmp_path / "trace.json"
            count = session.write_trace(str(path))
        assert count == 2
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {e["name"] for e in events} == {"sampler.build_plan", "root.split"}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
        # numpy attr values were coerced to JSON natives.
        (root,) = [e for e in events if e["name"] == "root.split"]
        assert root["args"]["invocations"] == 7
        # And the loader reads the same events back.
        assert len(obs.load_chrome_trace(str(path))) == 2

    def test_metrics_json_round_trip(self, tmp_path):
        with obs.scoped() as session:
            obs.inc("root.splits_accepted", 3)
            obs.observe("root.split_depth", 2.0)
            path = tmp_path / "metrics.json"
            session.write_metrics(str(path))
        loaded = obs.load_metrics_json(str(path))
        assert loaded["counters"]["root.splits_accepted"] == 3
        assert loaded["histograms"]["root.split_depth"]["count"] == 1


class TestEvents:
    def test_level_filtering(self):
        log = obs.EventLog(level="info")
        assert not log.emit("quiet", level="debug")
        assert log.emit("loud", level="warning")
        assert [r["event"] for r in log.records()] == ["loud"]

    def test_jsonl_lines_are_strict_json(self, tmp_path):
        log = obs.EventLog(level="debug")
        log.emit("x", value=np.float64(1.5), inf=float("inf"), arr=[1, 2])
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 1
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["value"] == 1.5
        assert record["inf"] == "inf"
        assert record["arr"] == [1, 2]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs.EventLog(level="loud")


class TestRunReport:
    def test_phases_and_self_time(self):
        with obs.scoped() as session:
            plan = StemRootSampler().build_plan_from_store(
                _small_store(), seed=0
            )
            evaluate_plan(plan, _small_store().execution_times())
            report = session.run_report()
        for phase in ("profile", "cluster", "plan", "simulate"):
            assert phase in report.phases, phase
            assert report.phases[phase].self_us > 0.0
        # Self-time never exceeds total span time.
        for summary in report.phases.values():
            assert summary.self_us <= summary.total_us + 1e-6
        text = report.to_text()
        assert "Wall-clock by phase" in text
        assert "root.splits_accepted" in text

    def test_report_from_saved_files_matches_live(self, tmp_path):
        with obs.scoped() as session:
            plan = StemRootSampler().build_plan_from_store(
                _small_store(), seed=0
            )
            evaluate_plan(plan, _small_store().execution_times())
            live = session.run_report()
            trace_path = tmp_path / "t.json"
            metrics_path = tmp_path / "m.json"
            session.write_trace(str(trace_path))
            session.write_metrics(str(metrics_path))
        loaded = obs.build_run_report(
            obs.load_chrome_trace(str(trace_path)),
            obs.load_metrics_json(str(metrics_path)),
        )
        assert set(loaded.phases) == set(live.phases)
        for phase, summary in live.phases.items():
            assert loaded.phases[phase].spans == summary.spans
            assert loaded.phases[phase].self_us == pytest.approx(
                summary.self_us, rel=1e-6
            )
        assert loaded.counters == live.counters


class TestInstrumentation:
    def test_sample_pipeline_populates_series(self):
        with obs.scoped() as session:
            store = _small_store()
            plan = StemRootSampler().build_plan_from_store(store, seed=0)
            evaluate_plan(plan, store.execution_times())
            snap = session.metrics.snapshot()
        assert snap["counters"]["root.splits_accepted"] > 0
        assert snap["counters"]["stem.kkt_calls"] > 0
        assert snap["counters"]["sim.kernels_executed"] > 0
        assert snap["counters"]["sampler.samples_allocated"] == plan.num_samples
        assert snap["histograms"]["root.split_depth"]["count"] > 0
        span_names = {s.name for s in session.tracer.finished()}
        assert {"profile.nsys", "root.split", "sampler.build_plan",
                "sampler.allocate", "sim.evaluate_plan"} <= span_names

    def test_debug_events_record_split_decisions(self):
        with obs.scoped(log_level="debug") as session:
            StemRootSampler().build_plan_from_store(_small_store(), seed=0)
            decisions = session.events.records("root.split_decision")
        assert decisions
        for record in decisions:
            assert set(record) >= {"depth", "size", "accepted",
                                   "tau_old", "tau_new"}
        accepted = sum(bool(r["accepted"]) for r in decisions)
        assert accepted == session.metrics.counter("root.splits_accepted").value

    def test_simulator_metrics(self):
        from repro.sim import GpuSimulator

        with obs.scoped() as session:
            workload = load_workload("rodinia", "bfs", scale=0.2, seed=0)
            GpuSimulator(get_preset("rtx2080")).simulate_workload(
                workload, indices=range(3), seed=0
            )
            snap = session.metrics.snapshot()
        assert snap["counters"]["sim.kernels_executed"] == 3
        assert snap["histograms"]["sim.kernel_cycles"]["count"] == 3

    def test_scalability_uses_spans(self):
        from repro.experiments.scalability import run_scalability

        with obs.scoped() as session:
            points = run_scalability(scales=(0.02, 0.05), suite="rodinia",
                                     workload_name="bfs")
            profile_spans = session.tracer.find("profile.scalability")
            plan_spans = session.tracer.find("sampler.scalability")
        assert len(points) == 2
        assert len(profile_spans) == len(plan_spans) == 2
        for point, prof, plan in zip(points, profile_spans, plan_spans):
            assert point.profile_seconds == pytest.approx(prof.dur_us / 1e6)
            assert point.plan_seconds == pytest.approx(plan.dur_us / 1e6)

    def test_scalability_works_disabled(self):
        from repro.experiments.scalability import run_scalability

        assert not obs.is_enabled()
        points = run_scalability(scales=(0.02,), suite="rodinia",
                                 workload_name="bfs")
        assert points[0].plan_seconds > 0.0
