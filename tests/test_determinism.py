"""Reproducibility audit: every pipeline stage is deterministic per seed.

The paper's artifact pre-fills CSVs because profiling runs vary; this
reproduction instead makes every stage a pure function of its seed, so
results regenerate bit-identically — these tests pin that property.
"""

import numpy as np
import pytest

from repro.baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
    TbpointSampler,
)
from repro.core import StemRootSampler
from repro.hardware import RTX_2080
from repro.multigpu import EtStemSampler, TimelineSimulator, data_parallel_training
from repro.sim import GpuSimulator
from repro.workloads import load_workload


def plans_equal(a, b) -> bool:
    if a.num_clusters != b.num_clusters or a.num_samples != b.num_samples:
        return False
    for ca, cb in zip(a.clusters, b.clusters):
        if ca.label != cb.label or ca.member_count != cb.member_count:
            return False
        if not np.array_equal(ca.sampled_indices, cb.sampled_indices):
            return False
    return True


@pytest.fixture(scope="module")
def workload():
    return load_workload("casio", "dlrm", scale=0.03, seed=0)


@pytest.fixture(scope="module")
def store(workload):
    return ProfileStore(workload, RTX_2080, seed=7)


class TestPlanDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomSampler(0.05),
            lambda: PkaSampler(),
            lambda: SieveSampler(),
            lambda: PhotonSampler(),
            lambda: TbpointSampler(),
        ],
        ids=["random", "pka", "sieve", "photon", "tbpoint"],
    )
    def test_baselines_deterministic(self, store, factory):
        a = factory().build_plan(store, seed=11)
        b = factory().build_plan(store, seed=11)
        assert plans_equal(a, b)

    def test_stem_deterministic(self, store):
        a = StemRootSampler().build_plan_from_store(store, seed=11)
        b = StemRootSampler().build_plan_from_store(store, seed=11)
        assert plans_equal(a, b)

    def test_stem_seed_sensitivity(self, store):
        a = StemRootSampler().build_plan_from_store(store, seed=1)
        b = StemRootSampler().build_plan_from_store(store, seed=2)
        # Cluster structure may agree, but the random draws must differ.
        assert not plans_equal(a, b)

    def test_profiles_deterministic(self, workload):
        a = ProfileStore(workload, RTX_2080, seed=3).execution_times()
        b = ProfileStore(workload, RTX_2080, seed=3).execution_times()
        assert np.array_equal(a, b)


class TestSimulatorDeterminism:
    def test_cycle_counts_repeatable(self):
        w = load_workload("rodinia", "bfs", scale=0.2, seed=0)
        a = GpuSimulator(RTX_2080).cycle_counts(w, seed=5)
        b = GpuSimulator(RTX_2080).cycle_counts(w, seed=5)
        assert np.array_equal(a, b)

    def test_multigpu_evaluation_repeatable(self):
        et = data_parallel_training(num_gpus=2, layers=3, steps=5, seed=0)
        sim = TimelineSimulator()
        a = EtStemSampler().evaluate(et, sim, seed=4)
        b = EtStemSampler().evaluate(et, sim, seed=4)
        assert a.estimated_makespan == b.estimated_makespan
        assert a.num_sampled == b.num_sampled
