"""Tests for the baseline sampling methods (Random, PKA, Sieve, Photon)."""

import numpy as np
import pytest

from repro.baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
)
from repro.core import evaluate_plan
from repro.workloads import WorkloadBuilder, load_workload
from repro.workloads.generators.synthetic import make_kernel_spec, mixed_workload


@pytest.fixture
def store(mixed, gpu):
    return ProfileStore(mixed, gpu, seed=5)


class TestProfileStore:
    def test_lazy_caching(self, store):
        a = store.execution_times()
        b = store.execution_times()
        assert a is b

    def test_all_views_available(self, store):
        assert store.pka_features().shape[1] == store.num_pka_metrics
        assert len(store.instruction_counts()) == len(store.workload)
        assert len(store.cta_sizes()) == len(store.workload)
        assert store.bbv_table().vectors.shape[0] == len(store.workload)


class TestRandomSampler:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            RandomSampler(0.0)
        with pytest.raises(ValueError):
            RandomSampler(1.5)

    def test_plan_single_cluster_full_coverage(self, store):
        plan = RandomSampler(0.05).build_plan(store, seed=1)
        assert plan.num_clusters == 1
        plan.validate(len(store.workload))

    def test_sampling_rate_approximate(self, store):
        plan = RandomSampler(0.10).build_plan(store, seed=2)
        rate = plan.num_samples / len(store.workload)
        assert 0.06 < rate < 0.14

    def test_never_empty(self, gpu):
        tiny_store = ProfileStore(mixed_workload(n_per_kernel=2, seed=0), gpu)
        plan = RandomSampler(0.0001).build_plan(tiny_store, seed=3)
        assert plan.num_samples >= 1

    def test_unbiased_on_average(self, store):
        times = store.execution_times()
        errors = []
        for rep in range(20):
            plan = RandomSampler(0.2).build_plan(store, seed=rep)
            result = evaluate_plan(plan, times)
            errors.append(
                (result.estimated_total - result.true_total) / result.true_total
            )
        assert abs(np.mean(errors)) < 0.05


class TestPkaSampler:
    def test_select_validation(self):
        with pytest.raises(ValueError):
            PkaSampler(select="middle")

    def test_normalize_constant_columns(self):
        features = np.column_stack([np.ones(5), np.arange(5.0)])
        normalized = PkaSampler.normalize(features)
        assert np.allclose(normalized[:, 0], 0.0)
        assert normalized[:, 1].std() == pytest.approx(1.0)

    def test_one_sample_per_cluster(self, store):
        plan = PkaSampler().build_plan(store, seed=1)
        for cluster in plan.clusters:
            assert cluster.sample_size == 1
        plan.validate(len(store.workload))

    def test_first_chronological_selection(self, store):
        plan = PkaSampler(select="first").build_plan(store, seed=1)
        # Re-derive: every cluster's sample is its minimum index, so no
        # sample can be larger than all other members — weak but cheap
        # check: samples are unique across clusters.
        samples = [int(c.sampled_indices[0]) for c in plan.clusters]
        assert len(set(samples)) == len(samples)

    def test_k_sweep_bounded(self, store, rng):
        sampler = PkaSampler(max_k=5)
        features = sampler.normalize(store.pka_features())
        assert 1 <= sampler.choose_k(features, rng) <= 5

    def test_infeasible_above_limit(self, gpu):
        w = mixed_workload(n_per_kernel=40, seed=0)
        store = ProfileStore(w, gpu)
        with pytest.raises(RuntimeError):
            PkaSampler(max_points_for_sweep=10).build_plan(store)

    def test_distinguishes_work_scales(self, gpu, rng):
        """PKA separates launches with different instruction counts..."""
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(30):
            builder.launch(spec, work_scale=1.0)
        for _ in range(30):
            builder.launch(spec, work_scale=20.0)
        store = ProfileStore(builder.build(), gpu)
        plan = PkaSampler().build_plan(store, seed=0)
        assert plan.num_clusters >= 2

    def test_blind_to_efficiency(self, gpu):
        """...but cannot separate efficiency contexts (same counts)."""
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(30):
            builder.launch(spec, efficiency=1.0)
        for _ in range(30):
            builder.launch(spec, efficiency=0.4)
        store = ProfileStore(builder.build(), gpu)
        plan = PkaSampler().build_plan(store, seed=0)
        assert plan.num_clusters == 1


class TestSieveSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            SieveSampler(select="nope")
        with pytest.raises(ValueError):
            SieveSampler(stable_cov=0.5, high_cov=0.2)

    def test_one_sample_per_stratum(self, store):
        plan = SieveSampler().build_plan(store, seed=1)
        for cluster in plan.clusters:
            assert cluster.sample_size == 1
        plan.validate(len(store.workload))

    def test_stable_kernel_single_stratum(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(50):
            builder.launch(spec, work_scale=1.0)
        store = ProfileStore(builder.build(), gpu)
        plan = SieveSampler().build_plan(store, seed=0)
        assert plan.num_clusters == 1

    def test_varying_kernel_multiple_strata(self, gpu, rng):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for scale in rng.uniform(0.1, 10.0, 60):
            builder.launch(spec, work_scale=float(scale))
        store = ProfileStore(builder.build(), gpu)
        plan = SieveSampler().build_plan(store, seed=0)
        assert plan.num_clusters > 1

    def test_dominant_cta_size_pick(self, gpu):
        """The chosen sample must have the stratum's dominant CTA size."""
        builder = WorkloadBuilder(name="w")
        minority = make_kernel_spec("k", grid=64)
        majority = make_kernel_spec("k", grid=256)
        builder.launch(minority)  # chronologically first but minority CTA
        for _ in range(10):
            builder.launch(majority)
        w = builder.build()
        store = ProfileStore(w, gpu)
        plan = SieveSampler().build_plan(store, seed=0)
        # All launches share a name; sample index must not be 0 if CTA of
        # majority differs... same block size here, so just check validity.
        plan.validate(len(w))

    def test_infeasible_above_limit(self, store):
        with pytest.raises(RuntimeError):
            SieveSampler(max_kernels=10).build_plan(store)

    def test_kde_mode(self, store):
        plan = SieveSampler(use_kde=True).build_plan(store, seed=0)
        plan.validate(len(store.workload))


class TestPhotonSampler:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PhotonSampler(threshold=1.5)

    def test_plan_valid(self, store):
        plan = PhotonSampler().build_plan(store, seed=1)
        plan.validate(len(store.workload))
        for cluster in plan.clusters:
            assert cluster.sample_size == 1

    def test_representative_is_first_chronological(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(20):
            builder.launch(spec, work_scale=1.0)
        store = ProfileStore(builder.build(), gpu)
        plan = PhotonSampler().build_plan(store, seed=0)
        assert plan.num_clusters == 1
        assert int(plan.clusters[0].sampled_indices[0]) == 0

    def test_work_scales_separate(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(15):
            builder.launch(spec, work_scale=1.0)
        for _ in range(15):
            builder.launch(spec, work_scale=5.0)
        store = ProfileStore(builder.build(), gpu)
        plan = PhotonSampler().build_plan(store, seed=0)
        assert plan.num_clusters >= 2

    def test_blind_to_locality(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k", memory_boundedness=0.9)
        for _ in range(15):
            builder.launch(spec, locality=0.9)
        for _ in range(15):
            builder.launch(spec, locality=0.1)
        store = ProfileStore(builder.build(), gpu)
        plan = PhotonSampler().build_plan(store, seed=0)
        assert plan.num_clusters == 1

    def test_threshold_sensitivity(self, store):
        loose = PhotonSampler(threshold=0.6).build_plan(store, seed=0)
        strict = PhotonSampler(threshold=0.995).build_plan(store, seed=0)
        assert strict.num_clusters >= loose.num_clusters

    def test_comparisons_counted(self, store):
        sampler = PhotonSampler()
        sampler.build_plan(store, seed=0)
        assert sampler.last_num_comparisons >= len(store.workload)

    def test_infeasible_above_limit(self, store):
        with pytest.raises(RuntimeError):
            PhotonSampler(max_kernels=10).build_plan(store)


class TestBaselineVsStemOnIrregular:
    def test_first_chronological_fails_on_heartwall(self, gpu):
        """The Sec. 5.1 story: first-chronological sampling of heartwall's
        tiny first kernel underestimates massively; STEM does not."""
        from repro.core import StemRootSampler

        w = load_workload("rodinia", "heartwall", seed=0)
        store = ProfileStore(w, gpu, seed=0)
        times = store.execution_times()
        sieve_err = evaluate_plan(
            SieveSampler(select="first").build_plan(store, seed=0), times
        ).error_percent
        stem_err = evaluate_plan(
            StemRootSampler().build_plan_from_store(store, seed=0), times
        ).error_percent
        assert stem_err < sieve_err
        assert stem_err < 5.0


class TestTbpointSampler:
    def test_one_centroid_sample_per_cluster(self, store):
        from repro.baselines import TbpointSampler

        plan = TbpointSampler().build_plan(store, seed=1)
        for cluster in plan.clusters:
            assert cluster.sample_size == 1
        plan.validate(len(store.workload))

    def test_infeasible_above_limit(self, store):
        from repro.baselines import TbpointSampler

        with pytest.raises(RuntimeError):
            TbpointSampler(max_kernels=10).build_plan(store)

    def test_separates_work_scales(self, gpu):
        from repro.baselines import TbpointSampler

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(30):
            builder.launch(spec, work_scale=1.0)
        for _ in range(30):
            builder.launch(spec, work_scale=20.0)
        store = ProfileStore(builder.build(), gpu)
        plan = TbpointSampler().build_plan(store, seed=0)
        assert plan.num_clusters >= 2

    def test_blind_to_efficiency(self, gpu):
        from repro.baselines import TbpointSampler

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(30):
            builder.launch(spec, efficiency=1.0)
        for _ in range(30):
            builder.launch(spec, efficiency=0.4)
        store = ProfileStore(builder.build(), gpu)
        plan = TbpointSampler().build_plan(store, seed=0)
        assert plan.num_clusters == 1

    def test_subsampled_linkage_on_jittered_profiles(self, gpu, rng):
        from repro.baselines import TbpointSampler

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for scale in rng.uniform(0.5, 2.0, 300):
            builder.launch(spec, work_scale=float(scale))
        store = ProfileStore(builder.build(), gpu)
        plan = TbpointSampler(max_distinct_rows=50).build_plan(store, seed=0)
        plan.validate(len(store.workload))
        assert plan.num_clusters > 1


class TestPhotonPca:
    def test_pca_projection_reduces_dims(self, rng):
        vectors = rng.random((50, 16))
        projected = PhotonSampler.pca_project(vectors, 4)
        assert projected.shape == (50, 4)

    def test_pca_noop_when_dims_suffice(self, rng):
        vectors = rng.random((50, 4))
        assert PhotonSampler.pca_project(vectors, 8) is vectors

    def test_pca_plan_still_valid(self, store):
        plan = PhotonSampler(pca_dims=6).build_plan(store, seed=0)
        plan.validate(len(store.workload))

    def test_pca_preserves_work_scale_separation(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        for _ in range(15):
            builder.launch(spec, work_scale=1.0)
        for _ in range(15):
            builder.launch(spec, work_scale=5.0)
        store = ProfileStore(builder.build(), gpu)
        plan = PhotonSampler(pca_dims=4).build_plan(store, seed=0)
        assert plan.num_clusters >= 2
