"""Tests for aggregation, histograms, and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    MethodAggregate,
    TimeHistogram,
    aggregate_results,
    classify_times,
    format_value,
    harmonic_mean,
    peak_ranges,
    render_histogram,
    render_series,
    render_table,
)


class TestHarmonicMean:
    def test_basic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([1.0, 1000.0]) < 2.1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_infinite_entries_ignored_in_reciprocal(self):
        assert harmonic_mean([float("inf"), 2.0]) == pytest.approx(4.0)


class TestMethodAggregate:
    def test_means(self):
        agg = MethodAggregate("stem")
        agg.add(1.0, 10.0)
        agg.add(3.0, 30.0)
        assert agg.mean_error == pytest.approx(2.0)
        assert agg.mean_speedup == pytest.approx(15.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MethodAggregate("x").mean_error

    def test_aggregate_results_groups(self):
        rows = [
            {"method": "a", "error_percent": 1.0, "speedup": 2.0},
            {"method": "a", "error_percent": 3.0, "speedup": 2.0},
            {"method": "b", "error_percent": 5.0, "speedup": 4.0},
        ]
        aggs = aggregate_results(rows)
        assert set(aggs) == {"a", "b"}
        assert aggs["a"].mean_error == pytest.approx(2.0)


class TestHistogram:
    def test_counts_sum_to_n(self, rng):
        times = rng.random(500)
        hist = TimeHistogram.from_times(times, bins=20)
        assert hist.counts.sum() == 500
        assert hist.num_bins == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeHistogram.from_times(np.array([]))

    def test_normalized(self, rng):
        hist = TimeHistogram.from_times(rng.random(100))
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_classify_narrow(self, rng):
        shape = classify_times(rng.normal(100, 1.0, 800))
        assert shape.label == "narrow"
        assert shape.num_peaks == 1

    def test_classify_wide(self, rng):
        times = np.abs(rng.lognormal(3.0, 0.6, 800))
        shape = classify_times(times)
        assert shape.label in ("wide", "multi-peak+wide")
        assert shape.cov > 0.25

    def test_classify_multipeak(self, rng):
        times = np.concatenate([rng.normal(10, 0.2, 400), rng.normal(20, 0.2, 400)])
        shape = classify_times(times)
        assert shape.label.startswith("multi-peak")
        assert shape.num_peaks >= 2

    def test_render_histogram_lines(self, rng):
        art = render_histogram(rng.random(100), bins=10, title="demo")
        lines = art.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 11

    def test_peak_ranges_sorted(self):
        times = np.array([1.0, 2.0, 10.0, 11.0])
        labels = np.array([0, 0, 1, 1])
        ranges = peak_ranges(times, labels)
        assert ranges == [(1.0, 2.0), (10.0, 11.0)]


class TestReporting:
    def test_format_value(self):
        assert format_value(1.23456) == "1.23"
        assert format_value(123456.0) == "123,456"
        assert format_value(float("nan")) == "N/A"
        assert format_value("abc") == "abc"

    def test_render_table_alignment(self):
        table = render_table(["name", "v"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:2] + lines[3:])

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series(
            "eps",
            {"speedup": {0.03: 70.0, 0.25: 220.0}, "error": {0.03: 0.2}},
        )
        assert "eps" in text
        assert "N/A" in text  # missing error point at 0.25


class TestDistributionValidation:
    def test_identical_distributions_match(self, rng):
        from repro.analysis import weighted_ks_statistic

        values = rng.lognormal(0, 0.5, 400)
        assert weighted_ks_statistic(values, values) < 1e-9

    def test_disjoint_distributions_max_gap(self, rng):
        from repro.analysis import weighted_ks_statistic

        a = rng.normal(0, 0.1, 200)
        b = rng.normal(100, 0.1, 200)
        assert weighted_ks_statistic(a, b) > 0.99

    def test_weights_matter(self, rng):
        from repro.analysis import weighted_ks_statistic

        full = np.concatenate([np.zeros(500), np.ones(500)])
        samples = np.array([0.0, 1.0])
        balanced = weighted_ks_statistic(full, samples, np.array([1.0, 1.0]))
        skewed = weighted_ks_statistic(full, samples, np.array([9.0, 1.0]))
        assert balanced < skewed

    def test_validation_errors(self, rng):
        from repro.analysis import weighted_ks_statistic

        with pytest.raises(ValueError):
            weighted_ks_statistic(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            weighted_ks_statistic(np.ones(3), np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            weighted_ks_statistic(np.ones(3), np.ones(2), np.zeros(2))

    def test_stem_plan_matches_distribution(self):
        """STEM's weighted samples reproduce the full time distribution;
        this is the Figure 14 claim in distribution form."""
        from repro.analysis import validate_distribution
        from repro.baselines import ProfileStore
        from repro.core import StemRootSampler
        from repro.hardware import RTX_2080
        from repro.workloads.generators.synthetic import mixed_workload

        workload = mixed_workload(n_per_kernel=800, seed=3)
        store = ProfileStore(workload, RTX_2080, seed=3)
        times = store.execution_times()
        plan = StemRootSampler(epsilon=0.02).build_plan(workload, times, seed=1)
        match = validate_distribution(plan, times)
        assert match.matches, match.ks_statistic

    def test_single_sample_plan_mismatches_multimodal(self):
        from repro.analysis import validate_distribution
        from repro.core.plan import PlanCluster, SamplingPlan

        times = np.concatenate([np.full(500, 1.0), np.full(500, 10.0)])
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("all", 1000, np.array([0]))],
        )
        match = validate_distribution(plan, times)
        assert not match.matches
