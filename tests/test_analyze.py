"""Tests for the ``repro analyze`` whole-program determinism analyzer.

Covers: the three interprocedural passes firing on their fixture
mini-packages (and staying silent on the clean counterparts), the
lint-tier blind spot (a picklable worker that is transitively impure),
exemption-justification enforcement, report filtering vs whole-graph
loading, the CLI exit-code contract, ``--changed``, and the two
acceptance invariants — the real ``src/repro`` tree analyzes clean with
an empty baseline, and deleting a field from an existing
``memo_identity()`` makes the analyzer fail *without* touching
pyproject.toml.
"""

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import load_config, run_lint
from repro.lint import config as lint_config
from repro.lint.config import LintUsageError

if lint_config.tomllib is None:  # pragma: no cover - 3.9/3.10 without tomli
    pytest.skip(
        "analysis tests need a TOML parser (stdlib tomllib on 3.11+, "
        "the tomli package otherwise)",
        allow_module_level=True,
    )

from repro.analysis.engine import build_graph, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "analysis_fixtures"
FIXTURE_CONFIG = str(FIXTURES / "pyproject.toml")
LINT_FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_CONFIG = str(REPO_ROOT / "pyproject.toml")


def analyze_fixture(**kwargs):
    config = load_config(FIXTURE_CONFIG)
    return run_analysis(config, **kwargs)


def findings_for(result, rule, path=None):
    return [
        f
        for f in result.findings
        if f.rule == rule and (path is None or f.path == path)
    ]


@pytest.fixture(scope="module")
def fixture_result():
    return analyze_fixture()


class TestSeedFlow:
    def test_direct_and_interprocedural_taint(self, fixture_result):
        found = findings_for(fixture_result, "seed-flow", "seedpkg/build.py")
        messages = {f.line: f.message for f in found}
        assert set(messages) == {10, 21, 26}
        # Taint that arrived through a helper names the call chain.
        assert "via time_like()" in messages[10]
        assert "via wall_seed()" in messages[21]
        assert "process-salted hash()" in messages[26]

    def test_clean_helpers_do_not_fire(self, fixture_result):
        # fine() (explicit inputs) and fine_laundered() (sorted() over a
        # set) live below line 28 and must stay silent.
        found = findings_for(fixture_result, "seed-flow", "seedpkg/build.py")
        assert all(f.line <= 26 for f in found)

    def test_generator_escape_to_pool_worker(self, fixture_result):
        found = findings_for(fixture_result, "seed-flow", "seedpkg/pool.py")
        assert len(found) == 1
        message = found[0].message
        assert "_SHARED_RNG" in message
        assert "_jitter" in message  # the touching function, one hop deep
        assert "reachable from a pool worker" in message


class TestPoolPurity:
    def test_transitive_global_write(self, fixture_result):
        found = findings_for(fixture_result, "pool-safety", "poolpkg/workers.py")
        assert len(found) == 1
        finding = found[0]
        # Anchored at the effect site, not the dispatch site.
        assert finding.line == 9
        assert "_worker -> _accumulate" in finding.message
        assert "mutates module global '_RESULTS'" in finding.message

    def test_lint_tier_blind_spot(self):
        """The fixture the whole tier exists for: lint passes, analyze fails."""
        config = load_config(str(LINT_FIXTURES / "pyproject.toml"))
        lint_result = run_lint(config, paths=["bad_pool_transitive.py"])
        assert lint_result.clean  # name-based rule sees a picklable worker

        analysis = run_analysis(config, paths=["bad_pool_transitive.py"])
        found = findings_for(analysis, "pool-safety", "bad_pool_transitive.py")
        assert len(found) == 1
        assert "_worker -> _remember" in found[0].message


class TestCacheKeySoundness:
    def test_missing_field_on_implicitly_discovered_class(self, fixture_result):
        found = findings_for(
            fixture_result, "cache-key-soundness", "cachepkg/model.py"
        )
        assert len(found) == 1
        assert "Estimator.beta" in found[0].message
        assert "Estimator.predict()" in found[0].message

    def test_justified_exemption_is_clean(self, fixture_result):
        assert not findings_for(
            fixture_result, "cache-key-soundness", "cachepkg/exempt_ok.py"
        )

    def test_unjustified_exemption_is_flagged(self, fixture_result):
        found = findings_for(
            fixture_result, "cache-key-soundness", "cachepkg/exempt_bad.py"
        )
        assert len(found) == 1
        assert "no justification" in found[0].message


class TestEngine:
    def test_report_filter_keeps_whole_graph(self):
        """Path operands restrict reporting, never loading."""
        result = analyze_fixture(paths=[str(FIXTURES / "cachepkg")])
        assert {f.path.rsplit("/", 1)[0] for f in result.findings} == {"cachepkg"}
        # The graph still covered every fixture file.
        assert result.files_checked == 10

    def test_unknown_rule_is_a_usage_error(self):
        with pytest.raises(LintUsageError):
            analyze_fixture(rules=["no-such-rule"])

    def test_build_graph_resolves_relative_imports(self):
        graph = build_graph(load_config(FIXTURE_CONFIG))
        info = graph.functions["seedpkg.build:interprocedural"]
        targets = {c.target for c in info.calls}
        assert "seedpkg.clock:wall_seed" in targets


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        assert main(["analyze", "--config", FIXTURE_CONFIG]) == 1
        out = capsys.readouterr().out
        assert "seed-flow" in out and "pool-safety" in out

    def test_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        status = main([
            "analyze", "--config", FIXTURE_CONFIG,
            "--format", "json", "--out", str(out_path),
        ])
        assert status == 1
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"seed-flow", "pool-safety", "cache-key-soundness"}

    def test_rule_selection(self, capsys):
        status = main([
            "analyze", "--config", FIXTURE_CONFIG, "--rule", "seed-flow",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "pool-safety" not in out

    def test_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("seed-flow", "pool-safety", "cache-key-soundness"):
            assert rule in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = tmp_path / "proj"
        shutil.copytree(FIXTURES, root)
        cfg = str(root / "pyproject.toml")
        assert main(["analyze", "--config", cfg, "--update-baseline"]) == 0
        assert main(["analyze", "--config", cfg]) == 0
        capsys.readouterr()


class TestChanged:
    def _git(self, *argv, cwd):
        subprocess.run(
            ["git", *argv], cwd=cwd, check=True, capture_output=True
        )

    def test_changed_reports_only_touched_files(self, tmp_path, capsys):
        root = tmp_path / "proj"
        shutil.copytree(FIXTURES, root)
        self._git("init", "-q", cwd=root)
        self._git("add", "-A", cwd=root)
        self._git(
            "-c", "user.email=t@example.com", "-c", "user.name=t",
            "commit", "-q", "-m", "seed", cwd=root,
        )
        # Touch one file; findings from every other file must drop out.
        model = root / "cachepkg" / "model.py"
        model.write_text(model.read_text() + "\n# touched\n")
        cfg = str(root / "pyproject.toml")
        status = main(["analyze", "--config", cfg, "--changed", "HEAD"])
        assert status == 1
        out = capsys.readouterr().out
        assert "cachepkg/model.py" in out
        assert "seedpkg" not in out

    def test_changed_with_no_changes_exits_clean(self, tmp_path, capsys):
        root = tmp_path / "proj"
        shutil.copytree(FIXTURES, root)
        self._git("init", "-q", cwd=root)
        self._git("add", "-A", cwd=root)
        self._git(
            "-c", "user.email=t@example.com", "-c", "user.name=t",
            "commit", "-q", "-m", "seed", cwd=root,
        )
        cfg = str(root / "pyproject.toml")
        assert main(["analyze", "--config", cfg, "--changed", "HEAD"]) == 0
        err = capsys.readouterr().err
        assert "no .py files changed" in err


class TestRealTree:
    """The acceptance invariants, against the actual repository."""

    def test_src_repro_is_clean_with_empty_baseline(self, capsys):
        baseline = json.loads(
            (REPO_ROOT / "analysis-baseline.json").read_text()
        )
        assert baseline["findings"] == []
        assert main(["analyze", "--config", REPO_CONFIG]) == 0
        capsys.readouterr()

    def test_deleting_a_key_field_fails_without_editing_toml(
        self, tmp_path, capsys
    ):
        """Drop ``gap_safety`` from FidelityPolicy.memo_identity(): the
        field is still read by the fidelity engine, so the analyzer must
        fail on an otherwise-identical tree — with the committed
        pyproject.toml untouched."""
        root = tmp_path / "repo"
        root.mkdir()
        shutil.copytree(REPO_ROOT / "src", root / "src")
        for name in ("pyproject.toml", "analysis-baseline.json"):
            shutil.copy(REPO_ROOT / name, root / name)

        fidelity = root / "src" / "repro" / "core" / "fidelity.py"
        text = fidelity.read_text()
        assert "|s{self.gap_safety!r}" in text
        fidelity.write_text(text.replace("|s{self.gap_safety!r}", "", 1))

        status = main(["analyze", "--config", str(root / "pyproject.toml")])
        out = capsys.readouterr().out
        assert status == 1
        assert "FidelityPolicy.gap_safety" in out
        assert "cache-key-soundness" in out
