"""Tests for the ``repro lint`` invariant linter.

Covers: every built-in pass firing on its fixture (and staying silent on
the clean counterparts), inline suppressions, the committed baseline,
the CLI exit-code contract (0 clean / 1 findings / 2 internal error),
the JSON report schema, and — the invariant the whole pass exists for —
cache-key-completeness catching a dataclass field added to a keyed type
but omitted from its fingerprint function.  Fixtures live in
``tests/lint_fixtures/`` as a self-contained lint project with its own
pyproject.toml.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    load_builtin_passes,
    load_config,
    registered_passes,
    run_lint,
)
from repro.lint import config as lint_config

if lint_config.tomllib is None:  # pragma: no cover - 3.9/3.10 without tomli
    pytest.skip(
        "lint tests need a TOML parser (stdlib tomllib on 3.11+, "
        "the tomli package otherwise)",
        allow_module_level=True,
    )

FIXTURES = Path(__file__).parent / "lint_fixtures"
FIXTURE_CONFIG = str(FIXTURES / "pyproject.toml")
REPO_CONFIG = str(Path(__file__).resolve().parents[1] / "pyproject.toml")

ALL_RULES = {
    "global-rng",
    "wall-clock",
    "typed-errors",
    "cache-key-completeness",
    "pool-safety",
    "unordered-iteration",
}


def lint_fixture(*paths, **kwargs):
    config = load_config(FIXTURE_CONFIG)
    return run_lint(config, paths=list(paths) or None, **kwargs)


def lines_for(result, rule, path=None):
    return sorted(
        f.line
        for f in result.findings
        if f.rule == rule and (path is None or f.path == path)
    )


class TestPasses:
    def test_registry_has_all_six_rules(self):
        load_builtin_passes()
        assert ALL_RULES <= set(registered_passes())

    def test_global_rng_fires(self):
        result = lint_fixture("bad_rng.py")
        assert {f.rule for f in result.findings} == {"global-rng"}
        assert lines_for(result, "global-rng") == [3, 9, 10, 15, 19]

    def test_global_rng_allows_annotations_and_seeded_generators(self):
        result = lint_fixture("bad_rng.py")
        # `fine()` (lines 22-25) uses np.random.Generator annotation,
        # seeded default_rng and instance draws: none may fire.
        assert all(f.line < 22 for f in result.findings)

    def test_wall_clock_fires(self):
        result = lint_fixture("bad_wallclock.py")
        assert {f.rule for f in result.findings} == {"wall-clock"}
        assert lines_for(result, "wall-clock") == [10, 11, 12, 13]

    def test_wall_clock_allows_monotonic_timers(self):
        result = lint_fixture("bad_wallclock.py")
        assert all(f.line < 17 for f in result.findings)

    def test_typed_errors_fires(self):
        result = lint_fixture("bad_errors.py")
        assert {f.rule for f in result.findings} == {"typed-errors"}
        assert lines_for(result, "typed-errors") == [6, 7, 13]

    def test_pool_safety_fires_on_lambda_closure_and_keyword(self):
        result = lint_fixture("bad_pool.py")
        assert {f.rule for f in result.findings} == {"pool-safety"}
        assert lines_for(result, "pool-safety") == [11, 18, 22]

    def test_pool_safety_allows_module_level_worker_and_on_result(self):
        result = lint_fixture("bad_pool.py")
        assert all(f.line < 25 for f in result.findings)

    def test_pool_safety_ignores_module_level_name_shared_with_nested_def(self):
        # `shared_name` exists both at module level and as a nested def
        # elsewhere; passing it to run_tasks resolves to the picklable
        # module-level function and must not fire.
        result = lint_fixture("bad_pool.py")
        assert not any("shared_name" in f.message for f in result.findings)

    def test_unordered_iteration_fires(self):
        result = lint_fixture("bad_setiter.py")
        assert {f.rule for f in result.findings} == {"unordered-iteration"}
        assert lines_for(result, "unordered-iteration") == [13, 18, 21]

    def test_unordered_iteration_allows_sorted_and_non_key_functions(self):
        result = lint_fixture("bad_setiter.py")
        assert all(f.line < 23 for f in result.findings)

    def test_clean_module_has_zero_findings(self):
        result = lint_fixture("clean_module.py")
        assert result.clean
        assert result.findings == []


class TestCacheKeyCompleteness:
    def test_missing_field_and_hidden_repr_field_fire(self):
        result = lint_fixture("bad_cache_key.py")
        messages = [f.message for f in result.findings]
        assert any("IncompleteKeyed.threshold" in m for m in messages)
        assert any("HiddenReprField.budget" in m for m in messages)
        assert {f.rule for f in result.findings} == {"cache-key-completeness"}

    def test_exemptions_and_fields_enumeration_pass(self):
        result = lint_fixture("clean_cache_key.py")
        assert result.clean

    def test_field_added_but_omitted_from_fingerprint_is_caught(self, tmp_path):
        """The acceptance-criterion scenario: a keyed dataclass gains a
        field, the fingerprint function is not updated, the rule fires."""
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            paths = ["."]
            [[tool.repro.lint.cache-key]]
            path = "cfg.py"
            class = "Cfg"
            key = "fingerprint"
        """))
        complete = textwrap.dedent("""\
            from dataclasses import dataclass

            @dataclass
            class Cfg:
                alpha: float
                beta: float

                def fingerprint(self):
                    return (self.alpha, self.beta)
        """)
        (tmp_path / "cfg.py").write_text(complete)
        config = load_config(str(tmp_path / "pyproject.toml"))
        assert run_lint(config).clean

        grown = complete.replace(
            "    beta: float\n", "    beta: float\n    gamma: float = 0.0\n"
        )
        (tmp_path / "cfg.py").write_text(grown)
        result = run_lint(load_config(str(tmp_path / "pyproject.toml")))
        assert [f.rule for f in result.findings] == ["cache-key-completeness"]
        assert "Cfg.gamma" in result.findings[0].message

    def test_stale_exemption_fires(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            paths = ["."]
            [[tool.repro.lint.cache-key]]
            path = "cfg.py"
            class = "Cfg"
            key = "fingerprint"
            exempt = ["renamed_away"]
        """))
        (tmp_path / "cfg.py").write_text(textwrap.dedent("""\
            from dataclasses import dataclass

            @dataclass
            class Cfg:
                alpha: float

                def fingerprint(self):
                    return (self.alpha,)
        """))
        result = run_lint(load_config(str(tmp_path / "pyproject.toml")))
        assert any("renamed_away" in f.message for f in result.findings)


class TestSuppressions:
    def test_inline_disable_suppresses_and_counts(self):
        result = lint_fixture("suppressed.py")
        assert lines_for(result, "wall-clock") == [16]
        assert result.suppressed == 2

    def test_wall_clock_allowlist(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            paths = ["."]
            [tool.repro.lint.wall-clock]
            allow = ["stamped.py"]
        """))
        (tmp_path / "stamped.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        assert run_lint(load_config(str(tmp_path / "pyproject.toml"))).clean


class TestCli:
    def test_findings_exit_code_and_text_report(self, capsys):
        status = main(["lint", "--config", FIXTURE_CONFIG])
        out = capsys.readouterr().out
        assert status == 1
        assert "global-rng" in out and "finding(s)" in out

    def test_clean_exit_code(self, capsys):
        status = main(["lint", "--config", FIXTURE_CONFIG, "clean_module.py"])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_path_exits_2(self, capsys):
        status = main(["lint", "--config", FIXTURE_CONFIG, "no_such_dir"])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_bad_config_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.toml"
        status = main(["lint", "--config", str(missing)])
        assert status == 2

    def test_json_report_schema(self, capsys):
        status = main(["lint", "--config", FIXTURE_CONFIG, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["version"] == 1
        assert payload["clean"] is False
        counts = payload["counts"]
        for key in ("files", "findings", "suppressed", "baselined", "by_rule"):
            assert key in counts
        assert counts["findings"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "col", "message", "hint",
            }
        assert set(counts["by_rule"]) == ALL_RULES

    def test_out_writes_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["lint", "--config", FIXTURE_CONFIG, "--out", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["version"] == 1 and payload["findings"]

    def test_rule_filter(self, capsys):
        status = main([
            "lint", "--config", FIXTURE_CONFIG, "--rule", "typed-errors",
        ])
        payload = capsys.readouterr().out
        assert status == 1
        assert "typed-errors" in payload and "global-rng" not in payload

    def test_unknown_rule_exits_2(self, capsys):
        """A typoed --rule must be a usage error, not a vacuous clean run."""
        status = main([
            "lint", "--config", FIXTURE_CONFIG, "--rule", "typo-name",
        ])
        assert status == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unknown_disable_in_config_exits_2(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            paths = ["."]
            disable = ["no-such-rule"]
        """))
        (tmp_path / "mod.py").write_text("X = 1\n")
        status = main(["lint", "--config", str(tmp_path / "pyproject.toml")])
        assert status == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_baseline_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        status = main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--update-baseline",
        ])
        assert status == 0 and baseline.is_file()
        capsys.readouterr()

        # Grandfathered findings no longer fail ...
        status = main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["clean"] is True
        assert payload["counts"]["baselined"] > 0

        # ... but --no-baseline still reports them all.
        status = main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--no-baseline",
        ])
        capsys.readouterr()
        assert status == 1

    def test_partial_update_baseline_preserves_other_files(
        self, tmp_path, capsys
    ):
        """--update-baseline with path operands must merge, not clobber:
        entries for files outside the operand list survive."""
        baseline = tmp_path / "baseline.json"
        main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--update-baseline",
        ])
        capsys.readouterr()
        full = json.loads(baseline.read_text())["findings"]
        assert any(e["path"] != "bad_rng.py" for e in full)

        main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--update-baseline", "bad_rng.py",
        ])
        capsys.readouterr()
        partial = json.loads(baseline.read_text())["findings"]
        assert partial == full

        # A partial run over a clean file drops that file's entries
        # (there are none) and keeps everyone else's.
        main([
            "lint", "--config", FIXTURE_CONFIG,
            "--baseline", str(baseline), "--update-baseline",
            "clean_module.py",
        ])
        capsys.readouterr()
        assert json.loads(baseline.read_text())["findings"] == full

    def test_parse_error_is_a_finding(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[tool.repro.lint]\npaths = [\".\"]\n")
        (tmp_path / "broken.py").write_text("def oops(:\n")
        status = main(["lint", "--config", str(tmp_path / "pyproject.toml")])
        out = capsys.readouterr().out
        assert status == 1
        assert "parse-error" in out


class TestSimVersionSalt:
    """The salt-manifest workflow: record, detect drift, refresh."""

    def _project(self, tmp_path):
        root = tmp_path / "proj"
        (root / "sim").mkdir(parents=True)
        (root / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.repro.lint]
            paths = ["."]

            [tool.repro.lint.sim-version-salt]
            manifest = "salt.json"
            watch = ["sim"]
            version-source = "sim/version.py"
        """))
        (root / "sim" / "__init__.py").write_text('"""Fixture sim."""\n')
        (root / "sim" / "version.py").write_text("SIM_VERSION = 1\n")
        (root / "sim" / "engine.py").write_text(textwrap.dedent('''\
            """Fixture engine under salt watch."""


            def run(x):
                return x + 1
        '''))
        return root

    def test_missing_manifest_fires(self, tmp_path, capsys):
        root = self._project(tmp_path)
        status = main(["lint", "--config", str(root / "pyproject.toml")])
        out = capsys.readouterr().out
        assert status == 1
        assert "sim-version-salt" in out
        assert "does not exist" in out

    def test_update_then_clean_then_drift(self, tmp_path, capsys):
        root = self._project(tmp_path)
        cfg = str(root / "pyproject.toml")
        assert main(["lint", "--config", cfg, "--update-sim-salt"]) == 0
        assert (root / "salt.json").is_file()
        assert main(["lint", "--config", cfg]) == 0
        capsys.readouterr()

        # An edited watched module must fire until the manifest is
        # refreshed (after a SIM_VERSION review).
        engine = root / "sim" / "engine.py"
        engine.write_text(engine.read_text() + "\n# tweaked\n")
        assert main(["lint", "--config", cfg]) == 1
        out = capsys.readouterr().out
        assert "changed since the salt manifest" in out
        assert "bump" in out and "SIM_VERSION" in out

        assert main(["lint", "--config", cfg, "--update-sim-salt"]) == 0
        assert main(["lint", "--config", cfg]) == 0
        capsys.readouterr()

    def test_new_watched_file_is_absent_from_manifest(self, tmp_path, capsys):
        root = self._project(tmp_path)
        cfg = str(root / "pyproject.toml")
        assert main(["lint", "--config", cfg, "--update-sim-salt"]) == 0
        (root / "sim" / "extra.py").write_text(
            '"""New simulator module nobody reviewed."""\n'
        )
        status = main(["lint", "--config", cfg])
        out = capsys.readouterr().out
        assert status == 1
        assert "sim/extra.py" in out
        assert "absent" in out

    def test_stale_recorded_version_fires_once(self, tmp_path, capsys):
        root = self._project(tmp_path)
        cfg = str(root / "pyproject.toml")
        assert main(["lint", "--config", cfg, "--update-sim-salt"]) == 0
        manifest = json.loads((root / "salt.json").read_text())
        manifest["sim_version"] = 0  # as if recorded before a bump
        (root / "salt.json").write_text(json.dumps(manifest))
        status = main(["lint", "--config", cfg])
        out = capsys.readouterr().out
        assert status == 1
        assert "stale" in out
        assert out.count("sim-version-salt") == 1  # one finding, not per-file

    def test_update_without_config_table_exits_2(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\npaths = [\".\"]\n"
        )
        (tmp_path / "mod.py").write_text('"""Empty."""\n')
        status = main([
            "lint", "--config", str(tmp_path / "pyproject.toml"),
            "--update-sim-salt",
        ])
        assert status == 2
        assert "sim-version-salt" in capsys.readouterr().err


class TestLintChanged:
    def _git(self, *argv, cwd):
        subprocess.run(
            ["git", *argv], cwd=cwd, check=True, capture_output=True
        )

    def _seeded_copy(self, tmp_path):
        import shutil

        root = tmp_path / "proj"
        shutil.copytree(FIXTURES, root)
        self._git("init", "-q", cwd=root)
        self._git("add", "-A", cwd=root)
        self._git(
            "-c", "user.email=t@example.com", "-c", "user.name=t",
            "commit", "-q", "-m", "seed", cwd=root,
        )
        return root

    def test_changed_restricts_to_touched_files(self, tmp_path, capsys):
        root = self._seeded_copy(tmp_path)
        bad = root / "bad_rng.py"
        bad.write_text(bad.read_text() + "\n# touched\n")
        status = main([
            "lint", "--config", str(root / "pyproject.toml"),
            "--changed", "HEAD",
        ])
        out = capsys.readouterr().out
        assert status == 1
        assert "bad_rng.py" in out
        assert "bad_wallclock.py" not in out  # unchanged: not reported

    def test_changed_never_widens_past_configured_roots(
        self, tmp_path, capsys
    ):
        """A changed file outside the lint roots (fixtures, vendored
        code) must not be dragged into the run by --changed."""
        root = tmp_path / "proj"
        (root / "pkg").mkdir(parents=True)
        (root / "scratch").mkdir()
        (root / "pyproject.toml").write_text(
            "[tool.repro.lint]\npaths = [\"pkg\"]\n"
        )
        (root / "pkg" / "mod.py").write_text('"""Clean."""\n')
        self._git("init", "-q", cwd=root)
        self._git("add", "-A", cwd=root)
        self._git(
            "-c", "user.email=t@example.com", "-c", "user.name=t",
            "commit", "-q", "-m", "seed", cwd=root,
        )
        # Deliberate violation, outside the configured roots.
        (root / "scratch" / "bad.py").write_text("import time\ntime.time()\n")
        status = main([
            "lint", "--config", str(root / "pyproject.toml"),
            "--changed", "HEAD",
        ])
        assert status == 0
        assert "no .py files changed" in capsys.readouterr().err

    def test_changed_outside_a_repo_exits_2(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\npaths = [\".\"]\n"
        )
        (tmp_path / "mod.py").write_text('"""Empty."""\n')
        status = main([
            "lint", "--config", str(tmp_path / "pyproject.toml"),
            "--changed", "HEAD",
        ])
        assert status == 2
        assert "--changed" in capsys.readouterr().err


class TestRepoIsClean:
    def test_repo_lints_clean_under_committed_config(self):
        """Zero non-baselined findings over src/ — the CI gate, as a test."""
        result = run_lint(load_config(REPO_CONFIG))
        assert result.findings == [], [f.format_text() for f in result.findings]
        # The sanctioned sites stay visible in the counts: the tracer
        # epoch and the ledger timestamp suppressions.  The baseline is
        # empty — grandfathered debt has been paid down, and stays down.
        assert result.suppressed >= 2
        assert result.baselined == 0

    def test_repo_keyed_dataclasses_resolve(self):
        """Every [[cache-key]] entry resolves (no 'unresolved' findings
        hiding in the baseline or suppressions)."""
        result = run_lint(load_config(REPO_CONFIG), use_baseline=False)
        assert not any(
            "unresolved" in f.message for f in result.raw_findings
        ), [f.format_text() for f in result.raw_findings]
