"""Tests for the experiment harness (miniature-scale runs)."""

import numpy as np
import pytest

from repro.experiments.cross_gpu import run_cross_gpu
from repro.experiments.dse import DseWorkloadSpec, run_dse, table4_summary
from repro.experiments.error_bound_sweep import run_error_bound_sweep
from repro.experiments.figure1 import run_figure1, shape_census
from repro.experiments.identical_kernels import run_identical_kernels
from repro.experiments.microarch_metrics import run_microarch_validation
from repro.experiments.profiling_overhead import run_profiling_overhead
from repro.experiments.runner import (
    METHODS,
    ExperimentConfig,
    run_suite,
    run_workload,
)
from repro.experiments.speedup_error import (
    per_workload_summary,
    summarize,
)
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(repetitions=2, workload_scale=0.01)


@pytest.fixture(scope="module")
def casio_rows(tiny_config):
    return run_suite(
        "casio",
        config=tiny_config,
        workload_names=["bert_infer", "dlrm"],
    )


class TestRunner:
    def test_rows_cover_grid(self, casio_rows):
        workloads = {r.workload for r in casio_rows}
        methods = {r.method for r in casio_rows}
        assert workloads == {"bert_infer", "dlrm"}
        assert methods == set(METHODS)
        reps = {r.repetition for r in casio_rows}
        assert reps == {0, 1}

    def test_all_feasible_at_small_scale(self, casio_rows):
        assert all(r.feasible for r in casio_rows)

    def test_errors_and_speedups_sane(self, casio_rows):
        for row in casio_rows:
            assert row.error_percent >= 0
            assert row.speedup > 1.0

    def test_infeasible_methods_flagged_on_large_workloads(self):
        config = ExperimentConfig(repetitions=1)
        w = load_workload("huggingface", "gpt2", scale=0.2, seed=0)
        rows = run_workload(w, config=config, methods=["pka", "stem"])
        by_method = {r.method: r for r in rows}
        assert not by_method["pka"].feasible
        assert by_method["stem"].feasible

    def test_sampler_for_hand_tuned_workloads(self):
        config = ExperimentConfig()
        w = load_workload("rodinia", "heartwall", scale=0.5, seed=0)
        assert config.sampler_for("pka", w).select == "random"
        w2 = load_workload("rodinia", "bfs", scale=0.5, seed=0)
        assert config.sampler_for("pka", w2).select == "first"

    def test_unknown_method_rejected(self):
        config = ExperimentConfig()
        w = load_workload("rodinia", "bfs", scale=0.1, seed=0)
        with pytest.raises(KeyError):
            config.sampler_for("nope", w)

    def test_row_as_dict(self, casio_rows):
        d = casio_rows[0].as_dict()
        assert {"suite", "workload", "method", "error_percent"} <= set(d)


class TestSummaries:
    def test_summarize_per_suite_method(self, casio_rows):
        summaries = summarize(casio_rows)
        keys = {(s.suite, s.method) for s in summaries}
        assert ("casio", "stem") in keys
        stem = [s for s in summaries if s.method == "stem"][0]
        assert stem.error_percent >= 0
        assert stem.speedup > 1

    def test_stem_lowest_error(self, casio_rows):
        summaries = {s.method: s for s in summarize(casio_rows)}
        stem_err = summaries["stem"].error_percent
        assert stem_err <= min(
            s.error_percent for m, s in summaries.items() if m != "stem"
        )

    def test_per_workload_summary_shape(self, casio_rows):
        table = per_workload_summary(casio_rows)
        assert set(table) == {"bert_infer", "dlrm"}
        assert set(table["dlrm"]) == set(METHODS)
        assert "speedup" in table["dlrm"]["stem"]


class TestSweep:
    def test_epsilon_tradeoff(self):
        config = ExperimentConfig(repetitions=2, workload_scale=0.02)
        points = run_error_bound_sweep(
            epsilons=(0.03, 0.25), config=config, suite="casio"
        )
        assert len(points) == 2
        tight, loose = points
        assert loose.speedup > tight.speedup
        assert loose.mean_samples < tight.mean_samples


class TestFigure1:
    def test_histograms_and_census(self):
        hists = run_figure1(workload_names=["resnet50_infer"], workload_scale=0.02)
        assert len(hists) >= 4
        census = shape_census(hists)
        assert sum(census.values()) == len(hists)
        # The resnet50-style workload contains multi-peak kernels (bn).
        assert any(label.startswith("multi-peak") for label in census)


class TestIdenticalKernels:
    def test_groups_have_wide_spreads(self):
        groups = run_identical_kernels(workload_scale=0.02)
        assert set(groups) == {"pka", "photon"}
        for method, entries in groups.items():
            assert entries, method
            assert all(g.size > 1 for g in entries)
            # At least one "identical" group spans a wide time range.
            assert max(g.spread_factor for g in entries) > 1.5


class TestMicroarchValidation:
    def test_near_zero_metric_errors(self):
        comparisons = run_microarch_validation(
            workload_scale=0.02, repetitions=2
        )
        assert len(comparisons) == 13
        mean_err = np.mean([c.error_percent for c in comparisons])
        assert mean_err < 10.0


class TestCrossGpu:
    def test_h100_to_h200_errors_bounded(self):
        results = run_cross_gpu(
            suite="casio", repetitions=2, workload_scale=0.01
        )
        assert len(results) == 11
        mean_err = np.mean([r.error_percent for r in results])
        assert mean_err < 25.0
        for r in results:
            assert r.speedup > 1


class TestOverheadExperiment:
    def test_stem_cheapest_everywhere(self):
        rows = run_profiling_overhead(
            suites=["rodinia"], workload_scale=0.02, photon_exact_limit=10_000
        )
        by_method = {r.method: r for r in rows}
        assert by_method["stem"].overhead_factor < by_method["photon"].overhead_factor
        assert by_method["photon"].overhead_factor < by_method["pka"].overhead_factor


class TestDse:
    def test_grid_and_summary(self):
        results = run_dse(
            workloads=[DseWorkloadSpec("rodinia", "hotspot", 0.02, 30)],
            repetitions=1,
        )
        table = table4_summary(results)
        assert set(table) == {
            "baseline", "cache_x2", "cache_x0.5", "sm_x2", "sm_x0.5",
        }
        for methods in table.values():
            assert "stem" in methods
            for err in methods.values():
                assert err >= 0


class TestWarmupStudy:
    def test_rows_cover_grid(self):
        from repro.experiments.warmup_study import run_warmup_study

        rows = run_warmup_study(
            workload_names=["hotspot"], repetitions=1, max_invocations=20
        )
        strategies = {r.strategy for r in rows}
        assert strategies == {"cold", "proportional", "warmup-kernel"}
        for r in rows:
            assert r.error_percent >= 0
            assert r.total_cycles > 0

    def test_error_spread_small(self):
        from repro.experiments.warmup_study import run_warmup_study

        rows = run_warmup_study(
            workload_names=["hotspot"], repetitions=2, max_invocations=30
        )
        errors = [r.error_percent for r in rows]
        assert max(errors) - min(errors) < 10.0


class TestScalabilityExperiment:
    def test_points_and_near_linear_fit(self):
        from repro.experiments.scalability import fit_exponent, run_scalability

        points = run_scalability(scales=(0.01, 0.03, 0.08))
        assert [p.num_invocations for p in points] == sorted(
            p.num_invocations for p in points
        )
        exponent, r2 = fit_exponent(points)
        assert exponent < 1.8
        assert 0.0 <= r2 <= 1.0


class TestTable2:
    def test_scale_ordering(self):
        from repro.experiments.table2 import run_table2

        rows = run_table2(workload_scale=0.01)
        by_suite = {r.suite: r for r in rows}
        assert (
            by_suite["rodinia"].avg_kernel_calls
            < by_suite["casio"].avg_kernel_calls
            < by_suite["huggingface"].avg_kernel_calls
        )
        assert by_suite["casio"].num_workloads == 11


class TestRunnerGroundTruthHook:
    def test_cross_hardware_scoring(self):
        """The DSE path: plans built from the profile, scored against a
        caller-supplied ground truth (here: H100 times)."""
        from repro.hardware import H100, TimingModel

        w = load_workload("casio", "bert_infer", scale=0.01, seed=0)
        config = ExperimentConfig(repetitions=1)

        def h100_truth(store, seed):
            return TimingModel(H100).execution_times(store.workload, seed=seed)

        rows = run_workload(
            w, config=config, methods=["stem"], ground_truth=h100_truth
        )
        assert len(rows) == 1
        assert rows[0].error_percent >= 0
        # Cross-hardware error should generally exceed same-profile error.
        same = run_workload(w, config=config, methods=["stem"])
        assert rows[0].error_percent >= 0.0 and same[0].error_percent >= 0.0
