"""Chaos tests for self-healing parallel execution.

The contract under test (see :mod:`repro.parallel.supervisor` and
docs/robustness.md):

(a) **worker death is a scheduling event** — a SIGKILLed worker rebuilds
    the pool and re-dispatches only unfinished tasks, with results
    bit-identical to an undisturbed run;
(b) **poison quarantine** — a task that keeps killing workers is
    quarantined with a typed error (or recorded in the report) while the
    rest of the fan-out completes; innocents are never quarantined;
(c) **stall detection** — a wedged worker is caught via heartbeats,
    killed, and its task re-dispatched;
(d) **speculation** — duplicated stragglers produce bit-identical
    values and the first copy wins;
(e) **grid integration** — seeded process faults (`worker_kill` /
    `cache_corrupt`) leave every non-quarantined grid row bit-identical
    to the faultless sequential run, quarantined cells are enumerated
    and never checkpointed, and unrecoverable failures salvage completed
    cells into the checkpoint before a typed error propagates;
(f) **cache integrity** — corrupted cache entries are quarantined on
    read and recomputed byte-identically instead of poisoning results.

Workers that kill themselves use a *real* SIGKILL: the supervisor is
exercised against genuine pool breakage, not a simulated exception.
"""

import json
import math
import os
import signal
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import (
    GridExecutionError,
    PoisonedTaskError,
    ReproError,
    WorkerCrashError,
)
from repro.experiments import runner as runner_mod
from repro.experiments.runner import ExperimentConfig, run_suite
from repro.hardware import RTX_2080
from repro.memo.sim_cache import RawKernelSim, SimResultCache
from repro.obs.ledger import _resilience_summary
from repro.parallel import (
    ProfileCache,
    SupervisionPolicy,
    SupervisionReport,
    run_tasks,
    supervise_tasks,
)
from repro.parallel.supervisor import _Flight, _Supervisor
from repro.resilience import FaultInjector, FaultPlan, GridCheckpoint
from repro.workloads import load_workload

METHODS = ["random", "stem"]
NAMES = ["gaussian", "bfs"]

#: Pinned by scripts/seed search (see test docstrings): with
#: ``worker_kill_rate=0.3`` and this plan seed, every task index in a
#: 4-task grid draws at most ONE kill across attempts 1..8, so no task
#: can reach ``max_task_kills=2`` strikes under any dispatch schedule —
#: the grid must complete without quarantine.  Index 3 kills on attempt
#: 1, so at least one real worker death occurs.
KILL_RECOVER_SEED = 3672

#: With ``worker_kill_rate=0.6`` and this plan seed, task index 0 of a
#: 2-task grid draws kills on attempts 1..3 (enough for 2 solo strikes
#: under any schedule) while index 1 draws none on attempts 1..8 —
#: exactly one task is quarantined, the innocent never is.
POISON_SEED = 3623


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(repetitions=2, workload_scale=0.01)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def rows_equal(a, b) -> bool:
    """Exact row equality, treating NaN == NaN (N/A rows)."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        da, db = ra.as_dict(), rb.as_dict()
        for key in da:
            va, vb = da[key], db[key]
            if (
                isinstance(va, float)
                and isinstance(vb, float)
                and math.isnan(va)
                and math.isnan(vb)
            ):
                continue
            if va != vb:
                return False
    return True


# -- module-level workers (picklable by qualified name) ----------------------
def _double(x):
    return x * 2


def _kill_once_worker(arg):
    """SIGKILL our own process the first time the marker is absent."""
    value, marker = arg
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("dying")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _poison_worker(arg):
    """A task that kills its worker on every attempt."""
    value, poison = arg
    if poison:
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 10


def _stall_once_worker(arg):
    """Wedge (sleep far past the heartbeat timeout) on the first attempt."""
    value, marker = arg
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("stalling")
        time.sleep(120.0)  # parent SIGKILLs us long before this returns
    return value * 5


def _straggler_worker(arg):
    """First claimant of the marker straggles until its duplicate wins."""
    value, root = arg
    if root is None:
        return value * 3
    start_marker = os.path.join(root, "started")
    win_marker = os.path.join(root, "won")
    try:
        fd = os.open(start_marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
    except FileExistsError:
        # The speculative duplicate: signal the straggler, then win.
        with open(win_marker, "w") as fh:
            fh.write("won")
        return value * 3
    deadline = time.monotonic() + 15.0
    while not os.path.exists(win_marker) and time.monotonic() < deadline:
        time.sleep(0.02)
    time.sleep(0.5)  # lose decisively; purity still makes the values equal
    return value * 3


# ---------------------------------------------------------------------------
# (a) worker death recovery
# ---------------------------------------------------------------------------
class TestWorkerDeathRecovery:
    def test_sigkilled_worker_recovers_bit_identically(self, tmp_path):
        marker = str(tmp_path / "killed-once")
        payloads = [(i, marker if i == 1 else None) for i in range(6)]
        # jobs=1 would run the self-SIGKILLing worker in-process; the
        # pure result is known statically instead.
        expected = [2 * i for i in range(6)]

        report = SupervisionReport()
        seen = {}
        out = run_tasks(
            _kill_once_worker,
            payloads,
            jobs=2,
            on_result=lambda i, v: seen.update({i: v}),
            report=report,
        )
        assert out == expected
        assert seen == {i: 2 * i for i in range(6)}
        assert report.worker_deaths >= 1
        assert report.pool_rebuilds >= 1
        assert report.redispatches >= 1
        assert report.poisoned == []

    def test_unsupervised_pool_raises_typed_error(self, tmp_path):
        payloads = [(i, i == 1) for i in range(4)]
        with pytest.raises(WorkerCrashError, match="died unsupervised") as exc:
            run_tasks(
                _poison_worker,
                payloads,
                jobs=2,
                policy=SupervisionPolicy(enabled=False),
            )
        assert isinstance(exc.value, ReproError)
        assert exc.value.indices  # names the in-flight payload indices

    def test_worker_exception_propagates_original_type(self):
        def fail(x):  # pragma: no cover - never submitted (not picklable)
            raise ValueError

        with pytest.raises(ValueError, match="poison"):
            run_tasks(_fail_on_two, [1, 2, 3], jobs=2)


def _fail_on_two(x):
    if x == 2:
        raise ValueError("payload two is poison")
    return x


# ---------------------------------------------------------------------------
# (b) poison-task quarantine
# ---------------------------------------------------------------------------
class TestPoisonQuarantine:
    def test_report_completes_around_poisoned_task(self):
        payloads = [(0, False), (1, True), (2, False), (3, False)]
        report = SupervisionReport()
        results, report = supervise_tasks(
            _poison_worker,
            payloads,
            jobs=2,
            policy=SupervisionPolicy(max_task_kills=2),
            report=report,
        )
        assert results == [10, None, 12, 13]
        assert report.poisoned_indices() == [1]
        assert report.poisoned[0].kills == 2
        assert isinstance(report.poisoned[0].error, PoisonedTaskError)

    def test_without_report_quarantine_raises(self):
        payloads = [(0, False), (1, True), (2, False)]
        with pytest.raises(PoisonedTaskError, match="quarantined") as exc:
            supervise_tasks(
                _poison_worker,
                payloads,
                jobs=2,
                policy=SupervisionPolicy(max_task_kills=2),
            )
        assert exc.value.index == 1
        assert exc.value.kills == 2
        assert isinstance(exc.value, WorkerCrashError)


# ---------------------------------------------------------------------------
# (c) heartbeat stall detection
# ---------------------------------------------------------------------------
class TestStallDetection:
    def test_stalled_worker_is_killed_and_redispatched(self, tmp_path):
        marker = str(tmp_path / "stalled-once")
        payloads = [(i, marker if i == 1 else None) for i in range(3)]
        report = SupervisionReport()
        results, report = supervise_tasks(
            _stall_once_worker,
            payloads,
            jobs=2,
            policy=SupervisionPolicy(heartbeat_timeout=1.0),
            report=report,
        )
        assert results == [5 * i for i in range(3)]
        assert report.stalls_detected >= 1
        assert report.worker_deaths >= 1
        assert report.poisoned == []


# ---------------------------------------------------------------------------
# (d) speculative straggler re-execution
# ---------------------------------------------------------------------------
class TestSpeculation:
    def test_duplicate_wins_and_values_bit_identical(self, tmp_path):
        root = str(tmp_path)
        payloads = [(7, root), (1, None), (2, None)]
        report = SupervisionReport()
        results, report = supervise_tasks(
            _straggler_worker,
            payloads,
            jobs=2,
            policy=SupervisionPolicy(speculate=True),
            report=report,
        )
        assert results == [21, 3, 6]
        assert report.speculative_launched == 1
        assert report.speculation_wins == 1
        assert report.speculation_mismatches == 0
        assert report.worker_deaths == 0

    def _bare_supervisor(self) -> _Supervisor:
        return _Supervisor(
            worker=_double,
            payloads=[0, 1],
            jobs=2,
            on_result=None,
            label="t",
            policy=SupervisionPolicy(speculate=True),
            capture_obs=False,
            fault_plan=None,
            report=SupervisionReport(),
            raise_on_poison=False,
        )

    def test_losing_duplicate_is_verified_not_used(self):
        sup = self._bare_supervisor()
        sup.results[0] = 5
        sup.done.add(0)
        # The losing copy agrees: verified and dropped silently.
        sup._complete(_Flight(0, 1, True, 0.0), {"value": 5})
        assert sup.results[0] == 5
        assert sup.report.speculation_mismatches == 0
        # NaN payloads (N/A rows) compare unequal to themselves; repr
        # equality is the purity check that must still pass.
        sup.results[1] = float("nan")
        sup.done.add(1)
        sup._complete(_Flight(1, 1, True, 0.0), {"value": float("nan")})
        assert sup.report.speculation_mismatches == 0
        # A genuinely different value is a purity violation: counted.
        sup._complete(_Flight(0, 1, True, 0.0), {"value": 6})
        assert sup.report.speculation_mismatches == 1
        assert sup.results[0] == 5  # the winner's value is never replaced


# ---------------------------------------------------------------------------
# (e) grid integration under seeded process faults
# ---------------------------------------------------------------------------
class TestGridChaos:
    def test_worker_kill_faults_bit_identical_to_sequential(self):
        plan = FaultPlan(seed=KILL_RECOVER_SEED, worker_kill_rate=0.3)
        config = small_config(fault_plan=plan)
        seq = run_suite(
            "rodinia", config=config, methods=METHODS, workload_names=NAMES
        )
        session = obs.configure()
        try:
            par = run_suite(
                "rodinia",
                config=config,
                methods=METHODS,
                workload_names=NAMES,
                jobs=2,
            )
            counters = session.metrics.snapshot()["counters"]
        finally:
            obs.disable()
        assert rows_equal(par, seq)
        assert not any(r.quarantined for r in par)
        # The faults really fired: at least one genuine worker death.
        assert counters.get("parallel.supervisor.worker_deaths", 0) >= 1
        assert counters.get("parallel.supervisor.redispatches", 0) >= 1

    def test_poisoned_cells_quarantined_and_resumable(self, tmp_path):
        plan = FaultPlan(seed=POISON_SEED, worker_kill_rate=0.6)
        config = small_config(repetitions=1, fault_plan=plan)
        clean_config = small_config(repetitions=1)
        clean = run_suite(
            "rodinia", config=clean_config, methods=METHODS, workload_names=NAMES
        )
        path = str(tmp_path / "chaos-grid.jsonl")
        rows = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            checkpoint=path,
            jobs=2,
        )
        quarantined = [r for r in rows if r.quarantined]
        survivors = [r for r in rows if not r.quarantined]
        # Exactly one (workload, rep) task was poisoned: all its methods'
        # cells come back quarantined, N/A-shaped.
        assert {r.workload for r in quarantined} == {quarantined[0].workload}
        assert len(quarantined) == len(METHODS)
        assert all(not r.feasible and math.isnan(r.error_percent)
                   for r in quarantined)
        # Every surviving row is bit-identical to the faultless run.
        clean_by_key = {(r.workload, r.method, r.repetition): r for r in clean}
        expected = [
            clean_by_key[(r.workload, r.method, r.repetition)] for r in survivors
        ]
        assert rows_equal(survivors, expected)
        # Quarantined cells were never checkpointed...
        with open(path) as fh:
            recorded = [json.loads(line) for line in fh if line.strip()]
        recorded_keys = {tuple(l["key"]) for l in recorded if l["kind"] == "row"}
        assert all(
            (r.suite, r.workload, r.method, r.repetition) not in recorded_keys
            for r in quarantined
        )
        assert len(recorded_keys) == len(survivors)
        # ...so a fault-free resume retries exactly them and completes the
        # grid to the clean rows.  (The checkpoint adopts its stored
        # config; the poisoned cells' fault draws are gone with the plan.)
        resume = GridCheckpoint(path)
        try:
            resumed = run_suite(
                "rodinia",
                config=clean_config,
                methods=METHODS,
                workload_names=NAMES,
                checkpoint=resume,
                jobs=2,
            )
        finally:
            resume.close()
        assert rows_equal(resumed, clean)

    def test_unrecoverable_failure_salvages_completed_cells(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "salvage.jsonl")
        real_build = runner_mod.build_plan

        def dying_build(sampler, store, seed):
            if store.workload.name == "bfs":
                raise RuntimeError("simulated worker crash")
            return real_build(sampler, store, seed)

        monkeypatch.setattr(runner_mod, "build_plan", dying_build)
        with pytest.raises(GridExecutionError, match="worker crash") as exc:
            run_suite(
                "rodinia",
                config=small_config(),
                methods=METHODS,
                workload_names=NAMES,
                checkpoint=path,
                jobs=2,
            )
        err = exc.value
        assert isinstance(err, RuntimeError) and isinstance(err, ReproError)
        # The salvaged cells are enumerated and all flushed to disk.
        assert all(key[1] == "gaussian" for key in err.completed_cells)
        with open(path) as fh:
            recorded = [json.loads(line) for line in fh if line.strip()]
        recorded_keys = {tuple(l["key"]) for l in recorded if l["kind"] == "row"}
        assert recorded_keys == {tuple(key) for key in err.completed_cells}

    def test_cache_corruption_recomputed_identically(self, tmp_path):
        plan = FaultPlan(seed=11, cache_corrupt_rate=1.0)
        config = small_config(repetitions=1, fault_plan=plan)
        baseline = run_suite(
            "rodinia",
            config=small_config(repetitions=1),
            methods=METHODS,
            workload_names=NAMES,
        )
        root = str(tmp_path / "cache")
        first = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            profile_cache=ProfileCache(root),
        )
        # Every stored entry was corrupted on disk; a second run must
        # quarantine them all and recollect, never reading garbage.
        fresh = ProfileCache(root)
        second = run_suite(
            "rodinia",
            config=config,
            methods=METHODS,
            workload_names=NAMES,
            profile_cache=fresh,
        )
        assert rows_equal(first, baseline)
        assert rows_equal(second, baseline)
        assert fresh.corrupt > 0
        assert os.path.isdir(os.path.join(root, "quarantine"))


# ---------------------------------------------------------------------------
# (f) cache integrity: checksums, quarantine, recompute
# ---------------------------------------------------------------------------
class TestProfileCacheIntegrity:
    @pytest.fixture()
    def workload(self):
        return load_workload("rodinia", "bfs", scale=0.05, seed=0)

    def _tamper_array(self, cache: ProfileCache, key: str) -> None:
        """Rewrite the entry with a flipped array but untouched metadata."""
        path = cache._path(key)
        with np.load(path, allow_pickle=False) as payload:
            meta = np.array(payload["meta"])
            arr = np.array(payload["profile"])
        arr[0] += 1.0
        with open(path, "wb") as fh:
            np.savez(fh, profile=arr, meta=meta)

    def test_checksum_mismatch_quarantines_and_recollects(
        self, tmp_path, workload
    ):
        root = str(tmp_path / "cache")
        cache = ProfileCache(root)
        original = np.linspace(1.0, 2.0, 16)
        key = cache.put(workload, RTX_2080, 3, original)
        self._tamper_array(cache, key)

        fresh = ProfileCache(root)
        assert fresh.get(workload, RTX_2080, 3) is None
        assert fresh.corrupt == 1
        assert len(fresh) == 0  # quarantine excluded from the entry count
        qdir = os.path.join(root, "quarantine")
        assert len(os.listdir(qdir)) == 1
        # The slot is free again; a re-store round-trips byte-identically.
        fresh.put(workload, RTX_2080, 3, original)
        fresh.clear_memory()
        assert np.array_equal(fresh.get(workload, RTX_2080, 3), original)

    def test_injected_corruption_never_poisons_reads(self, tmp_path, workload):
        root = str(tmp_path / "cache")
        cache = ProfileCache(root)
        cache.fault_injector = FaultInjector(
            FaultPlan(seed=7, cache_corrupt_rate=1.0)
        )
        original = np.linspace(5.0, 9.0, 32)
        cache.put(workload, RTX_2080, 0, original)
        fresh = ProfileCache(root)
        assert fresh.get(workload, RTX_2080, 0) is None
        assert fresh.corrupt == 1
        recollected = fresh.get_or_collect(
            workload, RTX_2080, 0, collect=lambda: original
        )
        assert np.array_equal(recollected, original)
        fresh.clear_memory()
        assert np.array_equal(fresh.get(workload, RTX_2080, 0), original)

    def test_unreadable_entry_quarantined(self, tmp_path, workload):
        root = str(tmp_path / "cache")
        cache = ProfileCache(root)
        key = cache.put(workload, RTX_2080, 3, np.ones(4))
        with open(cache._path(key), "wb") as fh:
            fh.write(b"not an npz file")
        fresh = ProfileCache(root)
        assert fresh.get(workload, RTX_2080, 3) is None
        assert fresh.corrupt == 1


class TestSimCacheIntegrity:
    def _raws(self, n=4):
        return {
            i: RawKernelSim(
                wave_cycles=100.0 + i,
                extrapolation=1.5,
                stall_cycles=10.0 * i,
                events=np.arange(6, dtype=np.int64) + i,
            )
            for i in range(n)
        }

    def test_corrupt_entry_quarantined_and_resimulated(self, tmp_path):
        root = str(tmp_path / "sim-cache")
        cache = SimResultCache(root)
        cache.fault_injector = FaultInjector(
            FaultPlan(seed=3, cache_corrupt_rate=1.0)
        )
        raws = self._raws()
        indices = sorted(raws)
        cache.store("ctx", indices, raws)

        fresh = SimResultCache(root)
        found, missing = fresh.load("ctx", indices)
        assert found == {} and missing == indices
        assert fresh.corrupt == 1
        assert len(fresh) == 0
        # Re-store (the "re-simulation") and read back byte-identically.
        fresh.store("ctx", indices, raws)
        fresh.clear_memory()
        found, missing = fresh.load("ctx", indices)
        assert missing == []
        for i in indices:
            assert found[i].wave_cycles == raws[i].wave_cycles
            assert found[i].stall_cycles == raws[i].stall_cycles
            assert np.array_equal(found[i].events, raws[i].events)

    def test_clean_entry_roundtrip_unaffected(self, tmp_path):
        cache = SimResultCache(str(tmp_path / "sim-cache"))
        raws = self._raws(3)
        cache.store("ctx", sorted(raws), raws)
        fresh = SimResultCache(str(tmp_path / "sim-cache"))
        found, missing = fresh.load("ctx", sorted(raws))
        assert missing == [] and fresh.corrupt == 0
        assert len(fresh) == 1


# ---------------------------------------------------------------------------
# Policy validation, fault-spec parsing, ledger summary
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_task_kills=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(heartbeat_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(poll_interval=-1.0)

    def test_fault_spec_accepts_process_faults(self):
        plan = FaultPlan.from_spec(
            "seed=9,worker_kill=0.2,stall=0.1,stall_s=2.5,cache_corrupt=0.4"
        )
        assert plan.worker_kill_rate == 0.2
        assert plan.worker_stall_rate == 0.1
        assert plan.worker_stall_s == 2.5
        assert plan.cache_corrupt_rate == 0.4
        assert plan.faults_workers and plan.corrupts_cache
        assert "worker_stall_s: 2.5" in plan.describe()

    def test_worker_decisions_deterministic(self):
        inj = FaultInjector(FaultPlan(seed=5, worker_kill_rate=0.5))
        first = [inj.worker_decision(i, a).kind
                 for i in range(8) for a in (1, 2)]
        again = [inj.worker_decision(i, a).kind
                 for i in range(8) for a in (1, 2)]
        assert first == again
        assert "kill" in first and "ok" in first

    def test_ledger_summary_maps_supervisor_counters(self):
        counters = {
            "parallel.supervisor.worker_deaths": 3,
            "parallel.supervisor.pool_rebuilds": 3,
            "parallel.supervisor.redispatches": 4,
            "parallel.supervisor.speculation_wins": 1,
            "parallel.supervisor.tasks_poisoned": 1,
            "parallel.grid.cells_quarantined": 2,
            "parallel.profile_cache.corrupt_quarantined": 2,
            "memo.sim_cache.corrupt_quarantined": 1,
        }
        summary = _resilience_summary(counters, {})
        assert summary["worker_deaths"] == 3
        assert summary["task_redispatches"] == 4
        assert summary["speculation_wins"] == 1
        assert summary["tasks_poisoned"] == 1
        assert summary["cells_quarantined"] == 2
        assert summary["cache_entries_quarantined"] == 3
