"""Cross-module integration tests: the paper's claims end to end."""

import numpy as np
import pytest

from repro import (
    ProfileStore,
    RTX_2080,
    StemRootSampler,
    evaluate_plan,
)
from repro.baselines import PkaSampler, RandomSampler, SieveSampler
from repro.core import SamplingPlan
from repro.hardware import H100, TimingModel
from repro.sim import GpuSimulator
from repro.workloads import load_workload
from repro.workloads.generators.synthetic import mixed_workload, multimodal_workload


class TestStemBeatsBaselinesOnHeterogeneousWorkloads:
    @pytest.fixture(scope="class")
    def casio_outcome(self):
        """Average method errors over reps on a CASIO-style workload."""
        workload = load_workload("casio", "resnet50_infer", scale=0.1, seed=0)
        errors = {"stem": [], "sieve": [], "pka": [], "random": []}
        for rep in range(5):
            store = ProfileStore(workload, RTX_2080, seed=rep * 911 + 3)
            times = store.execution_times()
            plans = {
                "stem": StemRootSampler().build_plan_from_store(store, seed=rep),
                "sieve": SieveSampler().build_plan(store, seed=rep),
                "pka": PkaSampler().build_plan(store, seed=rep),
                "random": RandomSampler(0.001).build_plan(store, seed=rep),
            }
            for name, plan in plans.items():
                errors[name].append(evaluate_plan(plan, times).error_percent)
        return {name: float(np.mean(vals)) for name, vals in errors.items()}

    def test_stem_lowest_error(self, casio_outcome):
        assert casio_outcome["stem"] == min(casio_outcome.values())

    def test_stem_below_bound(self, casio_outcome):
        assert casio_outcome["stem"] < 5.0

    def test_meaningful_error_reduction(self, casio_outcome):
        best_baseline = min(v for k, v in casio_outcome.items() if k != "stem")
        assert best_baseline / max(casio_outcome["stem"], 1e-9) > 1.5


class TestTheoreticalBoundHoldsEmpirically:
    @pytest.mark.parametrize("epsilon", [0.03, 0.05, 0.10])
    def test_bound_respected_on_average(self, epsilon):
        """Empirical error stays below the requested epsilon (95% conf)."""
        workload = multimodal_workload(n=4000, seed=2)
        timing = TimingModel(RTX_2080)
        errors = []
        for rep in range(10):
            times = timing.execution_times(workload, seed=rep)
            plan = StemRootSampler(epsilon=epsilon).build_plan(
                workload, times, seed=rep
            )
            errors.append(evaluate_plan(plan, times).error_percent)
        assert np.mean(errors) <= epsilon * 100

    def test_predicted_error_conservative(self):
        """The plan's predicted error upper-bounds typical realized error."""
        workload = mixed_workload(n_per_kernel=1000, seed=4)
        timing = TimingModel(RTX_2080)
        realized, predicted = [], []
        for rep in range(10):
            times = timing.execution_times(workload, seed=rep)
            plan = StemRootSampler().build_plan(workload, times, seed=rep)
            realized.append(evaluate_plan(plan, times).error_percent)
            predicted.append(plan.metadata["predicted_error"] * 100)
        assert np.mean(realized) <= np.mean(predicted) + 0.5


class TestPlanPortability:
    def test_plan_roundtrip_through_json_evaluates_identically(self, mixed, mixed_times):
        plan = StemRootSampler().build_plan(mixed, mixed_times, seed=0)
        restored = SamplingPlan.from_json(plan.to_json())
        a = evaluate_plan(plan, mixed_times)
        b = evaluate_plan(restored, mixed_times)
        assert a.estimated_total == pytest.approx(b.estimated_total)
        assert a.simulated_time == pytest.approx(b.simulated_time)

    def test_plan_built_on_one_gpu_usable_on_another(self):
        """The Figure 13 flow: H100-built plan scored on other hardware."""
        workload = load_workload("casio", "bert_infer", scale=0.05, seed=0)
        h100_times = TimingModel(H100).execution_times(workload, seed=1)
        plan = StemRootSampler().build_plan(workload, h100_times, seed=1)
        rtx_times = TimingModel(RTX_2080).execution_times(workload, seed=2)
        result = evaluate_plan(plan, rtx_times)
        # Cross-hardware error grows but stays bounded-ish.
        assert result.error_percent < 20.0


class TestSampledCycleSimulation:
    def test_sampled_simulation_matches_full(self):
        """End-to-end with the cycle simulator: simulate only the plan's
        kernels, extrapolate, compare against the full simulation."""
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0).head(60)
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler().build_plan_from_store(store, seed=0)

        simulator = GpuSimulator(RTX_2080)
        full_cycles = simulator.cycle_counts(workload, seed=0)
        result = evaluate_plan(plan, full_cycles)
        assert result.error_percent < 10.0
        assert result.speedup > 1.0

    def test_simulated_subset_cheaper_than_full(self):
        workload = load_workload("rodinia", "hotspot", scale=0.2, seed=0)
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler().build_plan_from_store(store, seed=0)
        assert len(plan.unique_indices()) < len(workload)


class TestScalability:
    def test_million_kernel_pipeline_under_seconds(self):
        """STEM's near-linear pipeline handles LLM-scale workloads fast
        (the Table 5 scalability claim, in wall-clock form)."""
        import time

        workload = load_workload("huggingface", "gpt2", scale=0.25, seed=0)
        assert len(workload) > 400_000
        store = ProfileStore(workload, RTX_2080, seed=0)
        t0 = time.perf_counter()
        times = store.execution_times()
        plan = StemRootSampler().build_plan(workload, times, seed=0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 60.0
        result = evaluate_plan(plan, times)
        assert result.error_percent < 5.0
        assert result.speedup > 100.0
