"""Parity suite for the batched structure-of-arrays wave engine.

The contract: :func:`repro.sim.batch.execute_wave_batch` and the scalar
event-driven loop are the *same simulation* — bit-identical cycles,
stalls and event counters for every trace, under every composition the
simulator supports (dedup on/off, warm and cold result caches, fault
plans, degenerate batch shapes).  The scalar path stays available as the
oracle, so every test here compares the two directly.
"""

import numpy as np
import pytest

from repro.errors import SimulationFailure
from repro.hardware import RTX_2080
from repro.memo import SimResultCache
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultInjector
from repro.sim import BatchPolicy, GpuSimulator, execute_wave_batch, noise_factors
from repro.sim.noise import uses_fallback
from repro.workloads import load_workload

from .test_memo import results_equal

#: Forces batching for the tiny test workloads (production floor is 16).
EAGER = BatchPolicy(min_width=2)
SCALAR = BatchPolicy(enabled=False)


def small_workload(scale: float = 0.2):
    return load_workload("rodinia", "bfs", scale=scale, seed=0)


def make_traces(sim, workload, seed=0, n=None):
    count = len(workload) if n is None else min(n, len(workload))
    return [
        sim.tracer.generate(workload.invocation(i), seed=seed) for i in range(count)
    ]


def assert_engine_parity(traces, sim, policy=EAGER):
    batched, report = execute_wave_batch(
        traces, sim.latencies, sim.config, policy
    )
    assert report.batched_lanes + report.scalar_lanes == len(traces)
    assert 0.0 < report.fill_ratio <= 1.0
    for i, trace in enumerate(traces):
        cycles, stats = sim._execute_trace(trace)
        bcycles, bstats = batched[i]
        assert bcycles == cycles, f"lane {i}: cycles differ"
        assert bstats.as_dict() == stats.as_dict(), f"lane {i}: stats differ"
    return report


class TestEngineParity:
    def test_bfs_traces_bit_identical(self):
        sim = GpuSimulator(RTX_2080)
        report = assert_engine_parity(make_traces(sim, small_workload()), sim)
        assert report.batched_lanes > 0

    def test_ragged_lengths(self):
        """Traces of very different lengths share one batch correctly."""
        sim = GpuSimulator(RTX_2080)
        short = make_traces(sim, load_workload("rodinia", "nw", scale=0.1, seed=0))
        long = make_traces(sim, load_workload("rodinia", "hotspot", scale=0.1, seed=0))
        assert_engine_parity(short + long, sim)

    def test_width_one_falls_back_to_scalar(self):
        sim = GpuSimulator(RTX_2080)
        traces = make_traces(sim, small_workload(), n=1)
        report = assert_engine_parity(traces, sim)
        assert report.scalar_lanes == 1 and report.batched_lanes == 0

    def test_empty_trace_list(self):
        sim = GpuSimulator(RTX_2080)
        results, report = execute_wave_batch([], sim.latencies, sim.config, EAGER)
        assert results == [] and report.chunks == 0

    def test_disabled_policy_is_all_scalar(self):
        sim = GpuSimulator(RTX_2080)
        traces = make_traces(sim, small_workload(), n=4)
        report = assert_engine_parity(traces, sim, policy=SCALAR)
        assert report.batched_lanes == 0 and report.scalar_lanes == len(traces)

    def test_narrow_chunks_match_wide(self):
        """Chunk boundaries are pure memory policy, never results."""
        sim = GpuSimulator(RTX_2080)
        traces = make_traces(sim, small_workload())
        wide, _ = execute_wave_batch(traces, sim.latencies, sim.config, EAGER)
        narrow, report = execute_wave_batch(
            traces, sim.latencies, sim.config, BatchPolicy(min_width=2, max_width=3)
        )
        assert report.chunks > 1
        for (wc, ws), (nc, ns) in zip(wide, narrow):
            assert wc == nc and ws.as_dict() == ns.as_dict()


class TestWorkloadParity:
    """simulate_workload: batched default == scalar path, everywhere."""

    def _pair(self, **kwargs):
        batched = GpuSimulator(RTX_2080, batch_policy=EAGER, **kwargs)
        scalar = GpuSimulator(RTX_2080, batch_policy=SCALAR, **kwargs)
        return batched, scalar

    def test_dedup_on_and_off(self):
        workload = small_workload()
        indices = [0, 3, 3, 1, 0, 2, 3]
        batched, scalar = self._pair()
        for dedup in (True, False):
            a = batched.simulate_workload(workload, indices, seed=5, dedup=dedup)
            b = scalar.simulate_workload(workload, indices, seed=5, dedup=dedup)
            assert results_equal(a, b)

    def test_full_workload(self):
        workload = small_workload()
        batched, scalar = self._pair()
        assert results_equal(
            batched.simulate_workload(workload, seed=1),
            scalar.simulate_workload(workload, seed=1),
        )

    def test_empty_index_list(self):
        workload = small_workload()
        batched, scalar = self._pair()
        a = batched.simulate_workload(workload, [], seed=1)
        b = scalar.simulate_workload(workload, [], seed=1)
        assert results_equal(a, b) and a.kernel_results == []

    def test_under_fault_plan_results(self):
        """A plan that dooms nothing: identical results with the injector on."""
        plan = FaultPlan(sim_fail_rate=1e-9, seed=77)
        workload = small_workload()
        a = GpuSimulator(
            RTX_2080, batch_policy=EAGER, fault_injector=FaultInjector(plan)
        ).simulate_workload(workload, seed=2)
        b = GpuSimulator(
            RTX_2080, batch_policy=SCALAR, fault_injector=FaultInjector(plan)
        ).simulate_workload(workload, seed=2)
        assert results_equal(a, b)

    def test_under_fault_plan_failures(self):
        """A plan that dooms an index: both paths raise the same failure."""
        plan = FaultPlan(sim_perm_fail_rate=0.3, seed=9)
        workload = small_workload()
        batched, scalar = self._pair()
        batched.fault_injector = FaultInjector(plan)
        scalar.fault_injector = FaultInjector(plan)
        caught = []
        for sim in (batched, scalar):
            try:
                sim.simulate_workload(workload, seed=2)
                caught.append(None)
            except SimulationFailure as exc:
                caught.append(str(exc))
        assert caught[0] == caught[1] is not None

    def test_sim_cache_cold_then_warm(self, tmp_path):
        workload = small_workload()
        cache = SimResultCache(str(tmp_path / "sim"))
        scalar_ref = GpuSimulator(RTX_2080, batch_policy=SCALAR).simulate_workload(
            workload, seed=3
        )
        cold = GpuSimulator(
            RTX_2080, batch_policy=EAGER, sim_cache=cache
        ).simulate_workload(workload, seed=3)
        warm = GpuSimulator(
            RTX_2080, batch_policy=EAGER, sim_cache=cache
        ).simulate_workload(workload, seed=3)
        assert results_equal(cold, scalar_ref)
        assert results_equal(warm, scalar_ref)

    def test_sim_cache_cross_engine(self, tmp_path):
        """Batched-written entries hit for scalar readers and vice versa:
        the batch policy must not leak into the cache key."""
        workload = small_workload()
        root = str(tmp_path / "sim")
        batched_first = GpuSimulator(
            RTX_2080, batch_policy=EAGER, sim_cache=SimResultCache(root)
        ).simulate_workload(workload, seed=4)
        reread = SimResultCache(root)
        scalar_warm = GpuSimulator(
            RTX_2080, batch_policy=SCALAR, sim_cache=reread
        ).simulate_workload(workload, seed=4)
        assert results_equal(batched_first, scalar_warm)
        assert reread.stats()["hits"] > 0

    def test_memo_identity_excludes_batch_policy(self):
        a = GpuSimulator(RTX_2080, batch_policy=EAGER)
        b = GpuSimulator(RTX_2080, batch_policy=SCALAR)
        assert a.memo_identity() == b.memo_identity()
        assert BatchPolicy().memo_identity() == ""


class TestCacheKeyLint:
    """`repro lint` pins BatchPolicy's constant memo_identity()."""

    def test_every_batch_knob_is_declared_exempt(self):
        """The pyproject cache-key spec must exempt each BatchPolicy
        field explicitly: a new knob added without an exemption (or a
        key change) fails repo lint — and this set comparison — so batch
        width can never silently enter the simulation cache key."""
        import dataclasses
        import os

        from repro.lint import load_config, run_lint

        repo_config = os.path.join(
            os.path.dirname(__file__), "..", "pyproject.toml"
        )
        config = load_config(repo_config)
        specs = [s for s in config.cache_keys if s.cls == "BatchPolicy"]
        assert len(specs) == 1
        spec = specs[0]
        assert spec.key == "memo_identity"
        field_names = {f.name for f in dataclasses.fields(BatchPolicy)}
        assert set(spec.exempt) == field_names
        result = run_lint(config)
        assert not [
            f for f in result.findings if "BatchPolicy" in f.message
        ], [f.format_text() for f in result.findings]


class TestNoiseFactors:
    def test_bit_identical_to_scalar(self):
        sim = GpuSimulator(RTX_2080, noise=0.02)
        for seed in (0, 7, 123456):
            indices = list(range(64)) + [10**6, 2**31 - 1]
            batched = noise_factors(seed, indices, sim.noise)
            scalar = np.array(
                [sim._noise_factor(seed, i) for i in indices], dtype=np.float64
            )
            assert np.array_equal(batched, scalar)

    def test_zero_noise_is_ones(self):
        out = noise_factors(3, [0, 1, 2], 0.0)
        assert np.array_equal(out, np.ones(3))

    def test_empty(self):
        assert noise_factors(3, [], 0.02).shape == (0,)

    def test_self_check_passed_on_this_numpy(self):
        noise_factors(0, [0, 1], 0.02)
        assert uses_fallback() is False


class TestObservability:
    def test_batch_metrics_emitted(self):
        from repro import obs

        workload = small_workload()
        with obs.scoped() as session:
            GpuSimulator(RTX_2080, batch_policy=EAGER).simulate_workload(
                workload, seed=1
            )
            snapshot = session.metrics.snapshot()
        counters = snapshot.get("counters", {})
        assert counters.get("sim.batch.calls", 0) >= 1
        assert counters.get("sim.batch.lanes", 0) > 0
