"""Tests for the benchmark-suite workload generators."""

import numpy as np
import pytest

from repro.workloads import load_suite, load_workload, suite_names
from repro.workloads.generators.base import KernelPhase, WorkloadRegistry, scaled_count
from repro.workloads.generators.casio import CASIO
from repro.workloads.generators.huggingface import HUGGINGFACE
from repro.workloads.generators.rodinia import RODINIA
from repro.workloads.generators.synthetic import (
    flat_workload,
    mixed_workload,
    multimodal_workload,
)


class TestRegistry:
    def test_suite_names(self):
        assert suite_names() == ["casio", "huggingface", "rodinia"]

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            load_workload("nope", "x")

    def test_unknown_workload_lists_options(self):
        with pytest.raises(KeyError) as err:
            load_workload("rodinia", "does_not_exist")
        assert "available" in str(err.value)

    def test_duplicate_registration_rejected(self):
        reg = WorkloadRegistry("t")

        @reg.register("w")
        def gen(scale, seed):
            return flat_workload(n=4)

        with pytest.raises(ValueError):
            reg.register("w")(gen)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            load_workload("rodinia", "bfs", scale=0.0)

    def test_scaled_count_minimum(self):
        assert scaled_count(100, 0.001, minimum=4) == 4
        assert scaled_count(100, 2.0) == 200

    def test_kernel_phase_validation(self):
        from repro.workloads.generators.synthetic import make_kernel_spec
        from repro.workloads import ContextMixture

        with pytest.raises(ValueError):
            KernelPhase(make_kernel_spec(), ContextMixture.single(), 0)
        with pytest.raises(ValueError):
            KernelPhase(
                make_kernel_spec(), ContextMixture.single(), 5, schedule=[0, 0]
            )


class TestSuiteShapes:
    def test_rodinia_has_13plus_workloads(self):
        assert len(RODINIA.names()) >= 13

    def test_casio_has_11_workloads(self):
        assert len(CASIO.names()) == 11

    def test_huggingface_has_6_workloads(self):
        assert len(HUGGINGFACE.names()) == 6

    def test_generation_deterministic(self):
        a = load_workload("rodinia", "bfs", scale=0.2, seed=42)
        b = load_workload("rodinia", "bfs", scale=0.2, seed=42)
        assert np.array_equal(a.work_scales, b.work_scales)
        assert np.array_equal(a.localities, b.localities)

    def test_generation_seed_sensitivity(self):
        a = load_workload("casio", "dlrm", scale=0.01, seed=1)
        b = load_workload("casio", "dlrm", scale=0.01, seed=2)
        assert not np.array_equal(a.work_scales, b.work_scales)

    def test_scale_shrinks_counts(self):
        big = load_workload("rodinia", "cfd", scale=0.5, seed=0)
        small = load_workload("rodinia", "cfd", scale=0.1, seed=0)
        assert len(small) < len(big)

    def test_load_suite_returns_all(self):
        workloads = load_suite("casio", scale=0.005)
        assert len(workloads) == 11
        assert all(w.suite == "casio" for w in workloads)


class TestRodiniaIrregularities:
    """The Sec. 5.1 irregular behaviours must be present by construction."""

    def test_heartwall_first_invocation_is_tiny(self):
        w = load_workload("rodinia", "heartwall", scale=1.0, seed=0)
        counts = w.dynamic_instruction_counts()
        # First launch executes orders of magnitude fewer instructions.
        assert counts[0] * 100 < np.median(counts[1:])

    def test_gaussian_work_decreases(self):
        w = load_workload("rodinia", "gaussian", scale=0.25, seed=0)
        groups = w.indices_by_name()
        fan1 = groups["Fan1"]
        scales = w.work_scales[fan1]
        # Decreasing staircase toward (near) zero, modulo small jitter.
        assert scales[0] > 50 * scales[-1]
        third = len(scales) // 3
        assert scales[:third].mean() > scales[third:2 * third].mean()
        assert scales[third:2 * third].mean() > scales[2 * third:].mean()

    def test_pf_float_kernel_length_disparity(self, timing):
        w = load_workload("rodinia", "pf_float", scale=0.05, seed=0)
        times = timing.execution_times(w, seed=0)
        by_name = {
            name: times[idx].mean() for name, idx in w.indices_by_name().items()
        }
        assert max(by_name.values()) > 20 * min(by_name.values())

    def test_bfs_wide_variation(self):
        w = load_workload("rodinia", "bfs", scale=1.0, seed=0)
        scales = w.work_scales[w.indices_by_name()["bfs_kernel1"]]
        assert scales.max() > 10 * scales.min()


class TestCasioStructure:
    def test_bn_has_three_contexts(self):
        w = load_workload("casio", "resnet50_infer", scale=0.02, seed=0)
        groups = w.indices_by_name()
        bn = [n for n in groups if "bn_fw_inf" in n][0]
        assert len(np.unique(w.context_ids[groups[bn]])) == 3

    def test_gemm_efficiency_peaks_share_instruction_count(self):
        """The paper's premise: GEMM peaks are invisible to instr counts."""
        w = load_workload("casio", "bert_infer", scale=0.02, seed=0)
        groups = w.indices_by_name()
        gemm = [n for n in groups if "sgemm_128x128" in n][0]
        idx = groups[gemm]
        effs = w.efficiencies[idx]
        counts = w.dynamic_instruction_counts()[idx]
        fast, slow = idx[effs == 1.0], idx[effs < 1.0]
        assert len(fast) and len(slow)
        # Same nominal work => overlapping instruction-count distributions.
        assert abs(np.median(counts[effs == 1.0]) - np.median(counts[effs < 1.0])) < (
            0.1 * np.median(counts)
        )

    def test_dlrm_is_memory_intensive(self):
        w = load_workload("casio", "dlrm", scale=0.02, seed=0)
        emb = [s for s in w.specs if "embedding" in s.name][0]
        assert emb.memory_boundedness > 0.9
        assert emb.memory.random_fraction > 0.5


class TestHuggingfaceStructure:
    def test_decoder_attention_work_grows_with_position(self):
        w = load_workload("huggingface", "gpt2", scale=0.01, seed=0)
        groups = w.indices_by_name()
        attn = [n for n in groups if "attention" in n][0]
        idx = groups[attn]
        # KV-fill buckets 0..3 exist and later buckets carry more work.
        ctx = w.context_ids[idx]
        scales = w.work_scales[idx]
        lo = scales[ctx == ctx.min()].mean()
        hi = scales[ctx == ctx.max()].mean()
        assert hi > 1.5 * lo

    def test_large_scale_counts(self):
        w = load_workload("huggingface", "bert", scale=0.05, seed=0)
        assert len(w) > 10_000

    def test_synthetic_multimodal_peak_count(self):
        w = multimodal_workload(n=500, peaks=((1.0, 0.5), (4.0, 0.5)), seed=0)
        assert len(np.unique(w.context_ids)) == 2

    def test_mixed_workload_three_kernels(self):
        w = mixed_workload(n_per_kernel=50, seed=0)
        assert len(w.kernel_names()) == 3
