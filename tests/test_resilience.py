"""Tests for the fault-tolerance subsystem (:mod:`repro.resilience`).

Property coverage demanded by the robustness milestone:

(a) fault injection is deterministic per seed;
(b) with faults disabled every pipeline output is bit-identical to the
    plain code path;
(c) under injected sample failures the degraded estimator's achieved
    error stays within the re-computed bound;
(d) a resumed ``run_suite`` produces rows identical to an uninterrupted
    run.

The CI fault-injection smoke job re-runs this module with
``REPRO_FAULT_SMOKE_RATE`` set, which scales the sample-failure rate the
bound test injects (default 0.12, CI uses 0.2).
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import PkaSampler, ProfileStore
from repro.core import StemRootSampler, evaluate_plan
from repro.core.estimator import sampling_error_percent
from repro.errors import (
    CheckpointError,
    EstimationError,
    InfeasibleProfilingError,
    ProfileValidationError,
    ReproError,
    SimulationFailure,
)
from repro.experiments import runner as runner_mod
from repro.experiments.runner import ExperimentConfig, ResultRow, run_suite
from repro.hardware import RTX_2080
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    ManualClock,
    ResilientExecutor,
    RetryPolicy,
    degrade_plan,
    sample_resiliently,
    validate_times,
)
from repro.sim import GpuSimulator
from repro.workloads import load_workload

#: Sample-failure rate for the bound test; the CI smoke job raises it.
SMOKE_RATE = float(os.environ.get("REPRO_FAULT_SMOKE_RATE", "0.12"))


@pytest.fixture(scope="module")
def workload():
    return load_workload("casio", "dlrm", scale=0.05, seed=0)


@pytest.fixture(scope="module")
def store(workload):
    return ProfileStore(workload, RTX_2080, seed=7)


def plans_equal(a, b) -> bool:
    if a.num_clusters != b.num_clusters or a.num_samples != b.num_samples:
        return False
    for ca, cb in zip(a.clusters, b.clusters):
        if ca.label != cb.label or ca.member_count != cb.member_count:
            return False
        if not np.array_equal(ca.sampled_indices, cb.sampled_indices):
            return False
    return True


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_disabled_by_default(self):
        plan = FaultPlan()
        assert not plan.enabled
        with pytest.raises(ValueError):
            FaultInjector(plan)

    def test_spec_roundtrip(self):
        plan = FaultPlan.from_spec("seed=3, sim_fail=0.2, nan=0.05, hang=0.1")
        assert plan.seed == 3
        assert plan.sim_fail_rate == 0.2
        assert plan.nan_rate == 0.05
        assert plan.sim_hang_rate == 0.1
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("bogus=1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("nan")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(nan_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(hang_seconds=-1)


class TestInjectorDeterminism:
    """Property (a): fault injection is deterministic per seed."""

    def test_profile_corruption_deterministic(self):
        times = np.abs(np.random.default_rng(0).normal(10, 3, 500)) + 0.1
        plan = FaultPlan(
            seed=9, nan_rate=0.05, inf_rate=0.02, negative_rate=0.02,
            drop_rate=0.02, truncate_fraction=0.1,
        )
        a = FaultInjector(plan).corrupt_times(times)
        b = FaultInjector(plan).corrupt_times(times)
        assert np.array_equal(a, b, equal_nan=True)
        # ...and actually corrupts something at these rates.
        assert np.isnan(a).sum() > 0
        assert len(a) < len(times)

    def test_different_seeds_differ(self):
        times = np.abs(np.random.default_rng(0).normal(10, 3, 500)) + 0.1
        a = FaultInjector(FaultPlan(seed=1, nan_rate=0.1)).corrupt_times(times)
        b = FaultInjector(FaultPlan(seed=2, nan_rate=0.1)).corrupt_times(times)
        assert not np.array_equal(np.isnan(a), np.isnan(b))

    def test_simulation_decisions_deterministic(self):
        plan = FaultPlan(seed=4, sim_fail_rate=0.3, sim_perm_fail_rate=0.1)
        inj1, inj2 = FaultInjector(plan), FaultInjector(plan)
        for idx in range(200):
            for attempt in (1, 2):
                assert (
                    inj1.simulation_decision(idx, attempt).kind
                    == inj2.simulation_decision(idx, attempt).kind
                )

    def test_permanent_failures_are_per_invocation(self):
        plan = FaultPlan(seed=4, sim_perm_fail_rate=0.3)
        inj = FaultInjector(plan)
        doomed = [
            i for i in range(100)
            if inj.simulation_decision(i, 1).kind == "perm_fail"
        ]
        assert doomed  # 30% of 100 invocations
        for i in doomed:
            # Every attempt fails: retrying cannot help.
            assert inj.simulation_decision(i, 5).kind == "perm_fail"

    def test_does_not_mutate_input(self):
        times = np.full(50, 7.0)
        FaultInjector(FaultPlan(seed=0, nan_rate=0.5)).corrupt_times(times)
        assert np.all(times == 7.0)


# ---------------------------------------------------------------------------
# Validation / repair
# ---------------------------------------------------------------------------
class TestValidation:
    def test_clean_profile_passes_through_unchanged(self):
        times = np.linspace(1.0, 2.0, 100)
        out, health = validate_times(times, expected_length=100, mode="strict")
        assert np.array_equal(out, times)
        assert health.clean

    def test_strict_lists_every_issue(self):
        times = np.array([1.0, np.nan, np.inf, -2.0, 0.0, 3.0])
        with pytest.raises(ProfileValidationError) as err:
            validate_times(times, expected_length=8, mode="strict")
        issues = " ".join(err.value.issues)
        for fragment in ("NaN", "infinite", "negative", "zero", "truncated"):
            assert fragment in issues

    def test_repair_fixes_and_pads(self):
        times = np.array([1.0, np.nan, np.inf, -2.0, 0.0, 3.0])
        out, health = validate_times(times, expected_length=8, mode="repair")
        assert len(out) == 8
        assert np.isfinite(out).all() and (out > 0).all()
        assert health.repaired
        fill = np.median([1.0, 3.0])
        assert out[1] == fill and out[6] == fill

    def test_unrepairable_profile_raises(self):
        with pytest.raises(ProfileValidationError, match="no healthy"):
            validate_times(np.array([np.nan, -1.0, 0.0]), mode="repair")

    def test_off_mode_trusts_garbage(self):
        times = np.array([np.nan, 1.0])
        out, health = validate_times(times, mode="off")
        assert np.isnan(out[0]) and health.clean


class TestSamplerValidation:
    def test_strict_sampler_rejects_nan_profile(self, flat):
        times = np.full(len(flat), 5.0)
        times[3] = np.nan
        with pytest.raises(ProfileValidationError):
            StemRootSampler().build_plan(flat, times)

    def test_validation_error_is_value_error(self, flat):
        # Backward compatibility: callers catching ValueError still work.
        with pytest.raises(ValueError):
            StemRootSampler().cluster(flat, np.ones(3))

    def test_repair_sampler_builds_plan(self, flat, flat_times):
        corrupted = np.array(flat_times, copy=True)
        corrupted[::50] = np.nan
        plan = StemRootSampler(validation="repair").build_plan(flat, corrupted)
        assert plan.num_samples >= 1


# ---------------------------------------------------------------------------
# Resilient executor
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_transient_failure_retried(self):
        calls = []

        def flaky(key, attempt):
            calls.append(attempt)
            if attempt < 3:
                raise SimulationFailure("boom", key=key, attempt=attempt)
            return 42.0

        ex = ResilientExecutor(RetryPolicy(max_attempts=3))
        outcome = ex.run(7, flaky)
        assert outcome.ok and outcome.value == 42.0
        assert outcome.attempts == 3 and outcome.retries == 2
        assert calls == [1, 2, 3]
        assert ex.quarantine == []

    def test_permanent_failure_skips_retries(self):
        def dead(key, attempt):
            raise SimulationFailure("corrupt", key=key, permanent=True)

        ex = ResilientExecutor(RetryPolicy(max_attempts=5))
        outcome = ex.run(1, dead)
        assert not outcome.ok
        assert outcome.attempts == 1
        assert outcome.gave_up == "permanent failure"
        assert ex.quarantine == [1]

    def test_max_attempts_exhausted(self):
        ex = ResilientExecutor(RetryPolicy(max_attempts=2))
        outcome = ex.run(
            3, lambda k, a: (_ for _ in ()).throw(SimulationFailure("x"))
        )
        assert not outcome.ok and outcome.attempts == 2
        assert outcome.gave_up == "max attempts exhausted"

    def test_deadline_turns_hang_into_timeout(self):
        clock = ManualClock()
        ex = ResilientExecutor(
            RetryPolicy(max_attempts=2, deadline=5.0),
            clock=clock.now,
            sleep=clock.sleep,
        )

        def hangs_once(key, attempt):
            if attempt == 1:
                clock.sleep(60.0)  # the "hang"
            return 1.0

        outcome = ex.run(0, hangs_once)
        assert outcome.ok and outcome.failures == ["timeout"]

    def test_total_budget_exhaustion(self):
        clock = ManualClock()
        ex = ResilientExecutor(
            RetryPolicy(max_attempts=10, deadline=5.0, total_budget=50.0),
            clock=clock.now,
            sleep=clock.sleep,
        )

        def always_hangs(key, attempt):
            clock.sleep(30.0)
            return 1.0

        outcome = ex.run(0, always_hangs)
        assert not outcome.ok
        assert outcome.gave_up == "total budget exhausted"
        assert outcome.attempts < 10

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=3.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.9)

    def test_backoff_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=3.0, jitter=0.1)
        for attempt in (1, 2, 3):
            base = 0.1 * 3.0 ** (attempt - 1)
            for key in (0, 7, 12345):
                delay = policy.backoff(attempt, key=key)
                # Stable for the same (key, attempt)...
                assert delay == policy.backoff(attempt, key=key)
                # ...and bounded by [base, base * (1 + jitter)].
                assert base <= delay <= base * 1.1
        # Distinct keys de-synchronize: not every key gets the same delay.
        delays = {policy.backoff(2, key=k) for k in range(16)}
        assert len(delays) > 1
        # No key (the legacy call) keeps the exact un-jittered schedule.
        assert policy.backoff(2) == pytest.approx(0.3)
        # jitter=0 opts out even with a key.
        flat = RetryPolicy(backoff_base=0.1, backoff_factor=3.0, jitter=0.0)
        assert flat.backoff(2, key=9) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.5)

    def test_executor_jitters_by_sample_key(self):
        slept = {}

        def flaky(key, attempt):
            if attempt == 1:
                raise SimulationFailure("boom", key=key, attempt=attempt)
            return float(key)

        policy = RetryPolicy(max_attempts=2, backoff_base=1.0, jitter=0.5)
        for key in (3, 4):
            clock = ManualClock()
            sleeps = []

            def spy_sleep(seconds, _sleeps=sleeps, _clock=clock):
                _sleeps.append(seconds)
                _clock.sleep(seconds)

            ex = ResilientExecutor(policy, clock=clock.now, sleep=spy_sleep)
            assert ex.run(key, flaky).ok
            assert len(sleeps) == 1
            assert sleeps[0] == policy.backoff(1, key=key)
            slept[key] = sleeps[0]
        # Two samples retrying at once back off at different moments.
        assert slept[3] != slept[4]


# ---------------------------------------------------------------------------
# Degraded estimation
# ---------------------------------------------------------------------------
class TestDegradedEstimation:
    def _plan_and_members(self, workload, times, seed=0, epsilon=0.05):
        sampler = StemRootSampler(epsilon=epsilon)
        plan = sampler.build_plan(workload, times, seed=seed)
        rng = np.random.default_rng(seed)
        labeled = sampler.cluster(workload, times, rng=rng)
        counter, members = {}, {}
        for lc in labeled:
            i = counter.get(lc.name, 0)
            counter[lc.name] = i + 1
            members[f"{lc.name}#{i}"] = lc.indices
        return plan, members

    def test_redraw_avoids_quarantined(self, mixed, mixed_times):
        plan, members = self._plan_and_members(mixed, mixed_times)
        victims = {int(i) for i in plan.unique_indices()[:4]}
        res = degrade_plan(
            plan, members, mixed_times, victims, epsilon=0.05,
            rng=np.random.default_rng(1),
        )
        assert res.redrawn >= len(victims)
        for cluster in res.plan.clusters:
            assert not victims.intersection(int(i) for i in cluster.sampled_indices)
        assert res.plan.metadata["requested_epsilon"] == 0.05
        assert res.plan.metadata["achieved_epsilon"] == res.achieved_epsilon

    def test_dead_cluster_folds_into_survivor(self, mixed, mixed_times):
        plan, members = self._plan_and_members(mixed, mixed_times)
        # Kill every member of one cluster.
        dead_label = plan.clusters[0].label
        victims = {int(i) for i in members[dead_label]}
        res = degrade_plan(
            plan, members, mixed_times, victims, epsilon=0.05,
            rng=np.random.default_rng(1),
        )
        assert dead_label in res.lost_clusters
        assert res.reallocated
        # Every invocation is still represented (folded, not dropped).
        assert res.plan.represented_invocations == plan.represented_invocations

    def test_total_loss_raises(self, flat, flat_times):
        plan, members = self._plan_and_members(flat, flat_times)
        victims = set(range(len(flat)))
        with pytest.raises(EstimationError, match="every cluster"):
            degrade_plan(
                plan, members, flat_times, victims, epsilon=0.05,
                rng=np.random.default_rng(1),
            )


# ---------------------------------------------------------------------------
# Pipeline property (b): disabled faults are bit-identical
# ---------------------------------------------------------------------------
class TestBitIdenticalWhenDisabled:
    def test_store_observed_is_true_profile(self, workload):
        plain = ProfileStore(workload, RTX_2080, seed=7)
        assert plain.execution_times() is plain.true_execution_times()

    def test_resilient_pipeline_matches_plain(self, store):
        sampler = StemRootSampler(epsilon=0.05)
        plain_plan = sampler.build_plan_from_store(store, seed=11)
        plain_result = evaluate_plan(plain_plan, store.execution_times())

        res = sample_resiliently(
            store, StemRootSampler(epsilon=0.05), fault_plan=None, seed=11
        )
        assert plans_equal(res.plan, plain_plan)
        assert res.result.estimated_total == plain_result.estimated_total
        assert res.result.error_percent == plain_result.error_percent
        assert res.quarantined == 0 and res.retries == 0
        assert not res.profile_health.repaired

    def test_disabled_fault_plan_equivalent_to_none(self, store):
        a = sample_resiliently(
            store, StemRootSampler(), fault_plan=FaultPlan(), seed=5
        )
        b = sample_resiliently(store, StemRootSampler(), fault_plan=None, seed=5)
        assert plans_equal(a.plan, b.plan)

    def test_run_suite_unchanged_by_checkpoint_machinery(self, tmp_path):
        config = ExperimentConfig(repetitions=2, workload_scale=0.4)
        plain = run_suite(
            "rodinia", config=config, methods=["random", "stem"],
            workload_names=["bfs"],
        )
        ckpt = run_suite(
            "rodinia", config=config, methods=["random", "stem"],
            workload_names=["bfs"],
            checkpoint=str(tmp_path / "grid.jsonl"),
        )
        assert plain == ckpt


# ---------------------------------------------------------------------------
# Pipeline property (c): achieved error respects the recomputed bound
# ---------------------------------------------------------------------------
class TestDegradedBound:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_achieved_error_within_recomputed_bound(self, workload, seed):
        store = ProfileStore(workload, RTX_2080, seed=seed)
        fault_plan = FaultPlan(
            seed=seed + 100,
            sim_fail_rate=SMOKE_RATE / 2,
            sim_perm_fail_rate=SMOKE_RATE,
        )
        res = sample_resiliently(
            store, StemRootSampler(epsilon=0.05),
            fault_plan=fault_plan, seed=seed,
        )
        assert res.quarantined > 0 or SMOKE_RATE == 0
        # Eq. (1) error (fraction) must respect the re-computed Eq. (5)
        # bound over the surviving allocation.
        assert res.result.error_percent / 100.0 <= res.achieved_epsilon
        assert res.plan.metadata["achieved_epsilon"] == res.achieved_epsilon
        assert res.plan.metadata["requested_epsilon"] == 0.05

    def test_profile_corruption_survived(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=3)
        fault_plan = FaultPlan(
            seed=13, nan_rate=0.05, drop_rate=0.02, truncate_fraction=0.05
        )
        res = sample_resiliently(
            store, StemRootSampler(epsilon=0.05), fault_plan=fault_plan, seed=3
        )
        assert res.profile_health.repaired
        assert np.isfinite(res.result.error_percent)

    def test_hangs_are_retried_within_deadline_budget(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=1)
        fault_plan = FaultPlan(seed=21, sim_hang_rate=0.3, hang_seconds=60.0)
        res = sample_resiliently(
            store, StemRootSampler(epsilon=0.05), fault_plan=fault_plan,
            retry=RetryPolicy(max_attempts=6, deadline=10.0), seed=1,
        )
        assert res.retries > 0
        assert np.isfinite(res.result.error_percent)


# ---------------------------------------------------------------------------
# Checkpoint / resume — property (d)
# ---------------------------------------------------------------------------
class TestCheckpointResume:
    CONFIG = dict(repetitions=2, workload_scale=0.4)
    METHODS = ["random", "stem"]
    NAMES = ["bfs", "heartwall"]

    def _run(self, checkpoint=None):
        return run_suite(
            "rodinia",
            config=ExperimentConfig(**self.CONFIG),
            methods=self.METHODS,
            workload_names=self.NAMES,
            checkpoint=checkpoint,
        )

    def test_killed_grid_resumes_identically(self, tmp_path, monkeypatch):
        clean = self._run()
        path = str(tmp_path / "grid.jsonl")

        # Kill the grid after 3 successful cells.
        real_build = runner_mod.build_plan
        calls = {"n": 0}

        def dying_build(sampler, store, seed):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt("simulated kill -9")
            return real_build(sampler, store, seed)

        monkeypatch.setattr(runner_mod, "build_plan", dying_build)
        with pytest.raises(KeyboardInterrupt):
            self._run(checkpoint=path)
        monkeypatch.setattr(runner_mod, "build_plan", real_build)

        # Partial progress survived the crash...
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert sum(1 for l in lines if l["kind"] == "row") == 3

        # ...and resuming completes the grid with identical rows.
        resumed = self._run(checkpoint=path)
        assert resumed == clean

    def test_resume_replays_without_recompute(self, tmp_path, monkeypatch):
        path = str(tmp_path / "grid.jsonl")
        clean = self._run(checkpoint=path)

        def exploding_build(sampler, store, seed):  # pragma: no cover
            raise AssertionError("resume recomputed a checkpointed cell")

        monkeypatch.setattr(runner_mod, "build_plan", exploding_build)
        replayed = self._run(checkpoint=path)
        assert replayed == clean

    def test_config_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        self._run(checkpoint=path)
        other = ExperimentConfig(repetitions=3, workload_scale=0.4)
        with pytest.raises(CheckpointError, match="different experiment"):
            run_suite(
                "rodinia", config=other, methods=self.METHODS,
                workload_names=self.NAMES, checkpoint=path,
            )

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "grid.jsonl")
        self._run(checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"kind": "row", "key": ["rodinia", "bfs"')  # torn write
        resumed = self._run(checkpoint=path)
        assert resumed == self._run()

    def test_result_row_roundtrip(self):
        row = ResultRow(
            suite="s", workload="w", method="stem", repetition=1,
            error_percent=float("nan"), speedup=float("inf"),
            num_samples=0, num_clusters=0, feasible=False,
        )
        back = ResultRow.from_dict(json.loads(json.dumps(row.as_dict())))
        assert back.feasible is False
        assert np.isnan(back.error_percent) and np.isinf(back.speedup)


# ---------------------------------------------------------------------------
# Typed exception hierarchy
# ---------------------------------------------------------------------------
class TestTypedErrors:
    def test_hierarchy(self):
        assert issubclass(InfeasibleProfilingError, ReproError)
        assert issubclass(InfeasibleProfilingError, RuntimeError)
        assert issubclass(ProfileValidationError, ValueError)
        assert issubclass(EstimationError, ValueError)

    def test_infeasible_baseline_raises_typed_error(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        sampler = PkaSampler(max_points_for_sweep=1)
        with pytest.raises(InfeasibleProfilingError):
            sampler.build_plan(store, seed=0)

    def test_runner_lets_unrelated_runtime_errors_propagate(self, monkeypatch):
        def buggy_build(sampler, store, seed):
            raise RuntimeError("an actual bug, not infeasibility")

        monkeypatch.setattr(runner_mod, "build_plan", buggy_build)
        with pytest.raises(RuntimeError, match="actual bug"):
            run_suite(
                "rodinia",
                config=ExperimentConfig(repetitions=1, workload_scale=0.3),
                methods=["stem"], workload_names=["bfs"],
            )

    def test_estimator_zero_truth(self):
        with pytest.raises(EstimationError, match="non-zero"):
            sampling_error_percent(1.0, 0.0)

    def test_estimator_non_finite(self):
        with pytest.raises(EstimationError, match="corrupt profile"):
            sampling_error_percent(1.0, float("nan"))
        with pytest.raises(EstimationError):
            sampling_error_percent(float("inf"), 1.0)

    def test_evaluate_plan_length_mismatch(self, flat, flat_times):
        plan = StemRootSampler().build_plan(flat, flat_times)
        with pytest.raises(EstimationError, match="truncated"):
            evaluate_plan(plan, flat_times[:-5])


# ---------------------------------------------------------------------------
# Sampler replacement fix
# ---------------------------------------------------------------------------
class TestReplacementSemantics:
    def test_full_allocation_still_draws_iid(self):
        """m == cluster size must keep drawing with replacement."""
        from repro.workloads.generators.synthetic import flat_workload

        w = flat_workload(n=40, seed=3)
        # Huge variance forces the allocation to the cap (= cluster size).
        times = np.abs(np.random.default_rng(5).normal(10, 40, len(w))) + 0.5
        sampler = StemRootSampler(
            epsilon=0.01, use_root=False, validation="off"
        )
        plan = sampler.build_plan(w, times, seed=2)
        cluster = plan.clusters[0]
        assert cluster.sample_size == cluster.member_count  # at the cap
        # i.i.d. with replacement: 40 draws from 40 members virtually
        # always repeat at least one member (P(no repeat) ~ 2e-17).
        assert len(np.unique(cluster.sampled_indices)) < cluster.sample_size

    def test_without_replacement_unchanged(self):
        from repro.workloads.generators.synthetic import flat_workload

        w = flat_workload(n=40, seed=3)
        times = np.abs(np.random.default_rng(5).normal(10, 40, len(w))) + 0.5
        sampler = StemRootSampler(
            epsilon=0.01, use_root=False, replacement=False, validation="off"
        )
        plan = sampler.build_plan(w, times, seed=2)
        cluster = plan.clusters[0]
        assert len(np.unique(cluster.sampled_indices)) == cluster.sample_size


# ---------------------------------------------------------------------------
# Simulator fault hook
# ---------------------------------------------------------------------------
class TestSimulatorFaultHook:
    def test_doomed_invocation_raises(self, flat):
        injector = FaultInjector(FaultPlan(seed=2, sim_perm_fail_rate=0.5))
        sim = GpuSimulator(RTX_2080, fault_injector=injector)
        doomed = next(
            i for i in range(len(flat))
            if injector.simulation_decision(i).kind == "perm_fail"
        )
        with pytest.raises(SimulationFailure):
            sim.simulate_invocation(flat, doomed, seed=0)

    def test_no_injector_no_cost(self, flat):
        sim = GpuSimulator(RTX_2080)
        result = sim.simulate_invocation(flat, 0, seed=0)
        assert result.cycles > 0


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
class TestCli:
    def test_sample_with_faults(self, capsys):
        from repro.cli import main

        assert main([
            "sample", "rodinia", "heartwall",
            "--faults", "seed=3,sim_fail=0.15,perm_fail=0.1,nan=0.02",
        ]) == 0
        out = capsys.readouterr().out
        assert "requested eps %" in out and "achieved eps %" in out

    def test_sample_without_faults_unchanged(self, capsys):
        from repro.cli import main

        assert main(["sample", "rodinia", "heartwall"]) == 0
        out = capsys.readouterr().out
        assert "achieved" not in out

    def test_faults_describe_and_dry_run(self, capsys):
        from repro.cli import main

        assert main([
            "faults", "seed=3,nan=0.05,sim_fail=0.1",
            "--suite", "rodinia", "--workload", "bfs", "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out and "NaN" in out

    def test_grid_checkpoint_resume(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ckpt.jsonl")
        argv = [
            "grid", "rodinia", "bfs", "--methods", "random,stem",
            "--repetitions", "1", "--scale", "0.4", "--checkpoint", path,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # Re-running without --resume refuses to clobber the checkpoint.
        assert main(argv) == 2
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second
