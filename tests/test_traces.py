"""Tests for sampled-trace files (Figure 5 pipeline exchange format)."""

import numpy as np
import pytest

from repro.core import StemRootSampler
from repro.hardware import RTX_2080, TimingModel
from repro.traces import read_sampled_trace, write_sampled_trace


@pytest.fixture
def plan_and_workload(mixed, mixed_times):
    plan = StemRootSampler().build_plan(mixed, mixed_times, seed=0)
    return mixed, plan


class TestWriteRead:
    def test_roundtrip_counts(self, plan_and_workload, tmp_path):
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        written = write_sampled_trace(path, workload, plan)
        assert written == len(plan.unique_indices())
        trace = read_sampled_trace(path)
        assert len(trace.workload) == written
        assert trace.method == "stem"
        assert trace.source_workload == workload.name

    def test_weights_sum_to_workload_size(self, plan_and_workload, tmp_path):
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)
        assert trace.weights.sum() == pytest.approx(len(workload))

    def test_estimate_matches_plan(self, plan_and_workload, tmp_path):
        """Replaying the trace reproduces the plan's weighted-sum estimate."""
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)

        timing = TimingModel(RTX_2080)
        # Evaluate sampled kernels via the *reconstructed* workload; the
        # deterministic part of the timing model must agree per kernel.
        original_times = timing.execution_times(workload, seed=42)
        indices = sorted(plan.sample_weights())
        traced_values = original_times[np.asarray(indices)]
        assert trace.estimate_total(traced_values) == pytest.approx(
            plan.estimate_total(original_times)
        )

    def test_contexts_roundtrip(self, plan_and_workload, tmp_path):
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)
        indices = sorted(plan.sample_weights())
        for pos, original_index in enumerate(indices):
            original = workload.invocation(original_index)
            restored = trace.workload.invocation(pos)
            assert restored.name == original.name
            assert restored.context.work_scale == pytest.approx(
                original.context.work_scale
            )
            assert restored.context.efficiency == pytest.approx(
                original.context.efficiency
            )

    def test_specs_deduplicated(self, plan_and_workload, tmp_path):
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)
        assert len(trace.workload.specs) <= len(workload.specs)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_sampled_trace(path)

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "other", "format_version": 1}\n')
        with pytest.raises(ValueError):
            read_sampled_trace(path)

    def test_estimate_length_mismatch(self, plan_and_workload, tmp_path):
        workload, plan = plan_and_workload
        path = tmp_path / "trace.jsonl"
        write_sampled_trace(path, workload, plan)
        trace = read_sampled_trace(path)
        with pytest.raises(ValueError):
            trace.estimate_total(np.ones(len(trace.weights) + 1))
