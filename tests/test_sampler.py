"""Tests for the end-to-end STEM+ROOT sampler."""

import numpy as np
import pytest

from repro.core import StemRootSampler, evaluate_plan


class TestClusterStage:
    def test_groups_by_name_then_splits(self, mixed, mixed_times, rng):
        sampler = StemRootSampler()
        clusters = sampler.cluster(mixed, mixed_times, rng=rng)
        names = {c.name for c in clusters}
        assert names == set(mixed.kernel_names())
        # The bn-like kernel has three peaks: more than one leaf for it.
        bn_leaves = [c for c in clusters if "bn" in c.name]
        assert len(bn_leaves) >= 3

    def test_use_root_false_one_cluster_per_name(self, mixed, mixed_times, rng):
        sampler = StemRootSampler(use_root=False)
        clusters = sampler.cluster(mixed, mixed_times, rng=rng)
        assert len(clusters) == len(mixed.kernel_names())

    def test_times_length_mismatch(self, mixed, rng):
        sampler = StemRootSampler()
        with pytest.raises(ValueError):
            sampler.cluster(mixed, np.ones(3), rng=rng)

    def test_cluster_indices_partition_workload(self, mixed, mixed_times, rng):
        clusters = StemRootSampler().cluster(mixed, mixed_times, rng=rng)
        merged = np.sort(np.concatenate([c.indices for c in clusters]))
        assert np.array_equal(merged, np.arange(len(mixed)))


class TestSampleSizes:
    def test_sizes_capped_at_cluster_size(self, flat, flat_times, rng):
        sampler = StemRootSampler(epsilon=0.0001)  # absurdly tight bound
        clusters = sampler.cluster(flat, flat_times, rng=rng)
        sizes = sampler.sample_sizes(clusters)
        for labeled, m in zip(clusters, sizes):
            assert 1 <= m <= labeled.cluster.size

    def test_kkt_at_most_per_cluster_total(self, mixed, mixed_times, rng):
        joint = StemRootSampler(use_kkt=True)
        indep = StemRootSampler(use_kkt=False)
        clusters = joint.cluster(mixed, mixed_times, rng=rng)
        tau_joint = sum(
            m * c.stats.mu for c, m in zip(clusters, joint.sample_sizes(clusters))
        )
        tau_indep = sum(
            m * c.stats.mu for c, m in zip(clusters, indep.sample_sizes(clusters))
        )
        assert tau_joint <= tau_indep + 1e-9


class TestBuildPlan:
    def test_plan_covers_workload(self, mixed, mixed_times):
        plan = StemRootSampler().build_plan(mixed, mixed_times, seed=0)
        plan.validate(len(mixed))

    def test_error_below_bound_on_average(self, mixed, timing):
        errors = []
        for rep in range(8):
            times = timing.execution_times(mixed, seed=rep)
            plan = StemRootSampler(epsilon=0.05).build_plan(mixed, times, seed=rep)
            errors.append(evaluate_plan(plan, times).error_percent)
        assert np.mean(errors) < 5.0

    def test_metadata_records_settings(self, flat, flat_times):
        plan = StemRootSampler(epsilon=0.1, use_root=False).build_plan(
            flat, flat_times, seed=1
        )
        assert plan.metadata["epsilon"] == 0.1
        assert plan.metadata["use_root"] is False
        assert plan.metadata["predicted_error"] <= 0.1 + 1e-9

    def test_smaller_epsilon_more_samples(self, mixed, mixed_times):
        tight = StemRootSampler(epsilon=0.01).build_plan(mixed, mixed_times, seed=2)
        loose = StemRootSampler(epsilon=0.25).build_plan(mixed, mixed_times, seed=2)
        assert tight.num_samples > loose.num_samples

    def test_without_replacement_unique_samples(self, mixed, mixed_times):
        plan = StemRootSampler(replacement=False).build_plan(
            mixed, mixed_times, seed=3
        )
        for cluster in plan.clusters:
            assert len(np.unique(cluster.sampled_indices)) == cluster.sample_size

    def test_samples_come_from_own_cluster(self, mixed, mixed_times, rng):
        sampler = StemRootSampler()
        clusters = sampler.cluster(mixed, mixed_times, rng=np.random.default_rng(0))
        plan = sampler.build_plan(mixed, mixed_times, seed=0)
        # Each plan cluster's samples must be members of the workload.
        for cluster in plan.clusters:
            assert (cluster.sampled_indices >= 0).all()
            assert (cluster.sampled_indices < len(mixed)).all()

    def test_plan_from_store_matches_direct(self, mixed, gpu):
        from repro.baselines import ProfileStore

        store = ProfileStore(mixed, gpu, seed=11)
        sampler = StemRootSampler()
        via_store = sampler.build_plan_from_store(store, seed=4)
        direct = sampler.build_plan(mixed, store.execution_times(), seed=4)
        assert via_store.num_clusters == direct.num_clusters
        assert via_store.num_samples == direct.num_samples

    def test_adaptive_sampling_favors_variable_kernels(self, mixed, mixed_times):
        """The wide memory-bound pool kernel gets more samples per launch
        than the stable GEMM kernel (the paper's Sec. 6.1 principle)."""
        plan = StemRootSampler().build_plan(mixed, mixed_times, seed=5)
        per_kernel = {}
        for cluster in plan.clusters:
            kernel = cluster.label.rsplit("#", 1)[0]
            samples, members = per_kernel.get(kernel, (0, 0))
            per_kernel[kernel] = (samples + cluster.sample_size, members + cluster.member_count)
        rates = {k: s / m for k, (s, m) in per_kernel.items()}
        pool = [k for k in rates if "pool" in k][0]
        gemm = [k for k in rates if "gemm" in k][0]
        assert rates[pool] > rates[gemm]
