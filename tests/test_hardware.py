"""Tests for GPU configs, presets, and the analytical timing model."""

import numpy as np
import pytest

from repro.hardware import (
    H100,
    H200,
    PRESETS,
    RTX_2080,
    GPUConfig,
    TimingModel,
    dse_variants,
    get_preset,
)
from repro.workloads.generators.synthetic import make_kernel_spec


class TestGPUConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sms": 0},
            {"clock_ghz": -1.0},
            {"fp32_lanes": 0},
            {"l2_mb": 0},
            {"dram_bandwidth_gbps": 0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GPUConfig(name="bad", **kwargs)

    def test_derived_quantities(self):
        cfg = GPUConfig(name="g", l2_mb=4.0, l1_kb_per_sm=64, clock_ghz=2.0)
        assert cfg.l2_bytes == 4 << 20
        assert cfg.l1_bytes_per_sm == 64 << 10
        assert cfg.cycles_per_us() == 2000.0

    def test_peak_ops_scales_with_sms(self):
        one = GPUConfig(name="a", num_sms=10)
        two = GPUConfig(name="b", num_sms=20)
        assert two.peak_ops_per_us("fp32") == 2 * one.peak_ops_per_us("fp32")

    def test_scaled_cache(self):
        v = RTX_2080.scaled(cache_scale=2.0)
        assert v.l2_mb == RTX_2080.l2_mb * 2
        assert v.l1_kb_per_sm == RTX_2080.l1_kb_per_sm * 2
        assert v.num_sms == RTX_2080.num_sms
        assert "cache_x2" in v.name

    def test_scaled_sms(self):
        v = RTX_2080.scaled(sm_scale=0.5)
        assert v.num_sms == RTX_2080.num_sms // 2
        assert v.l2_mb == RTX_2080.l2_mb

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RTX_2080.scaled(cache_scale=0.0)

    def test_dse_variants_five_points(self):
        variants = dse_variants(RTX_2080)
        assert len(variants) == 5
        assert variants[0] is RTX_2080


class TestPresets:
    def test_lookup(self):
        assert get_preset("h100") is H100
        with pytest.raises(KeyError):
            get_preset("a100")

    def test_three_presets(self):
        assert set(PRESETS) == {"rtx2080", "h100", "h200"}

    def test_h200_upgrades_memory_over_h100(self):
        """Figure 13 relies on the H200 being a memory-subsystem upgrade."""
        assert H200.dram_bandwidth_gbps > H100.dram_bandwidth_gbps
        assert H200.l2_mb >= H100.l2_mb
        assert H200.num_sms == H100.num_sms


class TestTimingModel:
    def test_breakdown_components_positive(self, timing, spec):
        b = timing.breakdown(spec)
        assert b.compute_us > 0
        assert b.memory_us > 0
        assert b.total_us > b.overhead_us

    def test_work_scale_monotone(self, timing, spec):
        t1 = timing.breakdown(spec, work_scale=1.0).total_us
        t2 = timing.breakdown(spec, work_scale=2.0).total_us
        assert t2 > t1

    def test_locality_reduces_memory_time(self, timing, spec):
        cold = timing.breakdown(spec, locality=0.1).memory_us
        warm = timing.breakdown(spec, locality=0.9).memory_us
        assert warm < cold

    def test_efficiency_lengthens_compute(self, timing, spec):
        fast = timing.breakdown(spec, efficiency=1.0).compute_us
        slow = timing.breakdown(spec, efficiency=0.5).compute_us
        assert slow == pytest.approx(2 * fast)

    def test_execution_times_deterministic_given_seed(self, timing, flat):
        a = timing.execution_times(flat, seed=9)
        b = timing.execution_times(flat, seed=9)
        assert np.array_equal(a, b)

    def test_execution_times_vary_with_seed(self, timing, flat):
        a = timing.execution_times(flat, seed=1)
        b = timing.execution_times(flat, seed=2)
        assert not np.array_equal(a, b)

    def test_all_times_positive(self, timing, mixed):
        assert (timing.execution_times(mixed, seed=0) > 0).all()

    def test_jitter_sigma_higher_for_memory_bound(self, timing):
        compute = make_kernel_spec("c", memory_boundedness=0.1)
        memory = make_kernel_spec("m", memory_boundedness=0.9)
        loc = np.array([0.5])
        assert timing.jitter_sigma(memory, loc)[0] > timing.jitter_sigma(compute, loc)[0]

    def test_jitter_sigma_higher_for_poor_locality(self, timing, spec):
        good = timing.jitter_sigma(spec, np.array([0.9]))[0]
        bad = timing.jitter_sigma(spec, np.array([0.2]))[0]
        assert bad > good

    def test_faster_gpu_is_faster(self, flat):
        slow_total = TimingModel(RTX_2080).total_time_us(flat, seed=0)
        fast_total = TimingModel(H100).total_time_us(flat, seed=0)
        assert fast_total < slow_total

    def test_total_time_matches_sum(self, timing, flat):
        times = timing.execution_times(flat, seed=4)
        assert timing.total_time_us(flat, seed=4) == pytest.approx(times.sum())

    def test_memory_time_scales_with_bandwidth(self, spec):
        base = GPUConfig(name="b", dram_bandwidth_gbps=400.0)
        fat = GPUConfig(name="f", dram_bandwidth_gbps=4000.0)
        mem_base = TimingModel(base).breakdown(spec, locality=0.0).memory_us
        mem_fat = TimingModel(fat).breakdown(spec, locality=0.0).memory_us
        assert mem_fat < mem_base

    def test_larger_l2_reduces_memory_time(self):
        spec = make_kernel_spec("k", working_set_mb=64.0)
        small = GPUConfig(name="s", l2_mb=2.0)
        big = GPUConfig(name="b", l2_mb=64.0)
        mem_small = TimingModel(small).breakdown(spec, locality=0.8).memory_us
        mem_big = TimingModel(big).breakdown(spec, locality=0.8).memory_us
        assert mem_big < mem_small
