"""Tests for the DetSan runtime determinism sanitizer.

Covers: canonical type-tagged hashing, the content-addressed assertion
table (pin, match, divergence with owning scopes), deliberate fault
injection for negative testing, the module-level enable/record/scope
API, the instrumentation hooks on the simulator and sampler, and the
``repro detsan`` cross-engine smoke's exit-code contract.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis import detsan
from repro.analysis.detsan import DeterminismSanitizer, digest_of, index_digest
from repro.cli import main


@pytest.fixture(autouse=True)
def _detsan_off():
    """Every test starts and ends with the sanitizer disabled."""
    detsan.disable()
    yield
    detsan.disable()


class TestCanonicalHashing:
    def test_list_and_tuple_share_a_digest(self):
        # as_dict() on one engine path may yield tuples where another
        # yields lists; sequence identity is the contract, not the type.
        assert digest_of([1, 2.5, "x"]) == digest_of((1, 2.5, "x"))

    def test_dict_is_order_invariant(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})

    def test_numpy_arrays_hash_by_dtype_shape_bytes(self):
        a = np.arange(6, dtype=np.float64)
        assert digest_of(a) == digest_of(a.copy())
        assert digest_of(a) != digest_of(a.astype(np.float32))
        assert digest_of(a) != digest_of(a.reshape(2, 3))

    def test_numpy_scalar_matches_python_float(self):
        # np.float64 is a float subclass; a row built in-process and a
        # row round-tripped through a worker must hash identically.
        assert digest_of(np.float64(1.5)) == digest_of(1.5)

    def test_floats_are_bit_exact(self):
        assert digest_of(0.1 + 0.2) != digest_of(0.3)

    def test_type_tags_disambiguate(self):
        assert digest_of(1) != digest_of("1")
        assert digest_of(True) != digest_of(1)
        assert digest_of(None) != digest_of(0)

    def test_dataclasses_hash_by_fields(self):
        @dataclass
        class Row:
            name: str
            value: float

        assert digest_of(Row("a", 1.0)) == digest_of(Row("a", 1.0))
        assert digest_of(Row("a", 1.0)) != digest_of(Row("a", 2.0))

    def test_index_digest_is_stable(self):
        assert index_digest([1, 2, 3]) == index_digest(np.array([1, 2, 3]))
        assert index_digest([1, 2, 3]) != index_digest([3, 2, 1])


class TestAssertionTable:
    def test_matching_rerecord_is_not_a_divergence(self):
        san = DeterminismSanitizer()
        san.record("k", [1.0, 2.0])
        san.record("k", [1.0, 2.0])
        assert san.divergences == []
        assert san.coverage()["cross_checked_keys"] == 0  # same scope

    def test_divergence_reports_both_scopes_and_digests(self):
        san = DeterminismSanitizer()
        with san.scoped("engine=scalar"):
            san.record("sim.cycle|w|seed=0", [1.0])
        with san.scoped("engine=batch"):
            san.record("sim.cycle|w|seed=0", [2.0])
        assert len(san.divergences) == 1
        div = san.divergences[0]
        assert div.first_scope == "engine=scalar"
        assert div.scope == "engine=batch"
        assert div.first_digest != div.digest
        text = div.describe()
        assert "sim.cycle|w|seed=0" in text
        assert "engine=scalar" in text and "engine=batch" in text

    def test_first_divergence_per_key_is_kept(self):
        san = DeterminismSanitizer()
        san.record("k", 1)
        san.record("k", 2)
        san.record("k", 3)
        assert len(san.divergences) == 1

    def test_cross_checked_counts_multi_scope_keys(self):
        san = DeterminismSanitizer()
        with san.scoped("a"):
            san.record("k1", 1)
            san.record("k2", 1)
        with san.scoped("b"):
            san.record("k1", 1)
        cov = san.coverage()
        assert cov == {
            "keys": 2, "records": 3, "cross_checked_keys": 1, "divergences": 0,
        }

    def test_fault_perturbs_only_rerecords_of_matching_keys(self):
        san = DeterminismSanitizer(fault="sim.cycle")
        san.record("sim.cycle|w", [1.0])
        san.record("plan.draw|w", [1.0])
        san.record("plan.draw|w", [1.0])  # non-matching key: untouched
        assert san.divergences == []
        san.record("sim.cycle|w", [1.0])  # matching re-record: perturbed
        assert len(san.divergences) == 1
        assert san.divergences[0].key == "sim.cycle|w"

    def test_report_and_reset(self):
        san = DeterminismSanitizer()
        san.record("k", 1)
        assert "1 sync point(s)" in san.report()
        san.reset()
        assert san.coverage()["keys"] == 0


class TestModuleApi:
    def test_disabled_record_is_a_noop(self):
        assert not detsan.is_enabled()
        detsan.record("k", 1)  # must not raise
        assert detsan.get_sanitizer() is None

    def test_enable_scope_record(self):
        san = detsan.enable()
        assert detsan.is_enabled()
        with detsan.scope("cfg=a"):
            detsan.record("k", 1)
        with detsan.scope("cfg=b"):
            detsan.record("k", 2)
        assert len(san.divergences) == 1


class TestHooks:
    def test_scalar_and_batch_engines_cross_check_clean(self):
        from repro.hardware import RTX_2080
        from repro.sim import BatchPolicy, GpuSimulator
        from repro.workloads import load_workload

        workload = load_workload("rodinia", "bfs", scale=0.05, seed=0)
        san = detsan.enable()
        with detsan.scope("engine=scalar"):
            GpuSimulator(
                RTX_2080, batch_policy=BatchPolicy(enabled=False)
            ).simulate_workload(workload, seed=0)
        with detsan.scope("engine=batch"):
            GpuSimulator(
                RTX_2080, batch_policy=BatchPolicy(min_width=2)
            ).simulate_workload(workload, seed=0)
        cov = san.coverage()
        assert cov["cross_checked_keys"] > 0
        assert cov["divergences"] == 0

    def test_sampler_records_draws_only_when_seed_is_authoritative(self):
        from repro.baselines import ProfileStore
        from repro.core import StemRootSampler
        from repro.hardware import RTX_2080
        from repro.workloads import load_workload

        workload = load_workload("rodinia", "bfs", scale=0.05, seed=0)
        store = ProfileStore(workload, RTX_2080, seed=0)
        times = store.execution_times()

        san = detsan.enable()
        StemRootSampler().build_plan(workload, times, seed=0)
        assert san.records > 0

        recorded = san.records
        # An externally-threaded rng carries caller state the key cannot
        # capture: no records may be added.
        StemRootSampler().build_plan(
            workload, times, rng=np.random.default_rng(0), seed=0
        )
        assert san.records == recorded


class TestCli:
    def test_smoke_engine_pairings_clean(self, capsys):
        assert main(["detsan", "--skip-grid"]) == 0
        out = capsys.readouterr().out
        assert "0 divergence(s)" in out
        assert "bit-identical" in out

    def test_smoke_full_grid_clean(self, capsys):
        assert main(["detsan"]) == 0
        capsys.readouterr()

    def test_fault_injection_names_the_sync_point(self, capsys):
        assert main(["detsan", "--skip-grid", "--fault", "sim.cycle"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "sim.cycle|" in out

    def test_detsan_flag_on_a_workload_command(self, capsys):
        status = main([
            "sample", "rodinia", "bfs", "--scale", "0.05",
            "--detsan", "--no-ledger",
        ])
        assert status == 0
        err = capsys.readouterr().err
        assert "detsan:" in err
