"""Tests for the sampling transparency report."""

import numpy as np
import pytest

from repro.core import StemRootSampler
from repro.core.plan import PlanCluster, SamplingPlan
from repro.core.report import build_report


@pytest.fixture
def report(mixed, mixed_times):
    sampler = StemRootSampler()
    plan = sampler.build_plan(mixed, mixed_times, seed=0)
    rng = np.random.default_rng(0)
    labeled = sampler.cluster(mixed, mixed_times, rng=rng)
    counter, members = {}, {}
    for lc in labeled:
        i = counter.get(lc.name, 0)
        counter[lc.name] = i + 1
        members[f"{lc.name}#{i}"] = lc.indices
    return build_report(plan, mixed_times, cluster_members=members)


class TestBuildReport:
    def test_shares_sum_to_one(self, report):
        assert sum(c.time_share for c in report.clusters) == pytest.approx(1.0)
        assert sum(c.variance_share for c in report.clusters) == pytest.approx(1.0)

    def test_predicted_error_within_default_bound(self, report):
        assert 0.0 < report.predicted_error <= 0.05 + 1e-9

    def test_speedup_positive(self, report):
        assert report.speedup > 1.0

    def test_dominant_risk_clusters_sorted(self, report):
        top = report.dominant_risk_clusters(top=3)
        shares = [c.variance_share for c in top]
        assert shares == sorted(shares, reverse=True)

    def test_text_rendering(self, report):
        text = report.to_text(top=5)
        assert "bound" in text
        assert "risk %" in text

    def test_summary_keys(self, report):
        summary = report.summary()
        assert {"num_clusters", "predicted_error", "speedup"} <= set(summary)

    def test_fallback_to_sampled_members(self, mixed, mixed_times):
        """Without membership info the report still builds from samples."""
        plan = StemRootSampler().build_plan(mixed, mixed_times, seed=1)
        report = build_report(plan, mixed_times)
        assert len(report.clusters) == plan.num_clusters

    def test_cluster_report_derived_fields(self):
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 100, np.array([0, 1]))],
        )
        times = np.array([2.0, 4.0])
        report = build_report(plan, times)
        cluster = report.clusters[0]
        assert cluster.sampling_rate == pytest.approx(0.02)
        assert cluster.cov == pytest.approx(1.0 / 3.0)
