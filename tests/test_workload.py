"""Unit tests for the columnar Workload container and builder."""

import numpy as np
import pytest

from repro.workloads import Workload, WorkloadBuilder
from repro.workloads.generators.synthetic import make_kernel_spec


def build_two_kernel_workload():
    builder = WorkloadBuilder(name="w", suite="synthetic")
    a = make_kernel_spec("alpha")
    b = make_kernel_spec("beta")
    for i in range(5):
        builder.launch(a, context_id=0, work_scale=1.0 + i, locality=0.5)
    for i in range(3):
        builder.launch(b, context_id=1, work_scale=2.0, locality=0.25, efficiency=0.5)
    return builder.build()


class TestWorkloadBuilder:
    def test_build_counts(self):
        w = build_two_kernel_workload()
        assert len(w) == 8
        assert w.num_invocations == 8
        assert len(w.specs) == 2

    def test_spec_interning(self):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        assert builder.spec_id(spec) == builder.spec_id(spec)

    def test_bulk_length_mismatch_rejected(self):
        builder = WorkloadBuilder(name="w")
        with pytest.raises(ValueError):
            builder.launch_bulk(
                make_kernel_spec("k"),
                context_ids=np.zeros(3, dtype=np.int32),
                work_scales=np.ones(2),
                localities=np.full(3, 0.5),
            )

    def test_empty_build(self):
        w = WorkloadBuilder(name="empty").build()
        assert len(w) == 0
        assert w.kernel_names() == []

    def test_num_launches_tracks(self):
        builder = WorkloadBuilder(name="w")
        builder.launch(make_kernel_spec("k"))
        builder.launch(make_kernel_spec("k"))
        assert builder.num_launches() == 2

    def test_default_efficiencies_are_one(self):
        builder = WorkloadBuilder(name="w")
        builder.launch_bulk(
            make_kernel_spec("k"),
            context_ids=np.zeros(4, dtype=np.int32),
            work_scales=np.ones(4),
            localities=np.full(4, 0.5),
        )
        w = builder.build()
        assert np.allclose(w.efficiencies, 1.0)


class TestWorkload:
    def test_invocation_view_roundtrips_context(self):
        w = build_two_kernel_workload()
        inv = w.invocation(6)
        assert inv.name == "beta"
        assert inv.context.work_scale == 2.0
        assert inv.context.efficiency == 0.5
        assert inv.index == 6

    def test_invocations_iterator_full(self):
        w = build_two_kernel_workload()
        assert sum(1 for _ in w.invocations()) == len(w)

    def test_invocations_iterator_subset(self):
        w = build_two_kernel_workload()
        names = [inv.name for inv in w.invocations([0, 7])]
        assert names == ["alpha", "beta"]

    def test_kernel_names_in_first_launch_order(self):
        w = build_two_kernel_workload()
        assert w.kernel_names() == ["alpha", "beta"]

    def test_indices_by_name_partition(self):
        w = build_two_kernel_workload()
        groups = w.indices_by_name()
        assert set(groups) == {"alpha", "beta"}
        assert len(groups["alpha"]) == 5
        assert len(groups["beta"]) == 3
        merged = np.sort(np.concatenate(list(groups.values())))
        assert np.array_equal(merged, np.arange(len(w)))

    def test_indices_by_name_sorted_chronologically(self):
        w = build_two_kernel_workload()
        for indices in w.indices_by_name().values():
            assert np.all(np.diff(indices) > 0)

    def test_subset_preserves_columns(self):
        w = build_two_kernel_workload()
        sub = w.subset([1, 6])
        assert len(sub) == 2
        assert sub.invocation(0).context.work_scale == 2.0
        assert sub.invocation(1).name == "beta"

    def test_head(self):
        w = build_two_kernel_workload()
        assert len(w.head(3)) == 3
        assert len(w.head(100)) == len(w)

    def test_spec_column_gathers(self):
        w = build_two_kernel_workload()
        col = w.spec_column(lambda s: len(s.name))
        assert col[0] == len("alpha")
        assert col[-1] == len("beta")

    def test_dynamic_instruction_counts_scale_with_work(self):
        w = build_two_kernel_workload()
        counts = w.dynamic_instruction_counts()
        # alpha launches have work 1..5 — counts strictly increase.
        assert np.all(np.diff(counts[:5]) > 0)

    def test_describe(self):
        w = build_two_kernel_workload()
        d = w.describe()
        assert d["num_invocations"] == 8
        assert d["num_kernel_names"] == 2

    def test_column_length_mismatch_rejected(self):
        spec = make_kernel_spec("k")
        with pytest.raises(ValueError):
            Workload(
                name="bad",
                suite="synthetic",
                specs=[spec],
                spec_ids=np.zeros(3, dtype=np.int32),
                context_ids=np.zeros(2, dtype=np.int32),
                work_scales=np.ones(3),
                localities=np.full(3, 0.5),
            )

    def test_out_of_range_spec_ids_rejected(self):
        spec = make_kernel_spec("k")
        with pytest.raises(ValueError):
            Workload(
                name="bad",
                suite="synthetic",
                specs=[spec],
                spec_ids=np.array([0, 1], dtype=np.int32),
                context_ids=np.zeros(2, dtype=np.int32),
                work_scales=np.ones(2),
                localities=np.full(2, 0.5),
            )
