"""Tests for the run ledger, profiling analysis, and the SLO gate.

Covers the second observability tier: RunRecord determinism and the
append-only JSONL ledger (including torn-line repair), self-time /
critical-path / collapsed-stack extraction, the resource monitor,
merge-order-independent metrics snapshots, thread-safe instruments,
Chrome-trace schema conformance, SLO budget checks, and the
``repro obs record/show/history/compare/check`` CLI verbs.
"""

import json
import os
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.errors import ReproError
from repro.obs.flame import normalize_events, self_times, span_forest
from repro.obs.ledger import git_revision, iter_numeric_leaves
from repro.obs.slo import (
    DEFAULT_TOLERANCES,
    comparable_leaves,
    compare_records,
    median_record_leaves,
    render_compare,
    render_violations,
)


def _record(command="bench", label="quick", config=None, metrics=None,
            timing=None):
    record = obs.build_run_record(
        command=command,
        label=label,
        config=dict(config or {"scale": 0.5}),
        extra_metrics=dict(metrics or {}),
    )
    if timing:
        record.timing.update(timing)
    return record


class TestRunRecord:
    def test_run_id_is_deterministic_identity_hash(self):
        a = _record(config={"scale": 0.5, "seed": 0})
        b = _record(config={"seed": 0, "scale": 0.5})  # key order irrelevant
        assert a.run_id == b.run_id
        assert len(a.run_id) == 16

    def test_run_id_changes_with_identity(self):
        base = _record()
        assert _record(label="full").run_id != base.run_id
        assert _record(config={"scale": 0.25}).run_id != base.run_id
        assert _record(command="other").run_id != base.run_id

    def test_identical_runs_diff_clean_outside_timing(self):
        a = _record(metrics={"speedup": 2.0})
        b = _record(metrics={"speedup": 2.0})
        assert a.deterministic_view() == b.deterministic_view()
        assert "timing" not in a.deterministic_view()
        # The wall clock lives only under timing.
        assert "timestamp" in a.timing

    def test_schema_version_stamped(self):
        assert _record().to_dict()["schema_version"] == obs.RUN_SCHEMA_VERSION


class TestRunLedger:
    def test_round_trip_lossless(self, tmp_path):
        ledger = obs.RunLedger(str(tmp_path / "runs"))
        original = _record(
            label="unicode ε",
            config={"scale": 0.5, "methods": ["stem", "root"], "nested": {"a": 1}},
            metrics={"speedup": 3.25, "ok": True},
        )
        ledger.append(original)
        loaded = ledger.read()
        assert len(loaded) == 1
        assert loaded[0].to_dict() == original.to_dict()
        assert loaded[0].run_id == original.run_id

    def test_seq_numbers_and_history(self, tmp_path):
        ledger = obs.RunLedger(str(tmp_path / "runs"))
        for i in range(3):
            ledger.append(_record(metrics={"i": i}))
        ledger.append(_record(command="other"))
        records = ledger.read()
        assert [r.timing["seq"] for r in records] == [0, 1, 2, 3]
        assert len(ledger.history(command="bench")) == 3
        assert ledger.latest(command="other").command == "other"
        prefix = records[0].run_id[:8]
        assert all(r.run_id.startswith(prefix)
                   for r in ledger.history(run_id=prefix))

    def test_torn_last_line_skipped_and_repaired(self, tmp_path):
        ledger = obs.RunLedger(str(tmp_path / "runs"))
        ledger.append(_record(metrics={"i": 0}))
        ledger.append(_record(metrics={"i": 1}))
        with open(ledger.path, "ab") as fh:  # crash mid-append
            fh.write(b'{"command": "torn", "metri')
        # Reads skip the torn line; good records survive untouched.
        records = ledger.read()
        assert [r.metrics["i"] for r in records] == [0, 1]
        # The next append repairs the missing newline first.
        ledger.append(_record(metrics={"i": 2}))
        records = ledger.read()
        assert [r.metrics["i"] for r in records] == [0, 1, 2]
        assert records[-1].timing["seq"] == 3  # torn line occupied seq 2
        with open(ledger.path, "rb") as fh:
            assert fh.read().endswith(b"\n")

    def test_groups_by_run_id(self, tmp_path):
        ledger = obs.RunLedger(str(tmp_path / "runs"))
        ledger.append(_record())
        ledger.append(_record())
        ledger.append(_record(label="full"))
        groups = ledger.groups()
        assert sorted(len(g) for g in groups.values()) == [1, 2]

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert obs.RunLedger(str(tmp_path / "nope")).read() == []


class TestGitRevision:
    def test_resolves_symref(self, tmp_path):
        git = tmp_path / ".git"
        (git / "refs" / "heads").mkdir(parents=True)
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "refs" / "heads" / "main").write_text("a" * 40 + "\n")
        assert git_revision(str(tmp_path)) == "a" * 40

    def test_detached_head(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("b" * 40 + "\n")
        assert git_revision(str(tmp_path)) == "b" * 40

    def test_packed_refs_fallback(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled\n"
            + "c" * 40 + " refs/heads/main\n"
        )
        assert git_revision(str(tmp_path)) == "c" * 40

    def test_no_repo_returns_none(self, tmp_path):
        assert git_revision(str(tmp_path)) is None

    def test_repo_head_matches_current(self):
        rev = git_revision(os.path.dirname(os.path.dirname(__file__)))
        assert rev is None or (len(rev) == 40 and set(rev) <= set("0123456789abcdef"))


#: A synthetic two-level span forest (all on one thread):
#: root [0, 100) > a [10, 40) and b [50, 90); b > leaf [55, 65).
_EVENTS = [
    {"name": "root", "ts": 0.0, "dur": 100.0, "tid": 1},
    {"name": "a", "ts": 10.0, "dur": 30.0, "tid": 1},
    {"name": "b", "ts": 50.0, "dur": 40.0, "tid": 1},
    {"name": "leaf", "ts": 55.0, "dur": 10.0, "tid": 1},
]


class TestFlame:
    def test_span_forest_parents_and_self_time(self):
        events = normalize_events(_EVENTS)
        parents, self_us = span_forest(events)
        by_name = {e["name"]: i for i, e in enumerate(events)}
        assert parents[by_name["root"]] is None
        assert parents[by_name["a"]] == by_name["root"]
        assert parents[by_name["b"]] == by_name["root"]
        assert parents[by_name["leaf"]] == by_name["b"]
        assert self_us[by_name["root"]] == 30.0  # 100 - 30 - 40
        assert self_us[by_name["b"]] == 30.0     # 40 - 10
        assert self_times(events) == self_us

    def test_critical_path_follows_heaviest_descendants(self):
        path = obs.critical_path(_EVENTS)
        assert [s.name for s in path] == ["root", "b", "leaf"]
        assert [s.depth for s in path] == [0, 1, 2]
        assert path[1].dur_us == 40.0 and path[1].self_us == 30.0

    def test_critical_path_tie_breaks_deterministically(self):
        twins = [
            {"name": "z", "ts": 0.0, "dur": 10.0, "tid": 1},
            {"name": "a", "ts": 20.0, "dur": 10.0, "tid": 1},
        ]
        # Equal durations: the earlier-starting root wins.
        assert obs.critical_path(twins)[0].name == "z"

    def test_collapsed_stacks_sum_to_total_duration(self):
        stacks = obs.collapsed_stacks(_EVENTS)
        assert stacks == {
            "root": 30.0,
            "root;a": 30.0,
            "root;b": 30.0,
            "root;b;leaf": 10.0,
        }
        assert sum(stacks.values()) == 100.0

    def test_write_collapsed_sorted_integer_lines(self, tmp_path):
        events = _EVENTS + [{"name": "zero", "ts": 95.0, "dur": 0.0, "tid": 1}]
        path = tmp_path / "flame.txt"
        count = obs.write_collapsed(str(path), events)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4  # zero-valued stack dropped
        assert lines == sorted(lines)
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0 and ";" not in value

    def test_collapsed_from_live_tracer(self):
        with obs.scoped() as session:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        stacks = obs.collapsed_stacks(session.tracer)
        assert any(key.startswith("outer;inner") for key in stacks)


class TestResourceMonitor:
    def test_snapshot_shape(self):
        with obs.ResourceMonitor(interval_s=0.01) as monitor:
            sum(range(10000))
        snap = monitor.snapshot()
        assert set(snap) == {
            "max_rss_kb", "cpu_user_s", "cpu_system_s", "wall_s", "samples",
        }
        assert snap["wall_s"] > 0
        if os.path.exists("/proc/self/status"):
            assert snap["max_rss_kb"] > 0 and snap["samples"] >= 1


class TestMergeOrderDeterminism:
    @staticmethod
    def _worker_state(seed):
        registry = obs.MetricsRegistry()
        registry.inc("shared.counter", seed)
        registry.inc(f"only.{seed}")
        registry.set_gauge("shared.gauge", float(seed))
        for i in range(100):
            registry.observe("shared.hist", float(i * seed))
        return registry.export_state()

    def test_snapshots_byte_identical_across_merge_order(self):
        w1, w2 = self._worker_state(1), self._worker_state(2)
        ab, ba = obs.MetricsRegistry(), obs.MetricsRegistry()
        ab.merge_state(w1)
        ab.merge_state(w2)
        ba.merge_state(w2)
        ba.merge_state(w1)
        dumps_ab = json.dumps(ab.snapshot(), sort_keys=True).encode()
        dumps_ba = json.dumps(ba.snapshot(), sort_keys=True).encode()
        assert dumps_ab == dumps_ba
        assert ab.snapshot()["counters"]["shared.counter"] == 3

    def test_parent_contributions_fold_with_workers(self):
        parent = obs.MetricsRegistry()
        parent.inc("shared.counter", 10)
        parent.merge_state(self._worker_state(1))
        snap = parent.snapshot()
        assert snap["counters"]["shared.counter"] == 11
        assert snap["gauges"]["shared.gauge"] == 1.0


class TestInstrumentThreadSafety:
    def test_counter_incs_are_not_lost(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("c")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(5000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40000

    def test_histogram_count_exact_under_threads(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("h")

        def work(base):
            for i in range(2000):
                hist.observe(float(base + i))

        threads = [threading.Thread(target=work, args=(k * 2000,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap["count"] == 8000
        assert len(hist._reservoir) == 4096


class TestChromeTraceSchema:
    def test_events_conform_to_trace_event_format(self, tmp_path):
        with obs.scoped() as session:
            with obs.span("outer", kind="test"):
                with obs.span("inner"):
                    pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), session.tracer)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list) and payload["traceEvents"]
        for event in payload["traceEvents"]:
            # Complete-event ("X") schema of the Trace Event Format.
            assert event["ph"] == "X"
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if "args" in event:
                assert isinstance(event["args"], dict)
        # Round-trips through the loader used by `repro obs report`.
        assert len(obs.load_chrome_trace(str(path))) == len(payload["traceEvents"])


class TestSloChecks:
    def test_budgets_only_constrain_what_is_reported(self):
        budgets = obs.SloBudgets(
            max_wall_s=1.0,
            cache_hit_rate_min={"sim_cache": 0.5},
            metric_min={"speedup": 2.0},
        )
        # Record reports none of wall/cache/speedup: vacuously within SLO.
        assert obs.check_record(_record(), budgets) == []

    def test_each_budget_kind_breaches(self):
        budgets = obs.SloBudgets(
            max_wall_s=1.0,
            max_rss_kb=1000.0,
            epsilon_margin=1.5,
            phase_budget_s={"simulate": 0.5},
            cache_hit_rate_min={"sim_cache": 0.5},
            metric_min={"speedup": 2.0},
            metric_max={"overhead": 0.02},
        )
        record = _record(
            metrics={
                "speedup": 1.0,
                "overhead": 0.5,
                "cache": {"sim_cache": {"hit_rate": 0.1, "hits": 1, "misses": 9}},
                "epsilon": {"requested": 0.05, "achieved": 0.2},
            },
            timing={
                "wall_s": 2.0,
                "resource": {"max_rss_kb": 100.0},
                "workers": [{"worker": "grid-0", "max_rss_kb": 2000.0}],
                "phases": {"simulate": {"spans": 3, "total_s": 1.0, "self_s": 0.9}},
            },
        )
        violations = obs.check_record(record, budgets)
        keys = {v.key for v in violations}
        assert keys == {
            "timing.wall_s",
            "timing.max_rss_kb",  # worker peak, not the parent's 100 kB
            "timing.phases.simulate.self_s",
            "metrics.cache.sim_cache.hit_rate",
            "metrics.speedup",
            "metrics.overhead",
            "metrics.epsilon.achieved",
        }
        text = render_violations(violations, checked=1)
        assert "✗" in text and "budget" in text and "7 SLO breach(es)" in text

    def test_within_budget_is_clean(self):
        budgets = obs.SloBudgets(max_wall_s=10.0, metric_min={"speedup": 1.5})
        record = _record(metrics={"speedup": 3.0}, timing={"wall_s": 1.0})
        assert obs.check_record(record, budgets) == []
        assert "✓" in render_violations([], checked=1)


class TestSloLoading:
    def test_missing_pyproject_yields_empty_budgets(self, tmp_path):
        budgets = obs.load_slo_budgets(str(tmp_path / "nope.toml"))
        assert budgets.is_empty()

    def test_committed_budgets_parse(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        budgets = obs.load_slo_budgets(os.path.join(root, "pyproject.toml"))
        assert not budgets.is_empty()
        assert budgets.max_wall_s is not None
        assert budgets.metric_max.get("disabled_overhead") == 0.02
        assert budgets.tolerances["min_time_s"] > 0

    def test_unknown_compare_key_rejected(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[tool.repro.slo]\nmax_wall_s = 1.0\n"
            "[tool.repro.slo.compare]\ntypo_rel = 0.5\n"
        )
        with pytest.raises(ReproError, match="typo_rel"):
            obs.load_slo_budgets(str(path))

    def test_loaded_budgets_override_defaults(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[tool.repro.slo]\nmax_wall_s = 7.0\n"
            "[tool.repro.slo.compare]\nwall_rel = 0.9\n"
        )
        budgets = obs.load_slo_budgets(str(path))
        assert budgets.max_wall_s == 7.0
        assert budgets.tolerances["wall_rel"] == 0.9
        assert budgets.tolerances["rss_rel"] == DEFAULT_TOLERANCES["rss_rel"]


class TestCompare:
    @staticmethod
    def _pair(base_metrics, base_timing, cand_metrics, cand_timing):
        base = _record(metrics=base_metrics, timing=base_timing)
        cand = _record(metrics=cand_metrics, timing=cand_timing)
        return compare_records(
            cand, comparable_leaves(base), obs.SloBudgets()
        )

    def test_identical_runs_diff_clean(self):
        metrics = {"speedup": 2.0,
                   "cache": {"sim_cache": {"hit_rate": 0.9}}}
        rows = self._pair(metrics, {"wall_s": 1.0}, metrics, {"wall_s": 1.0})
        assert rows and not any(r.breach for r in rows)
        assert "✓" in render_compare(rows, only_breaches=True)

    def test_direction_wall_up_is_regression(self):
        rows = self._pair({}, {"wall_s": 1.0}, {}, {"wall_s": 2.0})
        wall = next(r for r in rows if r.key == "timing.wall_s")
        assert wall.breach and wall.tolerance_key == "wall_rel"
        # Faster is never a breach.
        rows = self._pair({}, {"wall_s": 2.0}, {}, {"wall_s": 1.0})
        assert not any(r.breach for r in rows)

    def test_direction_hit_rate_down_is_regression(self):
        base = {"cache": {"sim_cache": {"hit_rate": 0.9}}}
        cand = {"cache": {"sim_cache": {"hit_rate": 0.5}}}
        rows = self._pair(base, {}, cand, {})
        hit = next(r for r in rows if r.key.endswith("hit_rate"))
        assert hit.breach and hit.tolerance_key == "hit_rate_abs"
        # Within the absolute tolerance: fine.
        rows = self._pair(base, {}, {"cache": {"sim_cache": {"hit_rate": 0.85}}}, {})
        assert not any(r.breach for r in rows)

    def test_speedup_down_is_regression(self):
        rows = self._pair({"speedup": 4.0}, {}, {"speedup": 1.5}, {})
        assert any(r.breach and r.key == "metrics.speedup" for r in rows)

    def test_min_time_noise_floor_suppresses_tiny_walls(self):
        # +300% on a 2ms phase is scheduler jitter, not a regression.
        rows = self._pair({}, {"wall_s": 0.002}, {}, {"wall_s": 0.008})
        assert not any(r.breach for r in rows)

    def test_unclassified_keys_never_breach(self):
        rows = self._pair({"counters": {"root.split": 10}}, {},
                          {"counters": {"root.split": 99}}, {})
        row = next(r for r in rows if r.key.endswith("root.split"))
        assert row.tolerance_key is None and not row.breach

    def test_median_uses_common_leaves_only(self):
        records = [
            _record(metrics={"speedup": s}, timing={"wall_s": w})
            for s, w in ((1.0, 5.0), (3.0, 1.0), (2.0, 3.0))
        ]
        records[0].metrics["extra"] = 99.0
        medians = median_record_leaves(records)
        assert medians["metrics.speedup"] == 2.0
        assert medians["timing.wall_s"] == 3.0
        assert "metrics.extra" not in medians

    def test_iter_numeric_leaves_skips_bools_and_flattens(self):
        leaves = dict(iter_numeric_leaves(
            {"a": {"b": 1}, "ok": True, "xs": [1.5, {"y": 2}]}
        ))
        assert leaves == {"a.b": 1.0, "xs[0]": 1.5, "xs[1].y": 2.0}


class TestObsCli:
    def test_record_show_history(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "obs", "record", "nightly", "--label", "smoke",
            "--config", '{"scale": 0.5}',
            "--metric", "speedup=2.5", "--metric", "overhead=0.01",
            "--runs-dir", runs,
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded run" in out

        assert main(["obs", "show", "--runs-dir", runs]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["command"] == "nightly"
        assert shown["metrics"]["speedup"] == 2.5

        assert main(["obs", "history", "--runs-dir", runs]) == 0
        table = capsys.readouterr().out
        assert "nightly" in table and "smoke" in table

    def test_record_rejects_bad_metric(self, tmp_path, capsys):
        assert main([
            "obs", "record", "x", "--metric", "notanumber",
            "--runs-dir", str(tmp_path / "runs"),
        ]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_show_empty_ledger_fails(self, tmp_path, capsys):
        assert main(["obs", "show", "--runs-dir", str(tmp_path / "r")]) == 1
        assert "no ledger record" in capsys.readouterr().err

    def test_check_breached_budget_exits_nonzero(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.slo.metric_max]\ndisabled_overhead = 0.02\n"
        )
        assert main([
            "obs", "record", "bench_obs", "--metric", "disabled_overhead=0.5",
            "--runs-dir", runs,
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs", "check", "--runs-dir", runs,
            "--pyproject", str(pyproject),
        ]) == 1
        out = capsys.readouterr().out
        # The breach reads as a sentence: metric, actual, budget.
        assert "✗" in out
        assert "metrics.disabled_overhead" in out
        assert "0.5" in out and "0.02" in out
        assert "1 SLO breach(es)" in out

    def test_check_within_budget_exits_zero(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.slo.metric_max]\ndisabled_overhead = 0.02\n"
        )
        assert main([
            "obs", "record", "bench_obs", "--metric", "disabled_overhead=0.005",
            "--runs-dir", runs,
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs", "check", "--runs-dir", runs,
            "--pyproject", str(pyproject),
        ]) == 0
        assert "✓ 1 record(s) within SLO budgets" in capsys.readouterr().out

    def test_check_empty_ledger_exits_two(self, tmp_path, capsys):
        assert main([
            "obs", "check", "--runs-dir", str(tmp_path / "runs"),
        ]) == 2
        assert "no ledger records" in capsys.readouterr().err

    def test_compare_identical_runs_clean(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        for _ in range(2):
            assert main([
                "obs", "record", "bench", "--metric", "speedup=2.0",
                "--runs-dir", runs,
            ]) == 0
        capsys.readouterr()
        assert main(["obs", "compare", "--runs-dir", runs]) == 0
        out = capsys.readouterr().out
        assert "candidate: run" in out

    def test_compare_flags_regression(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "obs", "record", "bench", "--metric", "speedup=4.0",
            "--runs-dir", runs,
        ]) == 0
        assert main([
            "obs", "record", "bench", "--metric", "speedup=1.0",
            "--runs-dir", runs,
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "compare", "--runs-dir", runs]) == 1
        out = capsys.readouterr().out
        assert "✗" in out and "metrics.speedup" in out
        assert "regression(s) beyond tolerance" in out


class TestCliLedgerIntegration:
    def test_sample_appends_deterministic_records(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        argv = ["sample", "rodinia", "bfs", "--scale", "0.5",
                "--runs-dir", runs]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        records = obs.RunLedger(runs).read()
        assert len(records) == 2
        first, second = records
        # Acceptance criterion: identical runs diff clean apart from
        # the explicitly-timed fields under `timing`.
        assert first.run_id == second.run_id
        assert first.deterministic_view() == second.deterministic_view()
        assert first.timing["seq"] != second.timing["seq"]
        # The record carries the pipeline's vitals.
        assert first.metrics["counters"]
        assert first.timing["wall_s"] > 0
        assert first.timing["resource"]["wall_s"] > 0

    def test_faulted_sample_records_epsilon_and_resilience(self, tmp_path,
                                                           capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--faults", "seed=3,sim_fail=0.15,nan=0.02",
            "--runs-dir", runs,
        ]) == 0
        capsys.readouterr()
        record = obs.RunLedger(runs).latest()
        epsilon = record.metrics["epsilon"]
        assert epsilon["requested"] > 0
        assert epsilon["achieved"] is not None
        assert "resilience" in record.metrics

    def test_no_ledger_flag_disables_recording(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--runs-dir", str(runs), "--no-ledger",
        ]) == 0
        capsys.readouterr()
        assert not runs.exists()

    def test_flame_out_writes_collapsed_stacks(self, tmp_path, capsys):
        flame = tmp_path / "flame.txt"
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--flame-out", str(flame),
        ]) == 0
        capsys.readouterr()
        lines = flame.read_text().splitlines()
        assert lines == sorted(lines) and lines
        assert any("sampler.build_plan" in line for line in lines)

    def test_grid_record_carries_worker_resources(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "grid", "rodinia", "bfs", "--methods", "random,stem",
            "--repetitions", "2", "--scale", "0.4", "--jobs", "2",
            "--runs-dir", runs,
        ]) == 0
        capsys.readouterr()
        record = obs.RunLedger(runs).latest()
        workers = record.timing.get("workers", [])
        assert workers, "parallel run should report worker resource snaps"
        labels = [w["worker"] for w in workers]
        assert labels == sorted(labels)
        assert all("max_rss_kb" in w and "wall_s" in w for w in workers)
