"""Tests for single-pass streaming profile ingestion."""

import numpy as np
import pytest

from repro.core import StemRootSampler, evaluate_plan
from repro.core.streaming import Reservoir, StreamingProfile, WelfordAccumulator


class TestWelford:
    def test_matches_numpy(self, rng):
        values = rng.lognormal(1.0, 0.4, 500)
        acc = WelfordAccumulator()
        acc.add_many(values)
        assert acc.count == 500
        assert acc.mean == pytest.approx(values.mean())
        assert acc.std == pytest.approx(values.std(), rel=1e-9)

    def test_empty_variance_zero(self):
        assert WelfordAccumulator().variance == 0.0

    def test_stats_requires_data(self):
        with pytest.raises(ValueError):
            WelfordAccumulator().stats()

    def test_single_value(self):
        acc = WelfordAccumulator()
        acc.add(3.0)
        stats = acc.stats()
        assert stats.n == 1
        assert stats.mu == 3.0
        assert stats.sigma == 0.0


class TestReservoir:
    def test_keeps_everything_under_capacity(self, rng):
        reservoir = Reservoir(100, rng)
        for i in range(50):
            reservoir.offer(i, float(i))
        indices, values = reservoir.as_arrays()
        assert np.array_equal(indices, np.arange(50))

    def test_bounded_above_capacity(self, rng):
        reservoir = Reservoir(32, rng)
        for i in range(10_000):
            reservoir.offer(i, float(i))
        indices, _ = reservoir.as_arrays()
        assert len(indices) == 32
        assert reservoir.seen == 10_000

    def test_approximately_uniform(self):
        """Late items appear with roughly capacity/seen probability."""
        hits = 0
        trials = 300
        for t in range(trials):
            reservoir = Reservoir(10, np.random.default_rng(t))
            for i in range(100):
                reservoir.offer(i, float(i))
            indices, _ = reservoir.as_arrays()
            hits += int(99 in indices)
        # Expect ~10% inclusion of the last element.
        assert 0.04 < hits / trials < 0.2

    def test_capacity_validation(self, rng):
        with pytest.raises(ValueError):
            Reservoir(0, rng)


class TestStreamingProfile:
    def test_chunked_ingestion_counts(self, mixed, mixed_times):
        profile = StreamingProfile(reservoir_size=256)
        profile.ingest_workload_chunked(mixed, mixed_times, chunk_size=100)
        assert profile.total_ingested == len(mixed)
        assert set(profile.kernel_names()) == set(mixed.kernel_names())

    def test_group_stats_match_exact(self, mixed, mixed_times):
        profile = StreamingProfile(reservoir_size=256)
        profile.ingest_workload_chunked(mixed, mixed_times)
        for name, indices in mixed.indices_by_name().items():
            exact = mixed_times[indices]
            stats = profile.group_stats(name)
            assert stats.n == len(indices)
            assert stats.mu == pytest.approx(exact.mean())
            assert stats.sigma == pytest.approx(exact.std(), rel=1e-9)

    def test_mismatched_chunk_rejected(self):
        profile = StreamingProfile()
        with pytest.raises(ValueError):
            profile.ingest(["a"], np.array([0, 1]), np.array([1.0]))

    def test_plan_represents_full_stream(self, mixed, mixed_times):
        profile = StreamingProfile(reservoir_size=512, seed=1)
        profile.ingest_workload_chunked(mixed, mixed_times)
        plan = profile.build_plan(seed=2)
        assert plan.represented_invocations == len(mixed)
        assert plan.method == "stem-streaming"

    def test_streaming_accuracy_close_to_exact(self, mixed, mixed_times):
        profile = StreamingProfile(reservoir_size=512, seed=1)
        profile.ingest_workload_chunked(mixed, mixed_times)
        streamed = evaluate_plan(profile.build_plan(seed=2), mixed_times)
        exact = evaluate_plan(
            StemRootSampler().build_plan(mixed, mixed_times, seed=2), mixed_times
        )
        assert streamed.error_percent < 5.0
        assert abs(streamed.error_percent - exact.error_percent) < 5.0

    def test_memory_bounded_by_reservoir(self, mixed, mixed_times):
        profile = StreamingProfile(reservoir_size=64)
        profile.ingest_workload_chunked(mixed, mixed_times)
        for name in profile.kernel_names():
            indices, _ = profile._reservoirs[name].as_arrays()
            assert len(indices) <= 64


class TestStreamingEdgeCases:
    def test_plan_total_exact_with_tiny_reservoir(self, mixed, mixed_times):
        """Aggressive rounding (reservoir << group) still balances to the
        exact stream size."""
        profile = StreamingProfile(reservoir_size=16, seed=2)
        profile.ingest_workload_chunked(mixed, mixed_times)
        plan = profile.build_plan(seed=3)
        assert plan.represented_invocations == len(mixed)

    def test_single_kernel_stream(self):
        profile = StreamingProfile(reservoir_size=8)
        profile.ingest(["k"] * 5, np.arange(5), np.array([1.0, 1.1, 0.9, 1.2, 1.0]))
        plan = profile.build_plan()
        assert plan.represented_invocations == 5
