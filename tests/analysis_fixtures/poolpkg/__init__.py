"""Fixture package: impure pool workers the name-based lint rule misses."""
