"""Fixture: a picklable worker that is transitively impure."""

from repro.parallel import run_tasks

_RESULTS = {}


def _accumulate(key, value):
    _RESULTS[key] = value  # line 9: global write, two hops from the pool
    return value


def _worker(payload):
    return _accumulate(payload, payload * 2)


def run(payloads):
    # The worker is a module-level function — picklable, so the
    # name-based lint tier approves — but its call closure mutates a
    # module global, so parallel results depend on worker scheduling.
    return run_tasks(_worker, payloads)


def _pure_worker(payload):
    return payload * 2


def fine(payloads):
    return run_tasks(_pure_worker, payloads)
