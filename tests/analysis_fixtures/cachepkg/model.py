"""Fixture: a keyed class whose key forgets a field the math reads.

No TOML entry: discovered implicitly through ``memo_identity``.
"""


class Estimator:
    def __init__(self, alpha, beta):
        self.alpha = alpha
        self.beta = beta  # influences predict() but missing from the key

    def memo_identity(self):
        return ("Estimator", self.alpha)

    def predict(self, x):
        return self.alpha * x + self.beta
