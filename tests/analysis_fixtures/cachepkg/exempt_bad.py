"""Fixture: an exemption declared without a written justification."""


class UnjustifiedExempt:
    def __init__(self, depth, tuning):
        self.depth = depth
        self.tuning = tuning  # exempted in TOML, but nobody wrote down why

    def memo_identity(self):
        return ("UnjustifiedExempt", self.depth)

    def solve(self):
        return self.depth * self.tuning.get("gain", 1.0)
