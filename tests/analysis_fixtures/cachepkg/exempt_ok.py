"""Fixture: a reviewed, justified exemption — must stay clean."""


class JustifiedExempt:
    def __init__(self, epsilon, cache_handle=None):
        self.epsilon = epsilon
        self.cache_handle = cache_handle  # exempt in pyproject.toml

    def memo_identity(self):
        return ("JustifiedExempt", self.epsilon)

    def lookup(self, key):
        if self.cache_handle is not None:
            return self.cache_handle.get(key)
        return None
