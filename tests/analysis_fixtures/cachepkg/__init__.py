"""Fixture package: cache-key soundness (influence vs serialization)."""
