"""Fixture helper: a seed laundered through an innocent-looking helper."""

import time


def wall_seed():
    return int(time.time())  # tainted: wall-clock read


def stable_seed(base, index):
    return base * 1000003 + index  # pure function of explicit inputs
