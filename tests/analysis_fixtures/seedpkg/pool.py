"""Fixture: a seeded generator escaping into pool-reachable shared state."""

import numpy as np

from repro.parallel import run_tasks

_SHARED_RNG = np.random.default_rng(1234)


def _jitter(value):
    # line 12: draws from process-shared generator inside a worker's
    # call closure — draw order depends on scheduling, not the payload.
    return value + _SHARED_RNG.normal()


def _worker(payload):
    return _jitter(payload)


def run(payloads):
    return run_tasks(_worker, payloads)


def fine(payload, seed):
    # A fresh per-call generator from an explicit seed: allowed.
    rng = np.random.default_rng(seed)
    return payload + rng.normal()
