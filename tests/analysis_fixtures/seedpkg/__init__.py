"""Fixture package: seeds derived from ambient process state."""
