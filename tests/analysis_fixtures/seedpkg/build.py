"""Fixture: tainted seeds reaching RNG constructors across call chains."""

import numpy as np

from .clock import stable_seed, wall_seed


def direct():
    # line 10: source and sink in one expression
    return np.random.default_rng(int(time_like()))


def time_like():
    import time

    return time.time()


def interprocedural():
    # line 20: the taint arrives through wall_seed()'s return value
    return np.random.default_rng(wall_seed())


def process_salted(name):
    # line 25: hash() of a str differs between processes (PYTHONHASHSEED)
    return np.random.default_rng(hash(name))


def fine(base, index):
    # Explicit inputs through a pure helper: must not fire.
    return np.random.default_rng(stable_seed(base, index))


def fine_laundered(names, base):
    # sorted() launders iteration-order taint from the set.
    ordered = sorted(set(names))
    return np.random.default_rng(base + len(ordered))
