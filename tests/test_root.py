"""Tests for ROOT's recursive hierarchical clustering."""

import numpy as np
import pytest

from repro.core.root import RootConfig, RootTreeNode, root_split
from repro.core.stem import ClusterStats, predicted_simulated_time, kkt_sample_sizes


def trimodal_sample(rng, n=1200, centers=(10.0, 50.0, 250.0), rel_width=0.02):
    parts = [rng.normal(c, c * rel_width, n // len(centers)) for c in centers]
    return np.abs(np.concatenate(parts))


class TestRootConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"k": 1},
            {"min_cluster_size": 1},
            {"max_depth": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RootConfig(**kwargs)


class TestRootSplit:
    def test_separates_three_peaks(self, rng):
        times = trimodal_sample(rng)
        leaves = root_split(times, rng=rng)
        assert len(leaves) >= 3
        # Every leaf should be a narrow slice of one peak.
        for leaf in leaves:
            assert leaf.stats.cov < 0.2

    def test_leaves_partition_input(self, rng):
        times = trimodal_sample(rng)
        leaves = root_split(times, rng=rng)
        merged = np.sort(np.concatenate([l.indices for l in leaves]))
        assert np.array_equal(merged, np.arange(len(times)))

    def test_narrow_unimodal_stays_single(self, rng):
        times = np.abs(rng.normal(100.0, 0.5, 500))
        leaves = root_split(times, rng=rng)
        assert len(leaves) == 1

    def test_zero_variance_stays_single(self, rng):
        leaves = root_split(np.full(100, 3.0), rng=rng)
        assert len(leaves) == 1
        assert leaves[0].stats.sigma == 0.0

    def test_small_cluster_never_split(self, rng):
        times = np.array([1.0, 100.0, 1.0, 100.0])
        leaves = root_split(times, config=RootConfig(min_cluster_size=8), rng=rng)
        assert len(leaves) == 1

    def test_empty_input(self, rng):
        assert root_split(np.array([]), rng=rng) == []

    def test_indices_are_propagated(self, rng):
        times = trimodal_sample(rng, n=300)
        offset_indices = np.arange(len(times)) + 5000
        leaves = root_split(times, indices=offset_indices, rng=rng)
        for leaf in leaves:
            assert leaf.indices.min() >= 5000

    def test_mismatched_indices_rejected(self, rng):
        with pytest.raises(ValueError):
            root_split(np.arange(5.0), indices=np.arange(3), rng=rng)

    def test_max_depth_caps_recursion(self, rng):
        times = trimodal_sample(rng)
        leaves = root_split(times, config=RootConfig(max_depth=0), rng=rng)
        assert len(leaves) == 1

    def test_split_reduces_simulated_time(self, rng):
        """Accepted splits must beat the unsplit cluster (Eqs. 7-8)."""
        times = trimodal_sample(rng)
        config = RootConfig()
        leaves = root_split(times, config=config, rng=rng)
        parent = ClusterStats.from_times(times)
        m_parent = kkt_sample_sizes([parent], epsilon=config.epsilon)
        tau_parent = predicted_simulated_time([parent], m_parent)
        leaf_stats = [l.stats for l in leaves]
        m_leaves = kkt_sample_sizes(leaf_stats, epsilon=config.epsilon)
        tau_leaves = predicted_simulated_time(leaf_stats, m_leaves)
        assert tau_leaves < tau_parent

    def test_tree_recording(self, rng):
        times = trimodal_sample(rng)
        tree = RootTreeNode(stats=ClusterStats.from_times(times), depth=0)
        leaves = root_split(times, tree=tree, rng=rng)
        assert tree.accepted_split
        assert tree.leaf_count() == len(leaves)

    def test_k3_splits_work(self, rng):
        """Paper: 'any number above 2 works well'."""
        times = trimodal_sample(rng)
        leaves = root_split(times, config=RootConfig(k=3), rng=rng)
        assert len(leaves) >= 3
        for leaf in leaves:
            assert leaf.stats.cov < 0.2

    def test_depth_recorded_on_leaves(self, rng):
        times = trimodal_sample(rng)
        leaves = root_split(times, rng=rng)
        assert any(l.depth > 0 for l in leaves)

    def test_deterministic_given_rng_seed(self):
        times = trimodal_sample(np.random.default_rng(3))
        a = root_split(times, rng=np.random.default_rng(9))
        b = root_split(times, rng=np.random.default_rng(9))
        assert len(a) == len(b)
        for la, lb in zip(a, b):
            assert np.array_equal(la.indices, lb.indices)
