"""Parametrized shape checks over every suite workload (miniature scale)."""

import numpy as np
import pytest

from repro.baselines import ProfileStore
from repro.core import StemRootSampler, evaluate_plan
from repro.hardware import RTX_2080
from repro.workloads import load_workload
from repro.workloads.generators.casio import CASIO
from repro.workloads.generators.huggingface import HUGGINGFACE
from repro.workloads.generators.rodinia import RODINIA

ALL_WORKLOADS = (
    [("rodinia", name, 0.2) for name in RODINIA.names()]
    + [("casio", name, 0.01) for name in CASIO.names()]
    + [("huggingface", name, 0.002) for name in HUGGINGFACE.names()]
)


@pytest.mark.parametrize("suite,name,scale", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_generates_and_profiles(self, suite, name, scale, timing):
        workload = load_workload(suite, name, scale=scale, seed=0)
        assert len(workload) > 0
        assert workload.suite == suite
        assert workload.name == name
        times = timing.execution_times(workload, seed=0)
        assert (times > 0).all()
        assert np.isfinite(times).all()

    def test_stem_plan_valid_and_bounded(self, suite, name, scale):
        workload = load_workload(suite, name, scale=scale, seed=0)
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler().build_plan_from_store(store, seed=0)
        plan.validate(len(workload))
        result = evaluate_plan(plan, store.execution_times())
        # Generous ceiling: small scales are noisy, but the bound keeps
        # even miniature versions in the single digits.
        assert result.error_percent < 12.0

    def test_columns_within_domains(self, suite, name, scale):
        workload = load_workload(suite, name, scale=scale, seed=0)
        assert (workload.work_scales > 0).all()
        assert (workload.localities >= 0).all()
        assert (workload.localities <= 1).all()
        assert (workload.efficiencies > 0).all()
