"""Tests for the theoretical error bounds and Theorem 3.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error_model import (
    plan_error_bound,
    union_error_bound,
    verify_union_theorem,
)
from repro.core.stem import ClusterStats, kkt_sample_sizes, predicted_error_multi

cluster_strategy = st.builds(
    ClusterStats,
    n=st.integers(min_value=1, max_value=50_000),
    mu=st.floats(min_value=0.01, max_value=1e3),
    sigma=st.floats(min_value=0.0, max_value=1e2),
)
cluster_set_strategy = st.lists(cluster_strategy, min_size=1, max_size=5)


class TestPlanErrorBound:
    def test_matches_predicted_error(self):
        clusters = [ClusterStats(n=100, mu=2.0, sigma=1.0)]
        assert plan_error_bound(clusters, [4]) == predicted_error_multi(clusters, [4])


class TestUnionTheorem:
    def test_union_of_bounded_sets_is_bounded(self):
        """Theorem 3.1 on a concrete pair of cluster sets."""
        set_a = [
            ClusterStats(n=1000, mu=5.0, sigma=2.0),
            ClusterStats(n=100, mu=50.0, sigma=20.0),
        ]
        set_b = [ClusterStats(n=500, mu=1.0, sigma=0.9)]
        sizes_a = kkt_sample_sizes(set_a, epsilon=0.05)
        sizes_b = kkt_sample_sizes(set_b, epsilon=0.05)
        holds, union_error = verify_union_theorem(
            [set_a, set_b], [sizes_a, sizes_b], epsilon=0.05
        )
        assert holds
        assert union_error <= 0.05 + 1e-12

    def test_mismatched_sets_rejected(self):
        with pytest.raises(ValueError):
            union_error_bound([[ClusterStats(n=1, mu=1.0, sigma=0.0)]], [[1, 2]])

    @given(st.lists(cluster_set_strategy, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_property_union_theorem(self, cluster_sets):
        """Randomized Theorem 3.1: KKT-bounded sets stay bounded pooled."""
        size_sets = [kkt_sample_sizes(cs, epsilon=0.05) for cs in cluster_sets]
        holds, _ = verify_union_theorem(cluster_sets, size_sets, epsilon=0.05)
        assert holds

    def test_vacuous_when_precondition_fails(self):
        """A set violating its own bound makes the theorem vacuously hold."""
        bad = [ClusterStats(n=1000, mu=1.0, sigma=10.0)]
        holds, union_error = verify_union_theorem([bad], [[1]], epsilon=0.001)
        assert holds
        assert np.isnan(union_error)
