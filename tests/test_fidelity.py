"""Multi-fidelity suite: analytical tier, screened DSE, honest ε accounting.

The contract has three legs:

1. ``fidelity=cycle`` is the legacy path, bit for bit — same arrays from
   :func:`~repro.core.fidelity.fidelity_cycle_counts`, same rows from
   :func:`~repro.experiments.dse.run_dse`.
2. The analytical screen is calibrated and *measured*: probes are exact
   cycle-level values, and the reported gap is an empirical residual
   quantile with a safety margin, never a guess.
3. ε stays honest under mixing: achieved error versus cycle-level truth
   is within the combined ``ε(1+g) + g`` bound on every variant, seed
   and fault plan exercised here.
"""

import dataclasses
import math
import os

import numpy as np
import pytest

from repro.baselines import ProfileStore
from repro.core import (
    FIDELITY_MODES,
    FidelityPolicy,
    StemRootSampler,
    combine_fidelity_bound,
    evaluate_plan,
    fidelity_cycle_counts,
    probe_indices,
    tail_gap,
    verify_fidelity_bound,
)
from repro.experiments.dse import DseWorkloadSpec, dse_variants, run_dse
from repro.experiments.error_bound_sweep import SimGroundTruth
from repro.hardware import RTX_2080
from repro.memo import SimResultCache
from repro.resilience import FaultPlan
from repro.sim import ANALYTICAL_VERSION, AnalyticalSimulator, GpuSimulator
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def workload():
    """60-invocation hotspot slice: one kernel name, varied draws."""
    full = load_workload("rodinia", "hotspot", scale=0.1, seed=0)
    picks = np.unique(np.linspace(0, len(full) - 1, 60).astype(np.int64))
    return full.subset(picks, name="hotspot")


@pytest.fixture(scope="module")
def mixed_names_workload():
    """Multi-kernel-name workload so per-name calibration is exercised."""
    full = load_workload("huggingface", "gpt2", scale=0.002, seed=0)
    picks = np.unique(np.linspace(0, len(full) - 1, 80).astype(np.int64))
    return full.subset(picks, name="gpt2")


def _capped(suite, name, scale, cap, seed=0):
    wl = load_workload(suite, name, scale=scale, seed=seed)
    if len(wl) > cap:
        picks = np.linspace(0, len(wl) - 1, cap)
        wl = wl.subset(np.unique(picks.astype(np.int64)), name=name)
    return wl


@pytest.fixture(scope="module")
def backprop_workload():
    """The configuration that broke the pre-tail-aware gap (REVIEW.md):
    full-scale backprop, capped at 48 invocations — heterogeneous enough
    that in-sample probe residuals understate unseen ones."""
    return _capped("rodinia", "backprop", 1.0, 48)


@pytest.fixture(scope="module")
def cycle_truth(workload):
    return GpuSimulator(RTX_2080).cycle_counts(workload, seed=0)


class TestAnalyticalSimulator:
    def test_surface_matches_gpu_simulator(self, workload):
        sim = AnalyticalSimulator(RTX_2080)
        result = sim.simulate_workload(workload, seed=0)
        oracle = GpuSimulator(RTX_2080).simulate_workload(workload, seed=0)
        assert len(result.kernel_results) == len(oracle.kernel_results)
        for ra, rb in zip(result.kernel_results, oracle.kernel_results):
            assert ra.invocation_index == rb.invocation_index
            assert ra.cycles > 0
            assert set(ra.stats.as_dict()) == set(rb.stats.as_dict())

    def test_cycle_counts_deterministic(self, workload):
        a = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=3)
        b = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=3)
        assert np.array_equal(a, b)
        assert np.all(np.isfinite(a)) and np.all(a > 0)

    def test_memo_identity_versioned_and_distinct(self):
        ana = AnalyticalSimulator(RTX_2080).memo_identity()
        cyc = GpuSimulator(RTX_2080).memo_identity()
        assert ana.startswith(f"analytical-v{ANALYTICAL_VERSION}")
        assert ana != cyc

    def test_cache_tiers_never_cross(self, workload, tmp_path):
        """A shared cache dir must keep analytical and cycle raw results
        in distinct contexts — a cross-tier hit would silently swap the
        oracle for the screen."""
        cache = SimResultCache(str(tmp_path))
        AnalyticalSimulator(RTX_2080, sim_cache=cache).cycle_counts(
            workload, seed=0
        )
        cached = GpuSimulator(RTX_2080, sim_cache=cache).cycle_counts(
            workload, seed=0
        )
        plain = GpuSimulator(RTX_2080).cycle_counts(workload, seed=0)
        assert np.array_equal(cached, plain)

    def test_tracks_cycle_totals_after_calibration(self, workload, cycle_truth):
        """One global scale should land the analytical total within ~50%
        of the oracle — the screen is a predictor, not noise."""
        screened = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=0)
        scale = float(np.exp(np.mean(np.log(cycle_truth) - np.log(screened))))
        total_err = abs(float((screened * scale).sum()) - cycle_truth.sum())
        assert total_err / cycle_truth.sum() < 0.5


class TestFidelityPolicy:
    def test_defaults_valid(self):
        policy = FidelityPolicy()
        assert policy.mode in FIDELITY_MODES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "quantum"},
            {"probe_count": 1},
            {"escalation_budget": -0.1},
            {"escalation_budget": 1.5},
            {"gap_quantile": 0.0},
            {"gap_quantile": 1.5},
            {"gap_safety": 0.5},
            {"min_gap": -0.01},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FidelityPolicy(**kwargs)

    def test_every_knob_changes_memo_identity(self):
        base = FidelityPolicy()
        variants = [
            FidelityPolicy(mode="analytical"),
            FidelityPolicy(probe_count=9),
            FidelityPolicy(escalation_budget=0.07),
            FidelityPolicy(gap_quantile=0.9),
            FidelityPolicy(gap_safety=1.5),
            FidelityPolicy(min_gap=0.02),
        ]
        assert len(variants) == len(dataclasses.fields(FidelityPolicy))
        identities = {p.memo_identity() for p in [base] + variants}
        assert len(identities) == len(variants) + 1


class TestCacheKeyLint:
    """`repro lint` pins FidelityPolicy's complete memo_identity()."""

    def test_fidelity_policy_key_covers_every_field(self):
        """Unlike BatchPolicy (all knobs exempt — execution strategy
        only), every FidelityPolicy field changes screened values, so the
        pyproject spec must name memo_identity with no exemptions."""
        from repro.lint import load_config, run_lint

        repo_config = os.path.join(
            os.path.dirname(__file__), "..", "pyproject.toml"
        )
        config = load_config(repo_config)
        specs = [s for s in config.cache_keys if s.cls == "FidelityPolicy"]
        assert len(specs) == 1
        spec = specs[0]
        assert spec.key == "memo_identity"
        assert not spec.exempt
        result = run_lint(config)
        assert not [
            f for f in result.findings if "FidelityPolicy" in f.message
        ], [f.format_text() for f in result.findings]


class TestCombineFidelityBound:
    def test_zero_gap_is_plain_epsilon(self):
        assert combine_fidelity_bound(0.05, 0.0) == 0.05

    def test_triangle_inequality_form(self):
        assert combine_fidelity_bound(0.05, 0.1) == pytest.approx(
            0.05 * 1.1 + 0.1
        )

    @pytest.mark.parametrize("eps,gap", [(-0.01, 0.0), (0.05, -0.1)])
    def test_rejects_negative_inputs(self, eps, gap):
        with pytest.raises(ValueError):
            combine_fidelity_bound(eps, gap)

    def test_verify_fidelity_bound(self):
        holds, achieved, bound = verify_fidelity_bound(
            103.0, 100.0, epsilon=0.05, fidelity_gap=0.02
        )
        assert holds
        assert achieved == pytest.approx(0.03)
        assert bound == pytest.approx(0.05 * 1.02 + 0.02)
        holds, achieved, _ = verify_fidelity_bound(
            120.0, 100.0, epsilon=0.05, fidelity_gap=0.02
        )
        assert not holds and achieved == pytest.approx(0.20)


class TestTailGap:
    """The reported gap extrapolates probe residuals to unseen draws."""

    def test_no_unseen_is_plain_quantile(self):
        res = np.array([0.01, 0.05, 0.02, 0.08])
        assert tail_gap(res, 1.0, 0) == pytest.approx(0.08)
        assert tail_gap(res, 0.5, 0) == pytest.approx(
            float(np.quantile(res, 0.5))
        )

    def test_unseen_widens_monotonically(self):
        res = np.array([0.01, 0.05, 0.02, 0.08, 0.03, 0.06])
        gaps = [tail_gap(res, 1.0, m) for m in (0, 10, 100, 1000)]
        assert gaps == sorted(gaps)
        assert gaps[1] > gaps[0]  # any unseen mass strictly widens

    def test_dispersion_drives_the_inflation(self):
        tight = np.full(8, 0.05)
        wide = np.array([0.01, 0.02, 0.05, 0.10, 0.01, 0.03, 0.08, 0.12])
        # Zero excess over the median -> no inflation however many
        # unseen draws; dispersed residuals -> real inflation.
        assert tail_gap(tight, 1.0, 1000) == pytest.approx(0.05)
        assert tail_gap(wide, 1.0, 1000) > float(wide.max())

    def test_empty_and_single_residual_safe(self):
        assert tail_gap(np.zeros(0), 1.0, 100) == 0.0
        assert tail_gap(np.array([0.04]), 1.0, 100) == pytest.approx(0.04)


class TestFidelityCycleCounts:
    def test_cycle_mode_bit_identical(self, workload, cycle_truth):
        times = fidelity_cycle_counts(
            workload, RTX_2080, seed=0, policy=FidelityPolicy(mode="cycle")
        )
        assert np.array_equal(times.values, cycle_truth)
        assert times.cycle_mask.all()
        assert times.gap == 0.0
        assert times.effective_gap == 0.0
        assert times.error_bound(0.05) == 0.05

    def test_probe_indices_cover_every_name(self, mixed_names_workload):
        policy = FidelityPolicy()
        probes = probe_indices(mixed_names_workload, policy)
        probed_names = set()
        by_name = mixed_names_workload.indices_by_name()
        for name, idxs in by_name.items():
            hits = len(set(map(int, idxs)) & set(map(int, probes)))
            assert hits >= min(2, len(idxs)), f"{name} under-probed"
            probed_names.add(name)
        assert probed_names == set(by_name)
        assert np.array_equal(probes, probe_indices(mixed_names_workload, policy))

    def test_analytical_mode_probes_are_exact(self, workload, cycle_truth):
        policy = FidelityPolicy(mode="analytical")
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0, policy=policy)
        probes = probe_indices(workload, policy)
        assert np.array_equal(times.values[probes], cycle_truth[probes])
        assert int(times.cycle_mask.sum()) == len(probes)
        assert times.escalations == 0
        assert times.gap >= policy.min_gap
        assert times.calibration  # per-name scales recorded

    def test_hybrid_escalates_top_values_exactly(self, workload, cycle_truth):
        policy = FidelityPolicy(mode="hybrid", escalation_budget=0.1)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0, policy=policy)
        expected = math.ceil(0.1 * len(workload))
        assert times.escalations == expected
        assert int(times.cycle_mask.sum()) == times.probes + expected
        # Every cycle-tier entry matches the oracle exactly.
        mask = times.cycle_mask
        assert np.array_equal(times.values[mask], cycle_truth[mask])
        # Escalation is risk x value; a single-name workload has uniform
        # risk, so escalations took the largest remaining values: every
        # screened (analytical) value is <= the smallest escalated one.
        esc_values = times.values[mask]
        assert times.values[~mask].max() <= esc_values.max()

    def test_deterministic_across_calls(self, workload):
        a = fidelity_cycle_counts(workload, RTX_2080, seed=5)
        b = fidelity_cycle_counts(workload, RTX_2080, seed=5)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.cycle_mask, b.cycle_mask)
        assert a.gap == b.gap

    def test_effective_gap_never_exceeds_measured_gap(self, workload):
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        assert 0.0 < times.effective_gap <= times.gap
        assert times.error_bound(0.05) == combine_fidelity_bound(
            0.05, times.effective_gap
        )


class TestEpsilonHonesty:
    #: (suite, name, scale, cap) — one homogeneous workload, one
    #: heterogeneous multi-name one, and the full-scale backprop slice
    #: that violated the pre-tail-aware bound (REVIEW.md: max probe
    #: residual x 1.25 was exceeded on 3+ (seed, variant) combos).
    POPULATIONS = [
        ("rodinia", "hotspot", 0.1, 60),
        ("rodinia", "backprop", 1.0, 48),
        ("huggingface", "gpt2", 0.002, 80),
    ]

    @pytest.mark.parametrize("spec", POPULATIONS, ids=lambda s: s[1])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_total_within_gap_on_every_variant(self, spec, seed):
        """|sum(screened) - sum(truth)| / sum(truth) <= effective gap,
        per workload, scale, seed and hardware variant — the inequality
        the combined bound rests on, checked empirically like
        verify_union_theorem.  The gap must hold on *unseen*
        invocations, which only a tail-aware estimate survives."""
        suite, name, scale, cap = spec
        wl = _capped(suite, name, scale, cap, seed=seed)
        for gpu in dse_variants(RTX_2080):
            times = fidelity_cycle_counts(wl, gpu, seed=seed)
            truth = GpuSimulator(gpu).cycle_counts(wl, seed=seed)
            achieved = abs(float(times.values.sum()) - truth.sum()) / truth.sum()
            assert achieved <= times.effective_gap + 1e-12, (
                f"{name} seed={seed}: achieved {achieved:.4f} > "
                f"effective gap {times.effective_gap:.4f}"
            )

    def test_plan_error_within_combined_bound(self, workload, cycle_truth):
        """STEM estimate scored on hybrid truth stays within ε + gap of
        the *cycle-level* total."""
        store = ProfileStore(workload, RTX_2080, seed=0)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        sampler = StemRootSampler(epsilon=0.10, fidelity_gap=times.gap)
        plan = sampler.build_plan_from_store(store, seed=0)
        result = evaluate_plan(plan, times)
        holds, achieved, bound = verify_fidelity_bound(
            result.estimated_total,
            float(cycle_truth.sum()),
            epsilon=0.10,
            fidelity_gap=times.effective_gap,
        )
        assert holds, f"achieved {achieved:.4f} > bound {bound:.4f}"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_plan_error_within_combined_bound_heterogeneous(
        self, backprop_workload, seed
    ):
        """Same combined-bound property on the workload that broke the
        pre-tail-aware gap, across every DSE variant."""
        store = ProfileStore(backprop_workload, RTX_2080, seed=seed)
        for gpu in dse_variants(RTX_2080):
            times = fidelity_cycle_counts(backprop_workload, gpu, seed=seed)
            sampler = StemRootSampler(epsilon=0.10, fidelity_gap=times.gap)
            plan = sampler.build_plan_from_store(store, seed=seed)
            result = evaluate_plan(plan, times)
            truth = GpuSimulator(gpu).cycle_counts(backprop_workload, seed=seed)
            holds, achieved, bound = verify_fidelity_bound(
                result.estimated_total,
                float(truth.sum()),
                epsilon=0.10,
                fidelity_gap=times.effective_gap,
            )
            assert holds, f"achieved {achieved:.4f} > bound {bound:.4f}"

    def test_sampler_folds_gap_into_predicted_error(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        plain = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        gapped = StemRootSampler(
            epsilon=0.10, fidelity_gap=0.05
        ).build_plan_from_store(store, seed=0)
        assert gapped.metadata["fidelity_gap"] == 0.05
        assert gapped.metadata["predicted_error"] > plain.metadata["predicted_error"]

    def test_sampler_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            StemRootSampler(fidelity_gap=-0.1)


class TestEvaluatePlanMetadata:
    def test_fidelity_tiers_on_result(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        plan = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        result = evaluate_plan(plan, times)
        tiers = result.fidelity_tiers
        assert set(tiers) == {c.label for c in plan.clusters}
        assert set(tiers.values()) <= {"cycle", "analytical", "mixed"}
        summary = result.fidelity
        assert summary["mode"] == "hybrid"
        assert summary["gap"] == times.gap
        assert summary["probes"] == times.probes
        assert summary["tiers"] == tiers
        # The plan's copy is keyed (label falls back to the mode).
        assert plan.metadata["fidelity"]["hybrid"] == summary

    def test_provenance_not_clobbered_across_variants(self, workload):
        """One plan scored against several labeled ground truths (the
        DSE pattern) must keep every variant's provenance — the exact
        bug REVIEW.md flagged in the single-slot metadata write."""
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        summaries = {}
        for label, gpu in zip(
            ["baseline", "sm_x2"], [RTX_2080, dse_variants(RTX_2080)[3]]
        ):
            times = fidelity_cycle_counts(workload, gpu, seed=0)
            times.label = label
            result = evaluate_plan(plan, times)
            assert result.fidelity["label"] == label
            summaries[label] = result.fidelity
        assert set(plan.metadata["fidelity"]) == {"baseline", "sm_x2"}
        for label, summary in summaries.items():
            assert plan.metadata["fidelity"][label] == summary
        gaps = {s["gap"] for s in summaries.values()}
        assert len(gaps) == 2  # distinct variants, distinct measured gaps

    def test_plain_ndarray_path_untouched(self, workload, cycle_truth):
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        result = evaluate_plan(plan, cycle_truth)
        assert "fidelity" not in plan.metadata
        assert result.fidelity is None
        assert result.fidelity_tiers is None
        assert result.true_total == pytest.approx(float(cycle_truth.sum()))


SPEC = DseWorkloadSpec("rodinia", "hotspot", 0.1, 30)
#: The configuration whose hybrid rows violated the reported bound
#: before the gap became tail-aware (REVIEW.md).
HARD_SPEC = DseWorkloadSpec("rodinia", "backprop", 1.0, 48)


class TestRunDse:
    def test_cycle_fidelity_bit_identical_to_legacy(self):
        legacy = run_dse(
            workloads=[SPEC], methods=["stem"], repetitions=1, seed=0, jobs=1
        )
        cycle = run_dse(
            workloads=[SPEC],
            methods=["stem"],
            repetitions=1,
            seed=0,
            jobs=1,
            fidelity="cycle",
        )
        assert legacy == cycle
        assert all(r.fidelity == "cycle" and r.fidelity_gap == 0.0 for r in cycle)
        # On cycle rows the whole ground-truth total is cycle-level.
        assert all(r.cycle_tier_cycles == r.full_cycles for r in cycle)

    @pytest.mark.parametrize(
        "spec,seed",
        [(SPEC, 0), (HARD_SPEC, 0), (HARD_SPEC, 1)],
        ids=["hotspot-s0", "backprop-s0", "backprop-s1"],
    )
    def test_hybrid_rows_honest_and_annotated(self, spec, seed):
        cycle = run_dse(
            workloads=[spec], methods=["stem"], repetitions=1, seed=seed, jobs=1
        )
        hybrid = run_dse(
            workloads=[spec],
            methods=["stem"],
            repetitions=1,
            seed=seed,
            jobs=1,
            fidelity="hybrid",
        )
        truth = {(r.workload, r.variant): r.full_cycles for r in cycle}
        assert len(hybrid) == len(cycle)
        for row in hybrid:
            assert row.fidelity == "hybrid"
            assert row.fidelity_gap > 0.0
            assert row.error_bound_percent > 5.0  # above plain eps=5%
            # The known-exact portion of the screened total is the
            # probes + escalations, a strict non-empty subset.
            assert 0.0 < row.cycle_tier_cycles < row.full_cycles
            true_total = truth[(row.workload, row.variant)]
            achieved = abs(row.estimated_cycles - true_total) / true_total * 100
            assert achieved <= row.error_bound_percent + 1e-9

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValueError):
            run_dse(workloads=[SPEC], fidelity="quantum")

    def test_hybrid_survives_fault_plan(self):
        rows = run_dse(
            workloads=[SPEC],
            methods=["stem"],
            repetitions=1,
            seed=0,
            jobs=1,
            fidelity="hybrid",
            fault_plan=FaultPlan.from_spec("seed=3672,nan=0.05,cache_corrupt=0.5"),
        )
        assert rows  # poisoned cells degrade; the grid still completes
        assert all(r.fidelity == "hybrid" for r in rows)


class TestSweepGroundTruth:
    def test_cycle_default_bit_identical(self, workload, cycle_truth):
        store = ProfileStore(workload, RTX_2080, seed=0)
        truth = SimGroundTruth()
        assert np.array_equal(truth(store, 0), cycle_truth)

    def test_hybrid_returns_plain_array(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        truth = SimGroundTruth(fidelity="hybrid", escalation_budget=0.1)
        values = truth(store, 0)
        assert isinstance(values, np.ndarray)
        assert len(values) == len(workload)
        assert np.all(values > 0)
