"""Multi-fidelity suite: analytical tier, screened DSE, honest ε accounting.

The contract has three legs:

1. ``fidelity=cycle`` is the legacy path, bit for bit — same arrays from
   :func:`~repro.core.fidelity.fidelity_cycle_counts`, same rows from
   :func:`~repro.experiments.dse.run_dse`.
2. The analytical screen is calibrated and *measured*: probes are exact
   cycle-level values, and the reported gap is an empirical residual
   quantile with a safety margin, never a guess.
3. ε stays honest under mixing: achieved error versus cycle-level truth
   is within the combined ``ε(1+g) + g`` bound on every variant, seed
   and fault plan exercised here.
"""

import dataclasses
import math
import os

import numpy as np
import pytest

from repro.baselines import ProfileStore
from repro.core import (
    FIDELITY_MODES,
    FidelityPolicy,
    StemRootSampler,
    combine_fidelity_bound,
    evaluate_plan,
    fidelity_cycle_counts,
    probe_indices,
    verify_fidelity_bound,
)
from repro.experiments.dse import DseWorkloadSpec, dse_variants, run_dse
from repro.experiments.error_bound_sweep import SimGroundTruth
from repro.hardware import RTX_2080
from repro.memo import SimResultCache
from repro.resilience import FaultPlan
from repro.sim import ANALYTICAL_VERSION, AnalyticalSimulator, GpuSimulator
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def workload():
    """60-invocation hotspot slice: one kernel name, varied draws."""
    full = load_workload("rodinia", "hotspot", scale=0.1, seed=0)
    picks = np.unique(np.linspace(0, len(full) - 1, 60).astype(np.int64))
    return full.subset(picks, name="hotspot")


@pytest.fixture(scope="module")
def mixed_names_workload():
    """Multi-kernel-name workload so per-name calibration is exercised."""
    full = load_workload("huggingface", "gpt2", scale=0.002, seed=0)
    picks = np.unique(np.linspace(0, len(full) - 1, 80).astype(np.int64))
    return full.subset(picks, name="gpt2")


@pytest.fixture(scope="module")
def cycle_truth(workload):
    return GpuSimulator(RTX_2080).cycle_counts(workload, seed=0)


class TestAnalyticalSimulator:
    def test_surface_matches_gpu_simulator(self, workload):
        sim = AnalyticalSimulator(RTX_2080)
        result = sim.simulate_workload(workload, seed=0)
        oracle = GpuSimulator(RTX_2080).simulate_workload(workload, seed=0)
        assert len(result.kernel_results) == len(oracle.kernel_results)
        for ra, rb in zip(result.kernel_results, oracle.kernel_results):
            assert ra.invocation_index == rb.invocation_index
            assert ra.cycles > 0
            assert set(ra.stats.as_dict()) == set(rb.stats.as_dict())

    def test_cycle_counts_deterministic(self, workload):
        a = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=3)
        b = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=3)
        assert np.array_equal(a, b)
        assert np.all(np.isfinite(a)) and np.all(a > 0)

    def test_memo_identity_versioned_and_distinct(self):
        ana = AnalyticalSimulator(RTX_2080).memo_identity()
        cyc = GpuSimulator(RTX_2080).memo_identity()
        assert ana.startswith(f"analytical-v{ANALYTICAL_VERSION}")
        assert ana != cyc

    def test_cache_tiers_never_cross(self, workload, tmp_path):
        """A shared cache dir must keep analytical and cycle raw results
        in distinct contexts — a cross-tier hit would silently swap the
        oracle for the screen."""
        cache = SimResultCache(str(tmp_path))
        AnalyticalSimulator(RTX_2080, sim_cache=cache).cycle_counts(
            workload, seed=0
        )
        cached = GpuSimulator(RTX_2080, sim_cache=cache).cycle_counts(
            workload, seed=0
        )
        plain = GpuSimulator(RTX_2080).cycle_counts(workload, seed=0)
        assert np.array_equal(cached, plain)

    def test_tracks_cycle_totals_after_calibration(self, workload, cycle_truth):
        """One global scale should land the analytical total within ~50%
        of the oracle — the screen is a predictor, not noise."""
        screened = AnalyticalSimulator(RTX_2080).cycle_counts(workload, seed=0)
        scale = float(np.exp(np.mean(np.log(cycle_truth) - np.log(screened))))
        total_err = abs(float((screened * scale).sum()) - cycle_truth.sum())
        assert total_err / cycle_truth.sum() < 0.5


class TestFidelityPolicy:
    def test_defaults_valid(self):
        policy = FidelityPolicy()
        assert policy.mode in FIDELITY_MODES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "quantum"},
            {"probe_count": 1},
            {"escalation_budget": -0.1},
            {"escalation_budget": 1.5},
            {"gap_quantile": 0.0},
            {"gap_quantile": 1.5},
            {"gap_safety": 0.5},
            {"min_gap": -0.01},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FidelityPolicy(**kwargs)

    def test_every_knob_changes_memo_identity(self):
        base = FidelityPolicy()
        variants = [
            FidelityPolicy(mode="analytical"),
            FidelityPolicy(probe_count=9),
            FidelityPolicy(escalation_budget=0.07),
            FidelityPolicy(gap_quantile=0.9),
            FidelityPolicy(gap_safety=1.5),
            FidelityPolicy(min_gap=0.02),
        ]
        assert len(variants) == len(dataclasses.fields(FidelityPolicy))
        identities = {p.memo_identity() for p in [base] + variants}
        assert len(identities) == len(variants) + 1


class TestCacheKeyLint:
    """`repro lint` pins FidelityPolicy's complete memo_identity()."""

    def test_fidelity_policy_key_covers_every_field(self):
        """Unlike BatchPolicy (all knobs exempt — execution strategy
        only), every FidelityPolicy field changes screened values, so the
        pyproject spec must name memo_identity with no exemptions."""
        from repro.lint import load_config, run_lint

        repo_config = os.path.join(
            os.path.dirname(__file__), "..", "pyproject.toml"
        )
        config = load_config(repo_config)
        specs = [s for s in config.cache_keys if s.cls == "FidelityPolicy"]
        assert len(specs) == 1
        spec = specs[0]
        assert spec.key == "memo_identity"
        assert not spec.exempt
        result = run_lint(config)
        assert not [
            f for f in result.findings if "FidelityPolicy" in f.message
        ], [f.format_text() for f in result.findings]


class TestCombineFidelityBound:
    def test_zero_gap_is_plain_epsilon(self):
        assert combine_fidelity_bound(0.05, 0.0) == 0.05

    def test_triangle_inequality_form(self):
        assert combine_fidelity_bound(0.05, 0.1) == pytest.approx(
            0.05 * 1.1 + 0.1
        )

    @pytest.mark.parametrize("eps,gap", [(-0.01, 0.0), (0.05, -0.1)])
    def test_rejects_negative_inputs(self, eps, gap):
        with pytest.raises(ValueError):
            combine_fidelity_bound(eps, gap)

    def test_verify_fidelity_bound(self):
        holds, achieved, bound = verify_fidelity_bound(
            103.0, 100.0, epsilon=0.05, fidelity_gap=0.02
        )
        assert holds
        assert achieved == pytest.approx(0.03)
        assert bound == pytest.approx(0.05 * 1.02 + 0.02)
        holds, achieved, _ = verify_fidelity_bound(
            120.0, 100.0, epsilon=0.05, fidelity_gap=0.02
        )
        assert not holds and achieved == pytest.approx(0.20)


class TestFidelityCycleCounts:
    def test_cycle_mode_bit_identical(self, workload, cycle_truth):
        times = fidelity_cycle_counts(
            workload, RTX_2080, seed=0, policy=FidelityPolicy(mode="cycle")
        )
        assert np.array_equal(times.values, cycle_truth)
        assert times.cycle_mask.all()
        assert times.gap == 0.0
        assert times.effective_gap == 0.0
        assert times.error_bound(0.05) == 0.05

    def test_probe_indices_cover_every_name(self, mixed_names_workload):
        policy = FidelityPolicy()
        probes = probe_indices(mixed_names_workload, policy)
        probed_names = set()
        by_name = mixed_names_workload.indices_by_name()
        for name, idxs in by_name.items():
            hits = len(set(map(int, idxs)) & set(map(int, probes)))
            assert hits >= min(2, len(idxs)), f"{name} under-probed"
            probed_names.add(name)
        assert probed_names == set(by_name)
        assert np.array_equal(probes, probe_indices(mixed_names_workload, policy))

    def test_analytical_mode_probes_are_exact(self, workload, cycle_truth):
        policy = FidelityPolicy(mode="analytical")
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0, policy=policy)
        probes = probe_indices(workload, policy)
        assert np.array_equal(times.values[probes], cycle_truth[probes])
        assert int(times.cycle_mask.sum()) == len(probes)
        assert times.escalations == 0
        assert times.gap >= policy.min_gap
        assert times.calibration  # per-name scales recorded

    def test_hybrid_escalates_top_values_exactly(self, workload, cycle_truth):
        policy = FidelityPolicy(mode="hybrid", escalation_budget=0.1)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0, policy=policy)
        expected = math.ceil(0.1 * len(workload))
        assert times.escalations == expected
        assert int(times.cycle_mask.sum()) == times.probes + expected
        # Every cycle-tier entry matches the oracle exactly.
        mask = times.cycle_mask
        assert np.array_equal(times.values[mask], cycle_truth[mask])
        # Escalations took the largest remaining values: every screened
        # (analytical) value is <= the smallest escalated one.
        esc_values = times.values[mask]
        assert times.values[~mask].max() <= esc_values.max()

    def test_deterministic_across_calls(self, workload):
        a = fidelity_cycle_counts(workload, RTX_2080, seed=5)
        b = fidelity_cycle_counts(workload, RTX_2080, seed=5)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.cycle_mask, b.cycle_mask)
        assert a.gap == b.gap

    def test_effective_gap_never_exceeds_measured_gap(self, workload):
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        assert 0.0 < times.effective_gap <= times.gap
        assert times.error_bound(0.05) == combine_fidelity_bound(
            0.05, times.effective_gap
        )


class TestEpsilonHonesty:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_total_within_gap_on_every_variant(self, workload, seed):
        """|sum(screened) - sum(truth)| / sum(truth) <= effective gap,
        per hardware variant — the inequality the combined bound rests
        on, checked empirically like verify_union_theorem."""
        for gpu in dse_variants(RTX_2080):
            times = fidelity_cycle_counts(workload, gpu, seed=seed)
            truth = GpuSimulator(gpu).cycle_counts(workload, seed=seed)
            achieved = abs(float(times.values.sum()) - truth.sum()) / truth.sum()
            assert achieved <= times.effective_gap + 1e-12

    def test_plan_error_within_combined_bound(self, workload, cycle_truth):
        """STEM estimate scored on hybrid truth stays within ε + gap of
        the *cycle-level* total."""
        store = ProfileStore(workload, RTX_2080, seed=0)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        sampler = StemRootSampler(epsilon=0.10, fidelity_gap=times.gap)
        plan = sampler.build_plan_from_store(store, seed=0)
        result = evaluate_plan(plan, times)
        holds, achieved, bound = verify_fidelity_bound(
            result.estimated_total,
            float(cycle_truth.sum()),
            epsilon=0.10,
            fidelity_gap=times.effective_gap,
        )
        assert holds, f"achieved {achieved:.4f} > bound {bound:.4f}"

    def test_sampler_folds_gap_into_predicted_error(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        plain = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        gapped = StemRootSampler(
            epsilon=0.10, fidelity_gap=0.05
        ).build_plan_from_store(store, seed=0)
        assert gapped.metadata["fidelity_gap"] == 0.05
        assert gapped.metadata["predicted_error"] > plain.metadata["predicted_error"]

    def test_sampler_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            StemRootSampler(fidelity_gap=-0.1)


class TestEvaluatePlanMetadata:
    def test_fidelity_tiers_recorded(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        times = fidelity_cycle_counts(workload, RTX_2080, seed=0)
        plan = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        evaluate_plan(plan, times)
        tiers = plan.metadata["fidelity_tiers"]
        assert set(tiers) == {c.label for c in plan.clusters}
        assert set(tiers.values()) <= {"cycle", "analytical", "mixed"}
        summary = plan.metadata["fidelity"]
        assert summary["mode"] == "hybrid"
        assert summary["gap"] == times.gap
        assert summary["probes"] == times.probes

    def test_plain_ndarray_path_untouched(self, workload, cycle_truth):
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler(epsilon=0.10).build_plan_from_store(store, seed=0)
        result = evaluate_plan(plan, cycle_truth)
        assert "fidelity" not in plan.metadata
        assert "fidelity_tiers" not in plan.metadata
        assert result.true_total == pytest.approx(float(cycle_truth.sum()))


SPEC = DseWorkloadSpec("rodinia", "hotspot", 0.1, 30)


class TestRunDse:
    def test_cycle_fidelity_bit_identical_to_legacy(self):
        legacy = run_dse(
            workloads=[SPEC], methods=["stem"], repetitions=1, seed=0, jobs=1
        )
        cycle = run_dse(
            workloads=[SPEC],
            methods=["stem"],
            repetitions=1,
            seed=0,
            jobs=1,
            fidelity="cycle",
        )
        assert legacy == cycle
        assert all(r.fidelity == "cycle" and r.fidelity_gap == 0.0 for r in cycle)

    def test_hybrid_rows_honest_and_annotated(self):
        cycle = run_dse(
            workloads=[SPEC], methods=["stem"], repetitions=1, seed=0, jobs=1
        )
        hybrid = run_dse(
            workloads=[SPEC],
            methods=["stem"],
            repetitions=1,
            seed=0,
            jobs=1,
            fidelity="hybrid",
        )
        truth = {(r.workload, r.variant): r.full_cycles for r in cycle}
        assert len(hybrid) == len(cycle)
        for row in hybrid:
            assert row.fidelity == "hybrid"
            assert 0.0 < row.fidelity_gap < 1.0
            assert row.error_bound_percent > 5.0  # above plain eps=5%
            true_total = truth[(row.workload, row.variant)]
            achieved = abs(row.estimated_cycles - true_total) / true_total * 100
            assert achieved <= row.error_bound_percent + 1e-9

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValueError):
            run_dse(workloads=[SPEC], fidelity="quantum")

    def test_hybrid_survives_fault_plan(self):
        rows = run_dse(
            workloads=[SPEC],
            methods=["stem"],
            repetitions=1,
            seed=0,
            jobs=1,
            fidelity="hybrid",
            fault_plan=FaultPlan.from_spec("seed=3672,nan=0.05,cache_corrupt=0.5"),
        )
        assert rows  # poisoned cells degrade; the grid still completes
        assert all(r.fidelity == "hybrid" for r in rows)


class TestSweepGroundTruth:
    def test_cycle_default_bit_identical(self, workload, cycle_truth):
        store = ProfileStore(workload, RTX_2080, seed=0)
        truth = SimGroundTruth()
        assert np.array_equal(truth(store, 0), cycle_truth)

    def test_hybrid_returns_plain_array(self, workload):
        store = ProfileStore(workload, RTX_2080, seed=0)
        truth = SimGroundTruth(fidelity="hybrid", escalation_budget=0.1)
        values = truth(store, 0)
        assert isinstance(values, np.ndarray)
        assert len(values) == len(workload)
        assert np.all(values > 0)
