"""Tests for k-means, KDE peak counting, and silhouette diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    count_kde_peaks,
    kmeans,
    kmeans_1d,
    silhouette_score,
)


class TestKMeans:
    def test_recovers_two_separated_clusters(self, rng):
        pts = np.concatenate([rng.normal(0, 0.1, 100), rng.normal(10, 0.1, 50)])
        result = kmeans_1d(pts, 2, rng=rng)
        centers = np.sort(result.centers.ravel())
        assert abs(centers[0] - 0) < 0.5
        assert abs(centers[1] - 10) < 0.5
        sizes = sorted(len(m) for m in result.cluster_indices())
        assert sizes == [50, 100]

    def test_multidimensional(self, rng):
        a = rng.normal([0, 0], 0.1, size=(60, 2))
        b = rng.normal([5, 5], 0.1, size=(40, 2))
        result = kmeans(np.vstack([a, b]), 2, rng=rng)
        assert result.k == 2
        labels_a = result.labels[:60]
        assert len(np.unique(labels_a)) == 1  # all of A in one cluster

    def test_k_greater_than_n(self, rng):
        pts = np.array([1.0, 2.0])
        result = kmeans_1d(pts, 5, rng=rng)
        assert result.centers.shape == (5, 1)
        assert set(result.labels) <= {0, 1}

    def test_single_point(self, rng):
        result = kmeans_1d(np.array([3.0]), 2, rng=rng)
        assert result.labels[0] in (0, 1)

    def test_identical_points(self, rng):
        result = kmeans_1d(np.full(50, 7.0), 2, rng=rng)
        assert result.inertia == pytest.approx(0.0)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2, rng=rng)

    def test_invalid_k_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans_1d(np.arange(5.0), 0, rng=rng)

    def test_labels_cover_all_points(self, rng):
        pts = rng.random(200)
        result = kmeans_1d(pts, 3, rng=rng)
        assert len(result.labels) == 200
        total = sum(len(m) for m in result.cluster_indices())
        assert total == 200

    def test_inertia_decreases_with_k(self, rng):
        pts = rng.random(300)
        i2 = kmeans_1d(pts, 2, rng=np.random.default_rng(0)).inertia
        i8 = kmeans_1d(pts, 8, rng=np.random.default_rng(0)).inertia
        assert i8 < i2

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=10, max_value=80))
    @settings(max_examples=15, deadline=None)
    def test_property_partition(self, k, n):
        rng = np.random.default_rng(n * 31 + k)
        pts = rng.random(n)
        result = kmeans_1d(pts, k, rng=rng)
        members = np.concatenate(result.cluster_indices())
        assert np.array_equal(np.sort(members), np.arange(n))


class TestKdePeaks:
    def test_unimodal(self, rng):
        assert count_kde_peaks(rng.normal(5, 0.5, 800)) == 1

    def test_bimodal(self, rng):
        vals = np.concatenate([rng.normal(0, 0.3, 500), rng.normal(10, 0.3, 500)])
        assert count_kde_peaks(vals) == 2

    def test_trimodal(self, rng):
        vals = np.concatenate(
            [rng.normal(0, 0.2, 400), rng.normal(5, 0.2, 400), rng.normal(10, 0.2, 400)]
        )
        assert count_kde_peaks(vals) == 3

    def test_constant_sample(self):
        assert count_kde_peaks(np.full(100, 2.0)) == 1

    def test_tiny_sample(self):
        assert count_kde_peaks(np.array([1.0, 2.0])) == 1
        assert count_kde_peaks(np.array([])) == 0


class TestSilhouette:
    def test_separated_clusters_score_high(self, rng):
        pts = np.concatenate([rng.normal(0, 0.1, 40), rng.normal(10, 0.1, 40)])
        labels = np.array([0] * 40 + [1] * 40)
        assert silhouette_score(pts, labels) > 0.9

    def test_random_labels_score_low(self, rng):
        pts = rng.random(60)
        labels = rng.integers(0, 2, 60)
        assert silhouette_score(pts, labels) < 0.5

    def test_single_cluster_returns_zero(self, rng):
        pts = rng.random(20)
        assert silhouette_score(pts, np.zeros(20, dtype=int)) == 0.0

    def test_size_cap_raises_typed_error(self):
        from repro.core.clustering import SILHOUETTE_MAX_POINTS
        from repro.errors import ReproError

        n = SILHOUETTE_MAX_POINTS + 1
        pts = np.zeros(n)
        labels = np.arange(n) % 2
        with pytest.raises(ReproError, match="max_points"):
            silhouette_score(pts, labels)

    def test_size_cap_override(self, rng):
        from repro.core.clustering import SILHOUETTE_MAX_POINTS
        from repro.errors import ReproError

        pts = np.concatenate([rng.normal(0, 0.1, 30), rng.normal(10, 0.1, 30)])
        labels = np.array([0] * 30 + [1] * 30)
        # Tighter cap rejects; explicit higher cap admits the same data.
        with pytest.raises(ReproError):
            silhouette_score(pts, labels, max_points=10)
        assert silhouette_score(pts, labels, max_points=60) > 0.9
