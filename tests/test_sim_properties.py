"""Property-based tests on the simulator's cache and memory substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Cache, DramModel

address_stream = st.lists(
    st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300
)


class TestCacheProperties:
    @given(address_stream)
    @settings(max_examples=50, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, addresses):
        cache = Cache(size_bytes=2048, line_bytes=128, associativity=2)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= 2048 // 128

    @given(address_stream)
    @settings(max_examples=50, deadline=None)
    def test_hit_requires_prior_access_to_line(self, addresses):
        cache = Cache(size_bytes=4096, line_bytes=128, associativity=4)
        seen = set()
        for address in addresses:
            line = address // 128
            hit = cache.access(address)
            if hit:
                assert line in seen
            seen.add(line)

    @given(address_stream)
    @settings(max_examples=50, deadline=None)
    def test_stats_account_every_access(self, addresses):
        cache = Cache(size_bytes=1024, line_bytes=128, associativity=2)
        for address in addresses:
            cache.access(address)
        assert cache.stats.accesses == len(addresses)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_fully_resident_working_set_always_hits(self, num_lines):
        """A working set within capacity hits on every revisit."""
        cache = Cache(size_bytes=64 * 128, line_bytes=128, associativity=64)
        for line in range(num_lines):
            cache.access(line * 128)
        for line in range(num_lines):
            assert cache.access(line * 128) is True

    @given(address_stream)
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_hits_less(self, addresses):
        """LRU with more capacity at equal associativity geometry cannot
        produce fewer hits on the same stream (stack inclusion, checked
        empirically for fully-associative configurations)."""
        small = Cache(size_bytes=8 * 128, line_bytes=128, associativity=8)
        large = Cache(size_bytes=32 * 128, line_bytes=128, associativity=32)
        for address in addresses:
            small.access(address)
            large.access(address)
        assert large.stats.hits >= small.stats.hits


class TestDramProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=100)
    )
    @settings(max_examples=40, deadline=None)
    def test_completions_monotone_per_service_order(self, arrival_times):
        dram = DramModel(latency_cycles=100.0, bandwidth_bytes_per_cycle=32.0)
        completions = [dram.request(now) for now in sorted(arrival_times)]
        assert all(b >= a for a, b in zip(completions, completions[1:]))

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_bounds_throughput(self, burst):
        """N back-to-back line fills take at least N service intervals."""
        dram = DramModel(latency_cycles=0.0, bandwidth_bytes_per_cycle=64.0, line_bytes=128)
        last = 0.0
        for _ in range(burst):
            last = dram.request(0.0)
        assert last >= burst * (128 / 64.0) - 1e-9
        assert dram.accesses == burst
