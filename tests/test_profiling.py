"""Tests for the profiler models and overhead accounting."""

import numpy as np
import pytest

from repro.profiling import (
    BBV_COST,
    INFEASIBLE_DAYS,
    NCU_COST,
    NSYS_COST,
    NVBIT_COST,
    PKA_METRICS,
    BbvProfiler,
    NcuProfiler,
    NsysProfiler,
    NvbitProfiler,
    OverheadModel,
    ProfileResult,
    ProfilerCost,
)
from repro.workloads.generators.synthetic import flat_workload


class TestProfilerCost:
    def test_wall_seconds_formula(self):
        cost = ProfilerCost(slowdown_factor=2.0, per_kernel_seconds=0.1, processing_seconds=5.0)
        assert cost.wall_seconds(10.0, 100) == pytest.approx(20.0 + 10.0 + 5.0)

    def test_overhead_factor(self):
        cost = ProfilerCost(slowdown_factor=3.0)
        assert cost.overhead_factor(10.0, 0) == pytest.approx(3.0)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ProfilerCost(slowdown_factor=1.0).overhead_factor(0.0, 5)

    def test_cost_ordering_matches_paper(self):
        """nsys << BBV << NVBit << NCU collection cost (Table 5 shape)."""
        base, n = 10.0, 100_000
        nsys = NSYS_COST.wall_seconds(base, n)
        bbv = BBV_COST.wall_seconds(base, n)
        nvbit = NVBIT_COST.wall_seconds(base, n)
        ncu = NCU_COST.wall_seconds(base, n)
        assert nsys < bbv < nvbit < ncu


class TestProfileResult:
    def test_column_length_checked(self, flat):
        with pytest.raises(ValueError):
            ProfileResult(
                workload=flat, profiler="x", columns={"a": np.ones(3)}
            )

    def test_missing_column_lists_available(self, flat):
        result = ProfileResult(
            workload=flat, profiler="x", columns={"a": np.ones(len(flat))}
        )
        with pytest.raises(KeyError) as err:
            result.column("b")
        assert "available" in str(err.value)

    def test_matrix_stacks(self, flat):
        result = ProfileResult(
            workload=flat,
            profiler="x",
            columns={"a": np.ones(len(flat)), "b": np.zeros(len(flat))},
        )
        m = result.matrix(["a", "b"])
        assert m.shape == (len(flat), 2)


class TestNsysProfiler:
    def test_times_match_timing_model(self, flat, gpu, timing):
        profiler = NsysProfiler(gpu)
        times = profiler.execution_times(flat, seed=3)
        assert np.array_equal(times, timing.execution_times(flat, seed=3))

    def test_profile_result_columns(self, flat, gpu):
        result = NsysProfiler(gpu).profile(flat, seed=0)
        assert set(result.columns) == {"time_us"}
        assert result.cost is NSYS_COST


class TestNcuProfiler:
    def test_twelve_metrics(self, mixed, gpu):
        result = NcuProfiler(gpu).profile(mixed)
        assert len(PKA_METRICS) == 12
        assert set(result.columns) == set(PKA_METRICS)

    def test_metrics_blind_to_locality_and_efficiency(self, gpu):
        """The Sec. 5.2 blindness: identical instruction counts for
        contexts that differ only in locality/efficiency."""
        from repro.workloads import WorkloadBuilder
        from repro.workloads.generators.synthetic import make_kernel_spec

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        builder.launch(spec, work_scale=1.0, locality=0.9, efficiency=1.0)
        builder.launch(spec, work_scale=1.0, locality=0.1, efficiency=0.4)
        w = builder.build()
        features = NcuProfiler(gpu).feature_matrix(w)
        assert np.allclose(features[0], features[1])

    def test_metrics_see_work_scale(self, gpu):
        from repro.workloads import WorkloadBuilder
        from repro.workloads.generators.synthetic import make_kernel_spec

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        builder.launch(spec, work_scale=1.0)
        builder.launch(spec, work_scale=2.0)
        w = builder.build()
        features = NcuProfiler(gpu).feature_matrix(w)
        inst_total = PKA_METRICS.index("inst_total")
        assert features[1, inst_total] == pytest.approx(2 * features[0, inst_total])


class TestNvbitProfiler:
    def test_columns(self, mixed, gpu):
        result = NvbitProfiler(gpu).profile(mixed)
        assert {"instructions", "instructions_per_warp", "cta_size"} <= set(
            result.columns
        )

    def test_instruction_counts_match_workload(self, mixed, gpu):
        result = NvbitProfiler(gpu).profile(mixed)
        assert np.array_equal(
            result.column("instructions"),
            mixed.dynamic_instruction_counts().astype(np.float64),
        )


class TestBbvProfiler:
    def test_disjoint_subspaces(self, mixed, gpu):
        table = BbvProfiler(gpu).collect(mixed, seed=0)
        assert table.dimensionality == sum(s.num_basic_blocks for s in mixed.specs)
        # A kernel's vectors are zero outside its own slice.
        sid = 0
        start, stop = table.spec_slices[sid]
        rows = np.flatnonzero(mixed.spec_ids == sid)[:5]
        outside = np.delete(table.vectors[rows], np.s_[start:stop], axis=1)
        assert np.allclose(outside, 0.0)

    def test_vectors_scale_with_work(self, gpu):
        from repro.workloads import WorkloadBuilder
        from repro.workloads.generators.synthetic import make_kernel_spec

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        builder.launch(spec, work_scale=1.0)
        builder.launch(spec, work_scale=3.0)
        w = builder.build()
        table = BbvProfiler(gpu, noise=0.0).collect(w)
        assert table.vectors[1].sum() == pytest.approx(3 * table.vectors[0].sum(), rel=1e-5)

    def test_normalized_rows_sum_to_one(self, mixed, gpu):
        table = BbvProfiler(gpu).collect(mixed, seed=0)
        norms = table.normalized().sum(axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_profile_summary_columns(self, flat, gpu):
        result = BbvProfiler(gpu).profile(flat, seed=0)
        assert {"bbv_total", "num_warps"} == set(result.columns)


class TestOverheadModel:
    def test_stem_cheapest(self, mixed, gpu):
        model = OverheadModel(gpu)
        estimates = model.estimate_all(mixed)
        factors = {m: e.overhead_factor for m, e in estimates.items()}
        assert factors["stem"] == min(factors.values())
        assert factors["pka"] == max(factors.values())

    def test_overhead_grows_with_kernel_count(self, gpu):
        model = OverheadModel(gpu)
        small = flat_workload(n=100, seed=0)
        large = flat_workload(n=5000, seed=0)
        f_small = model.estimate("pka", small).overhead_factor
        f_large = model.estimate("pka", large).overhead_factor
        assert f_large > f_small

    def test_unknown_method(self, flat, gpu):
        with pytest.raises(KeyError):
            OverheadModel(gpu).estimate("nope", flat)

    def test_photon_processing_quadratic_bound(self, flat, gpu):
        model = OverheadModel(gpu)
        exact = model.photon_processing_seconds(flat, num_representatives=10)
        bound = model.photon_processing_seconds(flat)
        assert bound > exact

    def test_infeasibility_flag(self, gpu):
        model = OverheadModel(gpu)
        w = flat_workload(n=50, seed=0)
        estimate = model.estimate("stem", w)
        assert estimate.feasible
        assert estimate.profiling_days < INFEASIBLE_DAYS
