"""Tests for STEM's statistical error model (Eqs. 2-6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    error_bound_satisfied,
    kkt_sample_sizes,
    per_cluster_sample_sizes,
    predicted_error_multi,
    predicted_error_single,
    predicted_simulated_time,
    single_cluster_sample_size,
    z_score,
)

cluster_strategy = st.builds(
    ClusterStats,
    n=st.integers(min_value=1, max_value=100_000),
    mu=st.floats(min_value=0.01, max_value=1e4),
    sigma=st.floats(min_value=0.0, max_value=1e3),
)


class TestClusterStats:
    def test_from_times(self):
        stats = ClusterStats.from_times(np.array([1.0, 2.0, 3.0]))
        assert stats.n == 3
        assert stats.mu == pytest.approx(2.0)
        assert stats.sigma == pytest.approx(np.std([1, 2, 3]))

    def test_cov_and_total(self):
        stats = ClusterStats(n=10, mu=4.0, sigma=2.0)
        assert stats.cov == pytest.approx(0.5)
        assert stats.total == pytest.approx(40.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterStats.from_times(np.array([]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0, "mu": 1.0, "sigma": 0.0},
            {"n": 1, "mu": 0.0, "sigma": 0.0},
            {"n": 1, "mu": 1.0, "sigma": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterStats(**kwargs)


class TestZScore:
    def test_95_percent(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_99_percent(self):
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            z_score(1.0)


class TestSingleClusterSampleSize:
    def test_matches_eq3(self):
        """m = ceil((z/eps * sigma/mu)^2)."""
        stats = ClusterStats(n=10_000, mu=10.0, sigma=3.0)
        expected = math.ceil((DEFAULT_Z / 0.05 * 0.3) ** 2)
        assert single_cluster_sample_size(stats, epsilon=0.05) == expected

    def test_zero_variance_needs_one_sample(self):
        stats = ClusterStats(n=100, mu=5.0, sigma=0.0)
        assert single_cluster_sample_size(stats) == 1

    def test_smaller_epsilon_more_samples(self):
        stats = ClusterStats(n=1000, mu=1.0, sigma=0.5)
        m_tight = single_cluster_sample_size(stats, epsilon=0.01)
        m_loose = single_cluster_sample_size(stats, epsilon=0.10)
        assert m_tight > m_loose

    def test_wider_distribution_more_samples(self):
        narrow = ClusterStats(n=1000, mu=1.0, sigma=0.1)
        wide = ClusterStats(n=1000, mu=1.0, sigma=0.8)
        assert single_cluster_sample_size(wide) > single_cluster_sample_size(narrow)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            single_cluster_sample_size(ClusterStats(n=1, mu=1.0, sigma=0.0), epsilon=0)

    def test_predicted_error_meets_bound_at_m(self):
        stats = ClusterStats(n=500, mu=2.0, sigma=1.0)
        m = single_cluster_sample_size(stats, epsilon=0.05)
        assert predicted_error_single(stats, m) <= 0.05

    def test_predicted_error_decreases_with_m(self):
        stats = ClusterStats(n=500, mu=2.0, sigma=1.0)
        assert predicted_error_single(stats, 100) < predicted_error_single(stats, 10)


class TestKktSampleSizes:
    def test_single_cluster_reduces_to_eq3(self):
        stats = ClusterStats(n=5000, mu=7.0, sigma=2.1)
        kkt = kkt_sample_sizes([stats], epsilon=0.05)
        assert kkt[0] == single_cluster_sample_size(stats, epsilon=0.05)

    def test_empty_input(self):
        assert len(kkt_sample_sizes([])) == 0

    def test_zero_variance_cluster_gets_one(self):
        clusters = [
            ClusterStats(n=100, mu=1.0, sigma=0.0),
            ClusterStats(n=100, mu=1.0, sigma=0.5),
        ]
        sizes = kkt_sample_sizes(clusters)
        assert sizes[0] == 1
        assert sizes[1] >= 1

    def test_bound_satisfied(self):
        clusters = [
            ClusterStats(n=1000, mu=5.0, sigma=2.0),
            ClusterStats(n=200, mu=50.0, sigma=10.0),
            ClusterStats(n=50, mu=500.0, sigma=5.0),
        ]
        sizes = kkt_sample_sizes(clusters, epsilon=0.05)
        assert error_bound_satisfied(clusters, sizes, epsilon=0.05)

    def test_joint_beats_per_cluster_on_simulated_time(self):
        """The paper's Sec. 3.3 claim: joint optimization needs less time."""
        clusters = [
            ClusterStats(n=10_000, mu=2.0, sigma=1.0),
            ClusterStats(n=3_000, mu=40.0, sigma=12.0),
            ClusterStats(n=500, mu=300.0, sigma=30.0),
            ClusterStats(n=50_000, mu=0.5, sigma=0.4),
        ]
        joint = kkt_sample_sizes(clusters, epsilon=0.05)
        independent = per_cluster_sample_sizes(clusters, epsilon=0.05)
        tau_joint = predicted_simulated_time(clusters, joint)
        tau_indep = predicted_simulated_time(clusters, independent)
        assert tau_joint < tau_indep
        # Paper observes roughly 2-3x savings on realistic mixes.
        assert tau_indep / tau_joint > 1.3

    def test_high_variance_cluster_gets_more_samples(self):
        clusters = [
            ClusterStats(n=1000, mu=10.0, sigma=0.5),
            ClusterStats(n=1000, mu=10.0, sigma=8.0),
        ]
        sizes = kkt_sample_sizes(clusters, epsilon=0.05)
        assert sizes[1] > sizes[0]

    @given(st.lists(cluster_strategy, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_property_kkt_respects_bound(self, clusters):
        """For ANY cluster mix, the KKT allocation satisfies Eq. (5)."""
        sizes = kkt_sample_sizes(clusters, epsilon=DEFAULT_EPSILON)
        assert (sizes >= 1).all()
        assert error_bound_satisfied(clusters, sizes, epsilon=DEFAULT_EPSILON)

    @given(st.lists(cluster_strategy, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_property_per_cluster_respects_bound(self, clusters):
        sizes = per_cluster_sample_sizes(clusters, epsilon=DEFAULT_EPSILON)
        assert error_bound_satisfied(clusters, sizes, epsilon=DEFAULT_EPSILON)

    @given(st.lists(cluster_strategy, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_property_joint_never_worse(self, clusters):
        """tau(joint) <= tau(per-cluster): ceil slack aside, the KKT point
        minimizes the objective the per-cluster bound also satisfies."""
        joint = kkt_sample_sizes(clusters, epsilon=DEFAULT_EPSILON)
        independent = per_cluster_sample_sizes(clusters, epsilon=DEFAULT_EPSILON)
        tau_joint = predicted_simulated_time(clusters, joint)
        tau_indep = predicted_simulated_time(clusters, independent)
        # Allow ceil-induced slack of one mean per cluster.
        slack = sum(c.mu for c in clusters)
        assert tau_joint <= tau_indep + slack


class TestPredictedErrorMulti:
    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            predicted_error_multi([ClusterStats(n=1, mu=1.0, sigma=0.0)], [1, 2])

    def test_zero_sample_size_rejected(self):
        with pytest.raises(ValueError):
            predicted_error_multi([ClusterStats(n=1, mu=1.0, sigma=0.1)], [0])

    def test_empty_is_zero(self):
        assert predicted_error_multi([], []) == 0.0

    def test_matches_manual_computation(self):
        clusters = [
            ClusterStats(n=100, mu=2.0, sigma=1.0),
            ClusterStats(n=50, mu=10.0, sigma=3.0),
        ]
        sizes = [4, 9]
        variance = (100 * 1.0) ** 2 / 4 + (50 * 3.0) ** 2 / 9
        total = 100 * 2.0 + 50 * 10.0
        expected = DEFAULT_Z * math.sqrt(variance) / total
        assert predicted_error_multi(clusters, sizes) == pytest.approx(expected)
