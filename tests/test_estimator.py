"""Tests for plan evaluation and metric estimation."""

import numpy as np
import pytest

from repro.core.estimator import (
    estimate_metrics,
    evaluate_plan,
    metric_error_percents,
    sampling_error_percent,
)
from repro.core.plan import PlanCluster, SamplingPlan


def exhaustive_plan(n):
    return SamplingPlan(
        method="m",
        workload_name="w",
        clusters=[PlanCluster("all", n, np.arange(n))],
    )


class TestSamplingError:
    def test_definition(self):
        assert sampling_error_percent(110.0, 100.0) == pytest.approx(10.0)
        assert sampling_error_percent(90.0, 100.0) == pytest.approx(10.0)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            sampling_error_percent(1.0, 0.0)


class TestEvaluatePlan:
    def test_exhaustive_plan_zero_error(self, rng):
        times = rng.random(50) + 0.1
        result = evaluate_plan(exhaustive_plan(50), times)
        assert result.error_percent == pytest.approx(0.0, abs=1e-9)
        assert result.speedup == pytest.approx(1.0)

    def test_speedup_reflects_unique_cost(self, rng):
        times = np.ones(100)
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 100, np.array([0, 1, 2, 3]))],
        )
        result = evaluate_plan(plan, times)
        assert result.speedup == pytest.approx(25.0)
        assert result.num_unique_samples == 4

    def test_counts(self, rng):
        times = np.ones(10)
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[
                PlanCluster("a", 5, np.array([0, 0])),
                PlanCluster("b", 5, np.array([1])),
            ],
        )
        result = evaluate_plan(plan, times)
        assert result.num_samples == 3
        assert result.num_unique_samples == 2
        assert result.num_clusters == 2

    def test_summary_keys(self, rng):
        result = evaluate_plan(exhaustive_plan(5), np.ones(5))
        summary = result.summary()
        assert {"error_percent", "speedup", "num_samples"} <= set(summary)


class TestMetricEstimation:
    def test_count_metric_extrapolates(self):
        values = {"global_loads": np.array([10.0, 10.0, 40.0, 40.0])}
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[
                PlanCluster("a", 2, np.array([0])),
                PlanCluster("b", 2, np.array([2])),
            ],
        )
        estimates = estimate_metrics(plan, values)
        assert estimates["global_loads"] == pytest.approx(100.0)

    def test_rate_metric_weighted_mean(self):
        values = {"l2_read_hit_rate": np.array([0.2, 0.2, 0.8, 0.8])}
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[
                PlanCluster("a", 3, np.array([0])),
                PlanCluster("b", 1, np.array([2])),
            ],
        )
        estimates = estimate_metrics(plan, values)
        assert estimates["l2_read_hit_rate"] == pytest.approx((3 * 0.2 + 1 * 0.8) / 4)

    def test_metric_error_percents(self):
        full = {"a": 100.0, "b": 0.0, "c": 2.0}
        est = {"a": 90.0, "b": 0.0, "c": 3.0}
        errors = metric_error_percents(full, est)
        assert errors["a"] == pytest.approx(10.0)
        assert errors["b"] == 0.0
        assert errors["c"] == pytest.approx(50.0)

    def test_metric_error_skips_missing(self):
        errors = metric_error_percents({"a": 1.0, "z": 2.0}, {"a": 1.0})
        assert "z" not in errors
