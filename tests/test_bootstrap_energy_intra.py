"""Tests for bootstrap CIs, the energy model, and intra-kernel sampling."""

import numpy as np
import pytest

from repro.baselines import RandomSampler, ProfileStore
from repro.core import StemRootSampler
from repro.core.bootstrap import bootstrap_estimate
from repro.core.plan import PlanCluster, SamplingPlan
from repro.hardware import RTX_2080
from repro.sim import AdaptiveWaveSimulator, EnergyModel, GpuSimulator
from repro.sim.stats import SimStats
from repro.workloads import load_workload


class TestBootstrap:
    def test_validation(self, mixed, mixed_times):
        plan = StemRootSampler().build_plan(mixed, mixed_times, seed=0)
        with pytest.raises(ValueError):
            bootstrap_estimate(plan, mixed_times, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_estimate(plan, mixed_times, num_resamples=0)

    def test_interval_brackets_estimate(self, mixed, mixed_times, gpu):
        store = ProfileStore(mixed, gpu, seed=3)
        plan = RandomSampler(0.2).build_plan(store, seed=1)
        ci = bootstrap_estimate(plan, mixed_times, seed=4)
        assert ci.lower <= ci.estimate <= ci.upper
        assert ci.num_resamples == 1000

    def test_coverage_on_random_plans(self, mixed, mixed_times, gpu):
        """~95% CIs cover the truth most of the time over repetitions."""
        store = ProfileStore(mixed, gpu, seed=3)
        truth = float(mixed_times.sum())
        covered = 0
        trials = 20
        for rep in range(trials):
            plan = RandomSampler(0.2).build_plan(store, seed=rep)
            ci = bootstrap_estimate(plan, mixed_times, num_resamples=400, seed=rep)
            covered += int(ci.contains(truth))
        assert covered >= trials * 0.6

    def test_single_sample_clusters_pin_interval(self, mixed_times):
        """One-sample clusters (the baselines' shape) collapse the CI —
        the overconfidence the docstring warns about."""
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 100, np.array([0]))],
        )
        ci = bootstrap_estimate(plan, mixed_times, num_resamples=50)
        assert ci.lower == ci.upper == ci.estimate

    def test_more_samples_tighter_interval(self, mixed, mixed_times, gpu):
        store = ProfileStore(mixed, gpu, seed=3)
        small = RandomSampler(0.05).build_plan(store, seed=1)
        large = RandomSampler(0.5).build_plan(store, seed=1)
        hw_small = bootstrap_estimate(small, mixed_times, seed=2).half_width_percent
        hw_large = bootstrap_estimate(large, mixed_times, seed=2).half_width_percent
        assert hw_large < hw_small


class TestEnergyModel:
    def test_breakdown_totals(self):
        stats = SimStats(
            cycles=1000.0, fp32_ops=100, l1_hits=10, l1_misses=5,
            l2_hits=5, l2_misses=2, dram_accesses=2,
        )
        breakdown = EnergyModel().evaluate(stats, RTX_2080)
        assert breakdown.total_nj == pytest.approx(
            breakdown.compute_nj
            + breakdown.l1_nj
            + breakdown.l2_nj
            + breakdown.dram_nj
            + breakdown.static_nj
        )
        assert breakdown.total_nj > 0

    def test_shares_sum_to_one(self):
        stats = SimStats(cycles=500.0, fp16_ops=50, dram_accesses=3)
        shares = EnergyModel().evaluate(stats, RTX_2080).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_dram_heavy_kernel_spends_more_memory_energy(self):
        compute_stats = SimStats(cycles=100.0, fp32_ops=10_000)
        memory_stats = SimStats(cycles=100.0, dram_accesses=10_000)
        model = EnergyModel()
        e_compute = model.evaluate(compute_stats, RTX_2080)
        e_memory = model.evaluate(memory_stats, RTX_2080)
        assert e_memory.dram_nj > e_compute.dram_nj
        assert e_compute.compute_nj > e_memory.compute_nj

    def test_sampled_energy_estimate_tracks_full(self):
        """The Fig. 14 logic extends to energy: weighted-sum energy from
        sampled kernels matches the full workload's."""
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0).head(40)
        sim = GpuSimulator(RTX_2080)
        model = EnergyModel()
        results = sim.simulate_workload(workload, seed=0)
        per_kernel_nj = np.array(
            [model.evaluate(r.stats, RTX_2080).total_nj for r in results.kernel_results]
        )
        store = ProfileStore(workload, RTX_2080, seed=0)
        plan = StemRootSampler().build_plan_from_store(store, seed=0)
        estimated = plan.estimate_total(per_kernel_nj)
        full = per_kernel_nj.sum()
        assert abs(estimated - full) / full < 0.10


class TestAdaptiveWaveSampling:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWaveSimulator(RTX_2080, stability_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveWaveSimulator(RTX_2080, min_waves=1)
        with pytest.raises(ValueError):
            AdaptiveWaveSimulator(RTX_2080, min_waves=8, max_waves=4)

    def test_simulates_fewer_waves_than_total(self):
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0)
        sampler = AdaptiveWaveSimulator(RTX_2080)
        result = sampler.simulate(workload, 0, seed=1)
        assert result.simulated_waves <= result.total_waves
        assert result.wave_fraction <= 1.0

    def test_estimate_close_to_full(self):
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0)
        sampler = AdaptiveWaveSimulator(RTX_2080)
        result = sampler.simulate(workload, 0, seed=1, compute_full=True)
        assert result.error_percent is not None
        assert result.error_percent < 10.0

    def test_tighter_threshold_more_waves(self):
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0)
        loose = AdaptiveWaveSimulator(RTX_2080, stability_threshold=0.2)
        tight = AdaptiveWaveSimulator(RTX_2080, stability_threshold=0.005)
        waves_loose = loose.simulate(workload, 0, seed=1).simulated_waves
        waves_tight = tight.simulate(workload, 0, seed=1).simulated_waves
        assert waves_tight >= waves_loose

    def test_error_percent_none_without_full(self):
        workload = load_workload("rodinia", "hotspot", scale=0.05, seed=0)
        result = AdaptiveWaveSimulator(RTX_2080).simulate(workload, 0, seed=1)
        assert result.error_percent is None
