"""Tests for the multi-GPU execution-trace extension."""

import pytest

from repro.multigpu import (
    ClusterConfig,
    EtNode,
    EtStemSampler,
    ExecutionTrace,
    OpKind,
    TimelineSimulator,
    data_parallel_training,
    pipeline_parallel_inference,
)


def tiny_trace():
    """a -> b -> d, a -> c -> d with b,c on different GPUs."""
    et = ExecutionTrace(name="tiny")
    et.add_node(EtNode(0, "load", OpKind.COMPUTE, "gpu0", work=1.0))
    et.add_node(EtNode(1, "left", OpKind.COMPUTE, "gpu0", work=2.0))
    et.add_node(EtNode(2, "right", OpKind.COMPUTE, "gpu1", work=3.0))
    et.add_node(EtNode(3, "join", OpKind.ALLREDUCE, "net", work=1.0))
    et.add_dependency(0, 1)
    et.add_dependency(0, 2)
    et.add_dependency(1, 3)
    et.add_dependency(2, 3)
    et.validate()
    return et


class TestEtNode:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "bogus", "work": 1.0},
            {"kind": OpKind.COMPUTE, "work": 0.0},
            {"kind": OpKind.COMPUTE, "work": 1.0, "context_scale": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EtNode(0, "g", resource="gpu0", **kwargs)


class TestExecutionTrace:
    def test_duplicate_node_rejected(self):
        et = ExecutionTrace()
        et.add_node(EtNode(0, "g", OpKind.COMPUTE, "gpu0", 1.0))
        with pytest.raises(ValueError):
            et.add_node(EtNode(0, "g", OpKind.COMPUTE, "gpu0", 1.0))

    def test_edge_requires_endpoints(self):
        et = ExecutionTrace()
        et.add_node(EtNode(0, "g", OpKind.COMPUTE, "gpu0", 1.0))
        with pytest.raises(KeyError):
            et.add_dependency(0, 99)

    def test_cycle_detection(self):
        et = ExecutionTrace()
        et.add_node(EtNode(0, "g", OpKind.COMPUTE, "gpu0", 1.0))
        et.add_node(EtNode(1, "g", OpKind.COMPUTE, "gpu0", 1.0))
        et.add_dependency(0, 1)
        et.add_dependency(1, 0)
        with pytest.raises(ValueError):
            et.validate()

    def test_groups_partition_nodes(self):
        et = tiny_trace()
        groups = et.groups()
        assert sum(len(ids) for ids in groups.values()) == len(et)

    def test_topological_order_respects_deps(self):
        et = tiny_trace()
        order = et.topological_order()
        assert order.index(0) < order.index(1)
        assert order.index(2) < order.index(3)

    def test_critical_path(self):
        et = tiny_trace()
        durations = {0: 1.0, 1: 2.0, 2: 5.0, 3: 1.0}
        # longest chain: 0 -> 2 -> 3 = 7.
        assert et.critical_path_length(durations) == pytest.approx(7.0)

    def test_describe(self):
        d = tiny_trace().describe()
        assert d["num_nodes"] == 4
        assert d["num_compute"] == 3
        assert d["num_allreduce"] == 1


class TestGenerators:
    def test_data_parallel_structure(self):
        et = data_parallel_training(num_gpus=3, layers=4, steps=5, seed=0)
        d = et.describe()
        assert d["num_compute"] == 3 * 4 * 2 * 5
        assert d["num_allreduce"] == 4 * 5
        assert "net" in et.resources()

    def test_data_parallel_needs_two_gpus(self):
        with pytest.raises(ValueError):
            data_parallel_training(num_gpus=1)

    def test_pipeline_structure(self):
        et = pipeline_parallel_inference(num_stages=3, requests=10, seed=0)
        d = et.describe()
        assert d["num_compute"] == 3 * 10
        assert d["num_p2p"] == 2 * 10

    def test_generators_deterministic(self):
        a = data_parallel_training(seed=5)
        b = data_parallel_training(seed=5)
        assert [n.context_scale for n in a.nodes()] == [
            n.context_scale for n in b.nodes()
        ]


class TestTimelineSimulator:
    def test_durations_positive(self):
        sim = TimelineSimulator()
        et = tiny_trace()
        durations = sim.profile_durations(et, seed=0)
        assert all(v > 0 for v in durations.values())

    def test_makespan_at_least_critical_path(self):
        sim = TimelineSimulator()
        et = data_parallel_training(num_gpus=2, layers=3, steps=4, seed=0)
        durations = sim.profile_durations(et, seed=0)
        result = sim.schedule(et, durations)
        assert result.makespan >= et.critical_path_length(durations) - 1e-9

    def test_resource_serialization(self):
        """Two independent ops on one GPU cannot overlap."""
        et = ExecutionTrace()
        et.add_node(EtNode(0, "a", OpKind.COMPUTE, "gpu0", work=10.0))
        et.add_node(EtNode(1, "b", OpKind.COMPUTE, "gpu0", work=10.0))
        sim = TimelineSimulator(ClusterConfig(jitter=0.0))
        result = sim.simulate(et, seed=0)
        starts = sorted(result.start_times.values())
        assert starts[1] >= starts[0] + min(result.durations.values()) - 1e-9

    def test_parallel_ops_overlap(self):
        et = ExecutionTrace()
        et.add_node(EtNode(0, "a", OpKind.COMPUTE, "gpu0", work=10.0))
        et.add_node(EtNode(1, "b", OpKind.COMPUTE, "gpu1", work=10.0))
        sim = TimelineSimulator(ClusterConfig(jitter=0.0))
        result = sim.simulate(et, seed=0)
        assert result.makespan < result.total_device_time()

    def test_communication_includes_latency(self):
        cfg = ClusterConfig(jitter=0.0, link_latency_us=50.0)
        sim = TimelineSimulator(cfg)
        comm = EtNode(0, "c", OpKind.ALLREDUCE, "net", work=1.0)
        compute = EtNode(1, "k", OpKind.COMPUTE, "gpu0", work=1.0)
        assert sim.node_duration(comm) > sim.node_duration(compute)

    def test_utilization_bounded(self):
        sim = TimelineSimulator()
        result = sim.simulate(data_parallel_training(seed=1), seed=1)
        for resource in ("gpu0", "net"):
            assert 0.0 < result.utilization(resource) <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(gpu_throughput=0.0)


class TestEtStemSampler:
    @pytest.fixture(scope="class")
    def outcome(self):
        et = data_parallel_training(num_gpus=4, layers=6, steps=25, seed=0)
        sampler = EtStemSampler(epsilon=0.05)
        result = sampler.evaluate(et, TimelineSimulator(), seed=2)
        return et, sampler, result

    def test_samples_are_a_small_fraction(self, outcome):
        _, _, result = outcome
        assert result.detail_fraction < 0.5

    def test_makespan_error_small(self, outcome):
        _, _, result = outcome
        assert result.makespan_error_percent < 10.0

    def test_total_time_error_within_bound(self, outcome):
        _, _, result = outcome
        assert result.total_time_error_percent < 5.0

    def test_plan_covers_all_nodes(self, outcome):
        et, sampler, _ = outcome
        durations = TimelineSimulator().profile_durations(et, seed=9)
        plan = sampler.build_plan(et, durations, seed=1)
        assert plan.represented_invocations == len(et)
        covered = set()
        for members in sampler.last_membership.values():
            covered.update(int(i) for i in members)
        assert covered == {n.node_id for n in et.nodes()}

    def test_estimate_requires_membership(self, outcome):
        et, sampler, _ = outcome
        durations = TimelineSimulator().profile_durations(et, seed=3)
        plan = sampler.build_plan(et, durations, seed=1)
        detailed = {int(i): durations[int(i)] for i in plan.unique_indices()}
        with pytest.raises(KeyError):
            sampler.estimate_durations(plan, detailed, et, membership={})

    def test_stragglers_get_own_clusters(self):
        """Straggler-inflated compute nodes form separate time peaks that
        ROOT isolates, so the estimate does not smear them."""
        et = data_parallel_training(
            num_gpus=4, layers=4, steps=40, seed=3, straggler_probability=0.3
        )
        sampler = EtStemSampler()
        durations = TimelineSimulator().profile_durations(et, seed=0)
        plan = sampler.build_plan(et, durations, seed=0)
        assert plan.num_clusters > len(et.groups())
