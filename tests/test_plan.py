"""Tests for sampling plans and their estimation arithmetic."""

import numpy as np
import pytest

from repro.core.plan import PlanCluster, SamplingPlan


def simple_plan():
    return SamplingPlan(
        method="test",
        workload_name="w",
        clusters=[
            PlanCluster("a", member_count=10, sampled_indices=np.array([0, 1])),
            PlanCluster("b", member_count=5, sampled_indices=np.array([3])),
        ],
        metadata={"epsilon": 0.05},
    )


class TestPlanCluster:
    def test_weight(self):
        c = PlanCluster("x", member_count=100, sampled_indices=np.arange(4))
        assert c.weight == 25.0
        assert c.sample_size == 4

    def test_estimate_total(self):
        values = np.array([2.0, 4.0, 0.0, 0.0])
        c = PlanCluster("x", member_count=10, sampled_indices=np.array([0, 1]))
        assert c.estimate_total(values) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCluster("x", member_count=0, sampled_indices=np.array([0]))
        with pytest.raises(ValueError):
            PlanCluster("x", member_count=5, sampled_indices=np.array([]))


class TestSamplingPlan:
    def test_counters(self):
        plan = simple_plan()
        assert plan.num_clusters == 2
        assert plan.num_samples == 3
        assert plan.represented_invocations == 15

    def test_unique_indices_dedupe(self):
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[
                PlanCluster("a", 10, np.array([2, 2, 5])),
                PlanCluster("b", 4, np.array([5])),
            ],
        )
        assert np.array_equal(plan.unique_indices(), [2, 5])

    def test_estimate_total_weighted_sum(self):
        values = np.zeros(6)
        values[[0, 1, 3]] = [1.0, 3.0, 10.0]
        plan = simple_plan()
        # 10 * mean(1,3) + 5 * 10 = 20 + 50
        assert plan.estimate_total(values) == pytest.approx(70.0)

    def test_exact_when_sampling_everything(self):
        values = np.array([1.0, 2.0, 3.0])
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("all", 3, np.array([0, 1, 2]))],
        )
        assert plan.estimate_total(values) == pytest.approx(values.sum())

    def test_simulated_cost_counts_unique_once(self):
        values = np.array([5.0, 7.0, 100.0])
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 10, np.array([0, 0, 1]))],
        )
        assert plan.simulated_cost(values) == pytest.approx(12.0)

    def test_sample_weights_accumulate_repeats(self):
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 9, np.array([4, 4, 7]))],
        )
        weights = plan.sample_weights()
        assert weights[4] == pytest.approx(6.0)
        assert weights[7] == pytest.approx(3.0)

    def test_validate_accepts_consistent_plan(self):
        simple_plan().validate(workload_size=15)

    def test_validate_rejects_wrong_total(self):
        with pytest.raises(ValueError):
            simple_plan().validate(workload_size=20)

    def test_validate_rejects_out_of_range(self):
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("a", 2, np.array([99]))],
        )
        with pytest.raises(ValueError):
            plan.validate(workload_size=2)

    def test_json_roundtrip(self):
        plan = simple_plan()
        restored = SamplingPlan.from_json(plan.to_json())
        assert restored.method == plan.method
        assert restored.workload_name == plan.workload_name
        assert restored.num_clusters == plan.num_clusters
        assert restored.metadata["epsilon"] == 0.05
        for a, b in zip(restored.clusters, plan.clusters):
            assert a.label == b.label
            assert a.member_count == b.member_count
            assert np.array_equal(a.sampled_indices, b.sampled_indices)

    def test_empty_plan(self):
        plan = SamplingPlan(method="m", workload_name="w")
        assert plan.num_samples == 0
        assert len(plan.unique_indices()) == 0
        assert plan.simulated_cost(np.array([1.0])) == 0.0
