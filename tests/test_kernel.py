"""Unit tests for the kernel data model."""

import numpy as np
import pytest

from repro.workloads import (
    WARP_SIZE,
    InstructionMix,
    KernelInvocation,
    KernelSpec,
    LaunchContext,
    MemoryPattern,
)


class TestInstructionMix:
    def test_total_sums_all_classes(self):
        mix = InstructionMix(
            fp32=1, fp16=2, int_alu=3, sfu=4, load_global=5,
            store_global=6, load_shared=7, store_shared=8, branch=9,
        )
        assert mix.total() == 45

    def test_memory_ops_counts_global_only(self):
        mix = InstructionMix(load_global=5, store_global=3, load_shared=7)
        assert mix.memory_ops() == 8

    def test_shared_ops(self):
        mix = InstructionMix(load_shared=7, store_shared=2)
        assert mix.shared_ops() == 9

    def test_compute_ops_excludes_memory_and_branch(self):
        mix = InstructionMix(fp32=10, fp16=5, int_alu=3, sfu=2, load_global=9, branch=4)
        assert mix.compute_ops() == 20

    def test_as_dict_roundtrip(self):
        mix = InstructionMix(fp32=10, branch=4)
        d = mix.as_dict()
        assert d["fp32"] == 10 and d["branch"] == 4
        assert InstructionMix(**d) == mix

    def test_scaled_rounds_and_floors_at_zero(self):
        mix = InstructionMix(fp32=10, int_alu=1)
        scaled = mix.scaled(0.25)
        assert scaled.fp32 == 2  # round(2.5) banker's rounds to 2
        assert scaled.int_alu == 0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix(fp32=1).scaled(-1.0)

    def test_empty_mix_total_zero(self):
        assert InstructionMix().total() == 0


class TestMemoryPattern:
    def test_defaults_valid(self):
        p = MemoryPattern()
        assert p.stride_bytes == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stride_bytes": 0},
            {"stride_bytes": -4},
            {"random_fraction": -0.1},
            {"random_fraction": 1.5},
            {"working_set_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MemoryPattern(**kwargs)

    def test_coalescing_factor_unit_stride_is_high(self):
        unit = MemoryPattern(stride_bytes=4)
        scattered = MemoryPattern(stride_bytes=512)
        assert unit.coalescing_factor() > scattered.coalescing_factor()

    def test_coalescing_factor_bounded(self):
        for stride in (1, 4, 64, 128, 4096):
            f = MemoryPattern(stride_bytes=stride).coalescing_factor()
            assert 0 < f <= 1.0


class TestKernelSpec:
    def test_geometry_products(self):
        spec = KernelSpec(name="k", grid_dim=(4, 2, 1), block_dim=(64, 2, 1))
        assert spec.num_blocks() == 8
        assert spec.threads_per_block() == 128
        assert spec.num_threads() == 1024
        assert spec.warps_per_block() == 128 // WARP_SIZE
        assert spec.num_warps() == 8 * 4

    def test_warps_round_up_for_partial_warp(self):
        spec = KernelSpec(name="k", block_dim=(33, 1, 1))
        assert spec.warps_per_block() == 2

    def test_static_instruction_count(self):
        spec = KernelSpec(
            name="k",
            grid_dim=(2, 1, 1),
            block_dim=(32, 1, 1),
            mix=InstructionMix(fp32=10),
        )
        assert spec.static_instruction_count() == 10 * 64

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="")

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", grid_dim=(0, 1, 1))
        with pytest.raises(ValueError):
            KernelSpec(name="k", block_dim=(1, -1, 1))

    def test_memory_boundedness_range(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", memory_boundedness=1.5)

    def test_bbv_deterministic_per_spec(self):
        spec = KernelSpec(name="k", num_basic_blocks=16)
        assert np.allclose(spec.base_bbv(), spec.base_bbv())

    def test_bbv_differs_between_names(self):
        a = KernelSpec(name="a", num_basic_blocks=16)
        b = KernelSpec(name="b", num_basic_blocks=16)
        assert not np.allclose(a.base_bbv(), b.base_bbv())

    def test_bbv_dimension(self):
        spec = KernelSpec(name="k", num_basic_blocks=24)
        assert spec.base_bbv().shape == (24,)

    def test_bbv_nonnegative(self):
        spec = KernelSpec(name="k")
        assert (spec.base_bbv() >= 0).all()

    def test_arithmetic_intensity_positive(self):
        spec = KernelSpec(name="k", mix=InstructionMix(fp32=100, load_global=10))
        assert spec.arithmetic_intensity() > 0


class TestLaunchContext:
    def test_defaults(self):
        ctx = LaunchContext()
        assert ctx.work_scale == 1.0
        assert ctx.efficiency == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"work_scale": 0.0},
            {"work_scale": -2.0},
            {"locality": -0.1},
            {"locality": 1.1},
            {"efficiency": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LaunchContext(**kwargs)


class TestKernelInvocation:
    def test_name_delegates_to_spec(self):
        spec = KernelSpec(name="sgemm")
        inv = KernelInvocation(index=0, spec=spec, context=LaunchContext())
        assert inv.name == "sgemm"

    def test_dynamic_instruction_count_scales(self):
        spec = KernelSpec(
            name="k", grid_dim=(1, 1, 1), block_dim=(32, 1, 1),
            mix=InstructionMix(fp32=100),
        )
        small = KernelInvocation(0, spec, LaunchContext(work_scale=0.5))
        big = KernelInvocation(1, spec, LaunchContext(work_scale=2.0))
        assert big.dynamic_instruction_count() == 4 * small.dynamic_instruction_count()

    def test_dynamic_instruction_count_at_least_one(self):
        spec = KernelSpec(name="k", mix=InstructionMix(fp32=1))
        inv = KernelInvocation(0, spec, LaunchContext(work_scale=1e-9))
        assert inv.dynamic_instruction_count() == 1
