"""Fixture: generic raises and bare excepts the typed-errors rule bans."""


def fails_generically(flag):
    if flag:
        raise RuntimeError("anything could have happened")  # line 6
    raise Exception("even worse")  # line 7


def swallows_everything(fn):
    try:
        return fn()
    except:  # line 13: bare except
        return None


def fine(payload):
    if "key" not in payload:
        raise KeyError("key")  # precise builtin: allowed
    try:
        return payload["key"]
    except LookupError:  # typed: allowed
        return None
