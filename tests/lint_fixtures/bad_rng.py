"""Fixture: every way the global-rng rule must fire (and one it must not)."""

import random  # line 3: banned stdlib module import

import numpy as np


def draw_badly(n):
    values = np.random.rand(n)  # line 9: module-state RNG call
    pick = random.choice(values)  # line 10: stdlib global RNG call
    return values, pick


def seedless():
    return np.random.default_rng()  # line 15: seedless generator


def seedless_none():
    return np.random.default_rng(None)  # line 19: literal-None seed


def fine(seed: int, rng: np.random.Generator):
    # Annotation above and the seeded construction below must NOT fire.
    fresh = np.random.default_rng(seed)
    return fresh.random() + rng.random()
