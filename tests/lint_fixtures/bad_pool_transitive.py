"""Fixture: a picklable worker that is impure two calls deep.

The name-based ``pool-safety`` lint rule checks only that the worker is
a module-level function (picklable to spawn-start pools); it approves
this file.  The interprocedural analysis tier (``repro analyze``)
follows ``_worker -> _remember`` and flags the module-global write —
the documented blind spot this fixture pins as a regression test.
"""

from repro.parallel import run_tasks

_CACHE = {}


def _remember(key, value):
    _CACHE[key] = value  # line 16: the global write lint cannot see
    return value


def _worker(payload):
    return _remember(payload, payload * 2)


def dispatch(payloads):
    return run_tasks(_worker, payloads)
