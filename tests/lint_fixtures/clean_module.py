"""Fixture: idiomatic code that must produce zero findings."""

import time
from dataclasses import dataclass

import numpy as np


class FixtureError(Exception):
    """Typed error hierarchy root, mirroring repro.errors."""


@dataclass(frozen=True)
class Spec:
    name: str
    seed: int


def sample(spec: Spec, rng: np.random.Generator = None) -> np.ndarray:
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    if not spec.name:
        raise FixtureError("spec needs a name")
    begin = time.perf_counter()
    draws = rng.random(8)
    _elapsed = time.perf_counter() - begin
    return draws
