"""Fixture: keyed dataclasses that must pass cache-key-completeness."""

import hashlib
from dataclasses import dataclass, field, fields
from typing import Dict, Optional


@dataclass
class ExemptKeyed:
    """Complete key; `cache_handle` is exempted in the fixture config."""

    name: str
    scale: float
    cache_handle: Optional[object] = field(default=None, repr=False)

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr(self.scale).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class FieldsEnumerated:
    """Complete by construction: to_dict() enumerates fields()."""

    alpha: float = 1.0
    beta: float = 2.0

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
