"""Fixture: inline suppressions the engine must honor (and count)."""

import time


def sanctioned_epoch():
    # Rationale: fixture mirroring obs/tracer.py's sanctioned epoch read.
    return time.time()  # repro-lint: disable=wall-clock


def sanctioned_everything():
    return time.time()  # repro-lint: disable


def still_fires():
    return time.time()  # line 16: no suppression -> must be reported
