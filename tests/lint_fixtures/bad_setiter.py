"""Fixture: set iteration inside key functions (unordered-iteration)."""

import hashlib


class Keyed:
    def __init__(self, tags, parts):
        self.tags = tags
        self.parts = parts

    def fingerprint(self):
        h = hashlib.sha256()
        for tag in {t.lower() for t in self.tags}:  # line 13: setcomp loop
            h.update(tag.encode())
        return h.hexdigest()

    def key_for(self):
        return "|".join({str(p) for p in self.parts})  # line 18: join(set)

    def to_dict(self):
        return {"parts": list(set(self.parts))}  # line 21: list(set)

    def as_dict(self):
        # sorted() restores deterministic order: must NOT fire.
        return {"parts": [str(p) for p in sorted(set(self.parts))]}

    def unrelated_helper(self):
        # Not a key function: set iteration here is fine.
        return [p for p in {1, 2, 3}]
