"""Fixture: keyed dataclasses with incomplete keys (cache-key-completeness)."""

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IncompleteKeyed:
    """`threshold` was added later and fingerprint() forgot it."""

    name: str
    scale: float
    threshold: float = 0.5  # NOT hashed below -> stale cache hits

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(repr(self.scale).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class HiddenReprField:
    """repr()-keyed, but one field opts out of repr."""

    name: str
    budget: int = field(default=0, repr=False)  # invisible to repr() keys
