"""Fixture: unpicklable task callables the pool-safety rule bans."""

from repro.parallel import run_tasks


def _module_level(x):
    return x * 2


def ships_a_lambda(payloads):
    return run_tasks(lambda x: x * 2, payloads)  # line 11: lambda worker


def ships_a_closure(payloads, factor):
    def scaled(x):  # nested function capturing `factor`
        return x * factor

    return run_tasks(scaled, payloads)  # line 18: closure worker


def ships_a_keyword_lambda(payloads):
    return run_tasks(worker=lambda x: x, payloads=payloads)  # line 22


def fine(payloads):
    # Module-level worker and a parent-side on_result callback: allowed.
    return run_tasks(_module_level, payloads, on_result=lambda i, v: None)
