"""Fixture: unpicklable task callables the pool-safety rule bans."""

from repro.parallel import run_tasks


def _module_level(x):
    return x * 2


def ships_a_lambda(payloads):
    return run_tasks(lambda x: x * 2, payloads)  # line 11: lambda worker


def ships_a_closure(payloads, factor):
    def scaled(x):  # nested function capturing `factor`
        return x * factor

    return run_tasks(scaled, payloads)  # line 18: closure worker


def ships_a_keyword_lambda(payloads):
    return run_tasks(worker=lambda x: x, payloads=payloads)  # line 22


def fine(payloads):
    # Module-level worker and a parent-side on_result callback: allowed.
    return run_tasks(_module_level, payloads, on_result=lambda i, v: None)


def shared_name(x):  # module-level; same name as a nested def below
    return x + 1


def defines_a_local_twin(values):
    def shared_name(v):  # local twin never reaches the pool
        return v - 1

    return [shared_name(v) for v in values]


def fine_shared_name(payloads):
    # Resolves to the module-level `shared_name`, which pickles fine;
    # the nested def of the same name elsewhere must not trip the rule.
    return run_tasks(shared_name, payloads)
