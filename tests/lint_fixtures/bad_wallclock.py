"""Fixture: ambient wall-clock/entropy reads the wall-clock rule bans."""

import os
import time
import uuid
from datetime import datetime


def stamp():
    started = time.time()  # line 10: wall clock
    when = datetime.now()  # line 11: wall clock via from-import
    token = uuid.uuid4()  # line 12: OS entropy
    salt = os.urandom(8)  # line 13: OS entropy
    return started, when, token, salt


def fine_duration():
    # Monotonic timers measure durations, never stamp results: allowed.
    begin = time.perf_counter()
    return time.perf_counter() - begin
