"""Tests for the cycle-level GPU simulator."""

import numpy as np
import pytest

from repro.hardware import RTX_2080, GPUConfig
from repro.sim import (
    Cache,
    DramModel,
    GpuSimulator,
    LatencyTable,
    Op,
    StreamingMultiprocessor,
    TraceGenerator,
)
from repro.sim.stats import SimStats
from repro.workloads import LaunchContext
from repro.workloads.generators.synthetic import flat_workload, make_kernel_spec


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(size_bytes=1024, line_bytes=128, associativity=2)
        assert cache.access(0) is False
        assert cache.access(64) is True  # same line
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_eviction_lru(self):
        # 2 sets x 2 ways of 128B lines = 512B.
        cache = Cache(size_bytes=512, line_bytes=128, associativity=2)
        # Fill set 0 (even line numbers) beyond associativity.
        cache.access(0)
        cache.access(2 * 128)
        cache.access(4 * 128)  # evicts line 0
        assert cache.access(0) is False

    def test_lru_refresh(self):
        cache = Cache(size_bytes=512, line_bytes=128, associativity=2)
        cache.access(0)
        cache.access(2 * 128)
        cache.access(0)  # refresh line 0
        cache.access(4 * 128)  # evicts line 2, not 0
        assert cache.access(0) is True

    def test_flush(self):
        cache = Cache(size_bytes=1024)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False
        assert cache.resident_lines() == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=0)

    def test_hit_rate_property(self):
        cache = Cache(size_bytes=1024)
        assert cache.stats.hit_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestDram:
    def test_latency_includes_service(self):
        dram = DramModel(latency_cycles=100.0, bandwidth_bytes_per_cycle=64.0, line_bytes=128)
        done = dram.request(0.0)
        assert done == pytest.approx(2.0 + 100.0)

    def test_queueing_under_contention(self):
        dram = DramModel(latency_cycles=0.0, bandwidth_bytes_per_cycle=128.0, line_bytes=128)
        first = dram.request(0.0)
        second = dram.request(0.0)  # queues behind the first
        assert second == pytest.approx(first + 1.0)

    def test_counters(self):
        dram = DramModel(latency_cycles=0.0, bandwidth_bytes_per_cycle=128.0)
        dram.request(0.0)
        dram.request(10.0)
        assert dram.accesses == 2
        assert dram.bytes_transferred == 2 * 128

    def test_reset(self):
        dram = DramModel(latency_cycles=0.0, bandwidth_bytes_per_cycle=1.0)
        dram.request(0.0)
        dram.reset()
        assert dram.accesses == 0
        assert dram.request(0.0) == pytest.approx(128.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(latency_cycles=-1.0, bandwidth_bytes_per_cycle=1.0)


class TestTraceGenerator:
    @pytest.fixture
    def tracer(self):
        return TraceGenerator(num_sms=46)

    def invocation(self, spec=None, **ctx):
        from repro.workloads import KernelInvocation

        return KernelInvocation(
            index=0, spec=spec or make_kernel_spec(), context=LaunchContext(**ctx)
        )

    def test_trace_shape(self, tracer):
        trace = tracer.generate(self.invocation())
        assert trace.resident_warps == len(trace.warps)
        assert trace.resident_warps > 0
        for warp in trace.warps:
            n_mem = int(np.count_nonzero((warp.kinds == Op.LOAD) | (warp.kinds == Op.STORE)))
            assert len(warp.addresses) == n_mem

    def test_instruction_cap(self):
        tracer = TraceGenerator(num_sms=46, max_instructions_per_warp=50)
        trace = tracer.generate(self.invocation(work_scale=100.0))
        assert len(trace.warps[0]) == 50
        assert trace.extrapolation > 1.0

    def test_extrapolation_covers_work_scale(self, tracer):
        small = tracer.generate(self.invocation(work_scale=1.0))
        big = tracer.generate(self.invocation(work_scale=10.0))
        assert big.extrapolation > small.extrapolation

    def test_deterministic(self, tracer):
        a = tracer.generate(self.invocation(), seed=3)
        b = tracer.generate(self.invocation(), seed=3)
        assert np.array_equal(a.warps[0].addresses, b.warps[0].addresses)

    def test_locality_concentrates_addresses(self, tracer):
        hot = tracer.generate(self.invocation(locality=0.95), seed=1)
        cold = tracer.generate(self.invocation(locality=0.05), seed=1)
        hot_unique = len(np.unique(np.concatenate([w.addresses for w in hot.warps])))
        cold_unique = len(np.unique(np.concatenate([w.addresses for w in cold.warps])))
        assert hot_unique < cold_unique

    def test_small_launch_fewer_resident_warps(self):
        tracer = TraceGenerator(num_sms=46)
        tiny_spec = make_kernel_spec("tiny", grid=8)
        big_spec = make_kernel_spec("big", grid=4096)
        tiny = tracer.generate(self.invocation(spec=tiny_spec))
        big = tracer.generate(self.invocation(spec=big_spec))
        assert tiny.resident_warps <= big.resident_warps

    def test_cache_scale_positive(self, tracer):
        trace = tracer.generate(self.invocation())
        assert trace.cache_scale > 0


class TestStreamingMultiprocessor:
    def make_sm(self):
        return StreamingMultiprocessor(
            LatencyTable(),
            l1=Cache(8 << 10),
            l2=Cache(64 << 10),
            dram=DramModel(latency_cycles=400.0, bandwidth_bytes_per_cycle=5.0),
        )

    def test_executes_all_instructions(self):
        tracer = TraceGenerator(num_sms=4)
        from repro.workloads import KernelInvocation

        inv = KernelInvocation(0, make_kernel_spec(), LaunchContext())
        trace = tracer.generate(inv)
        cycles, stats = self.make_sm().execute_wave(trace)
        expected = sum(len(w) for w in trace.warps)
        assert stats.instructions == expected
        assert cycles >= expected  # single-issue port

    def test_low_efficiency_slows_compute(self):
        tracer = TraceGenerator(num_sms=4)
        from repro.workloads import KernelInvocation

        spec = make_kernel_spec()
        fast_trace = tracer.generate(
            KernelInvocation(0, spec, LaunchContext(efficiency=1.0)), seed=1
        )
        slow_trace = tracer.generate(
            KernelInvocation(0, spec, LaunchContext(efficiency=0.3)), seed=1
        )
        fast, _ = self.make_sm().execute_wave(fast_trace)
        slow, _ = self.make_sm().execute_wave(slow_trace)
        assert slow > fast


class TestGpuSimulator:
    def test_cycle_counts_positive_and_deterministic(self):
        w = flat_workload(n=20, seed=0)
        sim = GpuSimulator(RTX_2080)
        a = sim.cycle_counts(w, seed=2)
        b = GpuSimulator(RTX_2080).cycle_counts(w, seed=2)
        assert (a > 0).all()
        assert np.allclose(a, b)

    def test_work_scale_increases_cycles(self):
        from repro.workloads import WorkloadBuilder

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec()
        builder.launch(spec, work_scale=1.0)
        builder.launch(spec, work_scale=8.0)
        cycles = GpuSimulator(RTX_2080, noise=0.0).cycle_counts(builder.build(), seed=0)
        assert cycles[1] > 2 * cycles[0]

    def test_more_sms_speed_up_compute_bound(self):
        from repro.workloads import WorkloadBuilder

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k", memory_boundedness=0.1, grid=4096)
        for _ in range(3):
            builder.launch(spec, locality=0.9)
        w = builder.build()
        base = GpuSimulator(RTX_2080, noise=0.0).cycle_counts(w, seed=0).sum()
        doubled = (
            GpuSimulator(RTX_2080.scaled(sm_scale=2.0), noise=0.0)
            .cycle_counts(w, seed=0)
            .sum()
        )
        assert doubled < 0.85 * base

    def test_larger_cache_helps_poor_fit_workloads(self):
        from repro.workloads import WorkloadBuilder

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k", memory_boundedness=0.9, working_set_mb=64.0)
        for _ in range(3):
            builder.launch(spec, locality=0.6)
        w = builder.build()
        base = GpuSimulator(RTX_2080, noise=0.0).cycle_counts(w, seed=0).sum()
        bigger = (
            GpuSimulator(RTX_2080.scaled(cache_scale=4.0), noise=0.0)
            .cycle_counts(w, seed=0)
            .sum()
        )
        assert bigger < base

    def test_workload_result_aggregation(self):
        w = flat_workload(n=5, seed=0)
        result = GpuSimulator(RTX_2080).simulate_workload(w, seed=1)
        assert len(result.kernel_results) == 5
        assert result.total_cycles == pytest.approx(
            sum(r.cycles for r in result.kernel_results)
        )
        assert result.aggregate.instructions > 0

    def test_subset_simulation(self):
        w = flat_workload(n=10, seed=0)
        result = GpuSimulator(RTX_2080).simulate_workload(w, indices=[2, 7], seed=1)
        assert [r.invocation_index for r in result.kernel_results] == [2, 7]

    def test_stats_merge(self):
        a = SimStats(cycles=10.0, instructions=5, l1_hits=2)
        b = SimStats(cycles=20.0, instructions=7, l1_hits=1)
        a.merge(b)
        assert a.cycles == 30.0
        assert a.instructions == 12
        assert a.l1_hits == 3

    def test_stats_rates(self):
        s = SimStats(cycles=10.0, instructions=20, l1_hits=3, l1_misses=1)
        assert s.ipc == pytest.approx(2.0)
        assert s.l1_hit_rate == pytest.approx(0.75)
        assert "l2_hit_rate" in s.as_dict()


class TestWarmup:
    def invocation(self):
        from repro.workloads import KernelInvocation, LaunchContext

        return KernelInvocation(0, make_kernel_spec(), LaunchContext(locality=0.6))

    def test_no_warmup_touches_nothing(self):
        from repro.sim import NoWarmup

        trace = TraceGenerator(num_sms=4).generate(self.invocation())
        assert NoWarmup().apply(trace, Cache(8 << 10), Cache(64 << 10)) == 0

    def test_proportional_warmup_populates_l2(self):
        from repro.sim import ProportionalWarmup

        trace = TraceGenerator(num_sms=4).generate(self.invocation())
        l2 = Cache(1 << 20)
        touched = ProportionalWarmup(0.5).apply(trace, Cache(8 << 10), l2)
        assert touched > 0
        assert l2.resident_lines() > 0

    def test_warmup_fraction_validation(self):
        from repro.sim import ProportionalWarmup, WarmupKernel

        with pytest.raises(ValueError):
            ProportionalWarmup(1.5)
        with pytest.raises(ValueError):
            WarmupKernel(0.0)

    def test_warmup_reduces_cycles(self):
        from repro.sim import ProportionalWarmup
        from repro.workloads.generators.synthetic import flat_workload

        w = flat_workload(n=10, seed=0)
        cold = GpuSimulator(RTX_2080, noise=0.0).cycle_counts(w, seed=1).sum()
        warm = (
            GpuSimulator(RTX_2080, noise=0.0, warmup=ProportionalWarmup(0.8))
            .cycle_counts(w, seed=1)
            .sum()
        )
        assert warm < cold

    def test_warmup_stats_not_counted(self):
        from repro.sim import WarmupKernel

        trace = TraceGenerator(num_sms=4).generate(self.invocation())
        sim = GpuSimulator(RTX_2080, warmup=WarmupKernel(1.0))
        result = sim.simulate_trace(trace, seed=0)
        # Measured accesses equal the trace's memory ops scaled by the
        # kernel extrapolation — the untimed warmup replay adds nothing.
        n_mem = sum(len(w.addresses) for w in trace.warps)
        expected = int(round(n_mem * trace.extrapolation))
        assert result.stats.l1_hits + result.stats.l1_misses == expected


class TestMultiSmSimulator:
    def test_validation(self):
        from repro.sim import MultiSmSimulator

        with pytest.raises(ValueError):
            MultiSmSimulator(RTX_2080, num_detailed_sms=0)

    def test_detailed_sms_capped_at_config(self):
        from repro.sim import MultiSmSimulator

        cfg = GPUConfig(name="tiny", num_sms=2)
        sim = MultiSmSimulator(cfg, num_detailed_sms=8)
        assert sim.num_detailed_sms == 2

    def test_cycles_positive_and_deterministic(self):
        from repro.sim import MultiSmSimulator
        from repro.workloads.generators.synthetic import flat_workload

        w = flat_workload(n=4, seed=0)
        a = MultiSmSimulator(RTX_2080, num_detailed_sms=2).cycle_counts(w, seed=3)
        b = MultiSmSimulator(RTX_2080, num_detailed_sms=2).cycle_counts(w, seed=3)
        assert (a > 0).all()
        assert np.allclose(a, b)

    def test_contention_never_faster_than_isolated(self):
        """Sharing L2/DRAM across detailed SMs cannot speed a kernel up."""
        from repro.sim import MultiSmSimulator
        from repro.workloads import WorkloadBuilder

        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k", memory_boundedness=0.9, working_set_mb=64.0)
        builder.launch(spec, locality=0.4)
        w = builder.build()
        single = GpuSimulator(RTX_2080, noise=0.0).cycle_counts(w, seed=1).sum()
        multi = (
            MultiSmSimulator(RTX_2080, num_detailed_sms=4, noise=0.0)
            .cycle_counts(w, seed=1)
            .sum()
        )
        assert multi >= single * 0.8  # allow trace-shape slack, no big speedup

    def test_stats_cover_whole_gpu(self):
        from repro.sim import MultiSmSimulator
        from repro.workloads.generators.synthetic import flat_workload

        w = flat_workload(n=1, seed=0)
        sim = MultiSmSimulator(RTX_2080, num_detailed_sms=2, noise=0.0)
        result = sim.simulate_invocation(w, 0, seed=0)
        # Extrapolated counters exceed what two SMs alone executed.
        assert result.stats.instructions > 2 * 16 * 10


class TestBatchedWorkloadSimulation:
    def test_batch_matches_per_invocation_exactly(self):
        w = flat_workload(n=12, seed=1)
        batch = GpuSimulator(RTX_2080).simulate_workload(w, seed=3)
        scalar_sim = GpuSimulator(RTX_2080)
        assert len(batch.kernel_results) == len(w)
        for i, got in enumerate(batch.kernel_results):
            want = scalar_sim.simulate_invocation(w, i, seed=3)
            assert got.cycles == want.cycles
            assert got.wave_cycles == want.wave_cycles
            assert got.extrapolation == want.extrapolation
            assert got.stats == want.stats

    def test_subset_indices_match_full_run(self):
        w = flat_workload(n=10, seed=2)
        full = GpuSimulator(RTX_2080).simulate_workload(w, seed=5)
        subset = GpuSimulator(RTX_2080).simulate_workload(w, indices=[1, 4, 7], seed=5)
        for got, idx in zip(subset.kernel_results, [1, 4, 7]):
            assert got.cycles == full.kernel_results[idx].cycles

    def test_aggregate_fields_cached_and_consistent(self):
        w = flat_workload(n=8, seed=0)
        res = GpuSimulator(RTX_2080).simulate_workload(w, seed=1)
        total = res.total_cycles
        assert total == res.total_cycles  # cached value is stable
        assert total == sum(r.cycles for r in res.kernel_results)
        by_index = res.cycles_by_index()
        assert by_index is res.cycles_by_index()  # memoized
        assert set(by_index) == {r.invocation_index for r in res.kernel_results}
        assert sum(by_index.values()) == total
