"""Unit tests for context mixtures."""

import numpy as np
import pytest

from repro.workloads import ContextMixture, ContextMode


class TestContextMode:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"work_scale": -1.0},
            {"work_jitter": -0.1},
            {"locality": 1.5},
            {"locality_jitter": -0.5},
            {"efficiency": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ContextMode(context_id=0, **kwargs)


class TestContextMixture:
    def test_requires_modes(self):
        with pytest.raises(ValueError):
            ContextMixture([])

    def test_duplicate_context_ids_rejected(self):
        with pytest.raises(ValueError):
            ContextMixture(
                [ContextMode(context_id=0), ContextMode(context_id=0, work_scale=2.0)]
            )

    def test_single_factory(self):
        m = ContextMixture.single(work_scale=2.0, locality=0.8, efficiency=0.5)
        assert m.num_modes == 1
        assert m.modes[0].efficiency == 0.5

    def test_weights_normalized(self):
        m = ContextMixture(
            [
                ContextMode(context_id=0, weight=3.0),
                ContextMode(context_id=1, weight=1.0, work_scale=2.0),
            ]
        )
        assert np.allclose(m.weights().sum(), 1.0)
        assert np.allclose(m.weights(), [0.75, 0.25])

    def test_draw_shapes_and_ranges(self, rng):
        m = ContextMixture(
            [
                ContextMode(context_id=0, work_scale=1.0, work_jitter=0.1, locality=0.5, locality_jitter=0.2),
                ContextMode(context_id=3, work_scale=4.0, locality=0.9, efficiency=0.5),
            ]
        )
        ctx, scales, locs, effs = m.draw(500, rng)
        assert len(ctx) == len(scales) == len(locs) == len(effs) == 500
        assert set(np.unique(ctx)) <= {0, 3}
        assert (scales > 0).all()
        assert (locs >= 0).all() and (locs <= 1).all()
        assert set(np.unique(effs)) <= {1.0, 0.5}

    def test_draw_weight_proportions(self, rng):
        m = ContextMixture(
            [
                ContextMode(context_id=0, weight=0.8),
                ContextMode(context_id=1, weight=0.2, work_scale=2.0),
            ]
        )
        ctx, _, _, _ = m.draw(5000, rng)
        frac = (ctx == 0).mean()
        assert 0.74 < frac < 0.86

    def test_draw_zero(self, rng):
        ctx, scales, locs, effs = ContextMixture.single().draw(0, rng)
        assert len(ctx) == 0

    def test_draw_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            ContextMixture.single().draw(-1, rng)

    def test_schedule_follows_sequence(self, rng):
        m = ContextMixture(
            [
                ContextMode(context_id=10, work_scale=1.0),
                ContextMode(context_id=20, work_scale=5.0),
            ]
        )
        ctx, scales, _, _ = m.schedule([0, 1, 1, 0], rng)
        assert list(ctx) == [10, 20, 20, 10]
        assert scales[1] == pytest.approx(5.0)

    def test_schedule_rejects_out_of_range(self, rng):
        m = ContextMixture.single()
        with pytest.raises(ValueError):
            m.schedule([0, 1], rng)

    def test_work_scale_floor(self, rng):
        """Huge negative jitter draws are clipped at 1% of the mode mean."""
        m = ContextMixture.single(work_scale=1.0, work_jitter=5.0)
        _, scales, _, _ = m.draw(2000, rng)
        assert scales.min() >= 0.01 - 1e-12

    def test_no_jitter_is_deterministic(self, rng):
        m = ContextMixture.single(work_scale=2.5, locality=0.4)
        _, scales, locs, _ = m.draw(100, rng)
        assert np.allclose(scales, 2.5)
        assert np.allclose(locs, 0.4)
