"""Tests for memoization & incremental re-planning (:mod:`repro.memo`).

The contract under test, in order of importance:

(a) **bit-identity** — dedup, the simulation-result cache and ROOT-tree
    reuse change *nothing*: every kernel result, estimate, sweep point
    and resilient-pipeline outcome equals the unoptimized path exactly,
    including under active fault plans;
(b) **reuse actually happens** — warm paths report cache hits and skip
    simulation/clustering work;
(c) **invalidation** — a changed seed, GPU or torn cache entry is a
    miss, never a stale hit;
(d) the new CLI subcommands (``sweep``/``dse``) run end to end and
    report per-stage hit rates.
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import ProfileStore
from repro.cli import main
from repro.core import StemRootSampler
from repro.core.root import RootConfig, root_split
from repro.errors import SimulationFailure
from repro.experiments import error_bound_sweep as sweep_mod
from repro.experiments.error_bound_sweep import (
    SimGroundTruth,
    run_error_bound_sweep,
)
from repro.experiments.runner import ExperimentConfig
from repro.hardware import RTX_2080, get_preset
from repro.memo import (
    SimResultCache,
    SplitTreeCache,
    collapse_draws,
    expand_unique,
)
from repro.resilience import FaultPlan, sample_resiliently
from repro.resilience.faults import FaultInjector
from repro.sim import GpuSimulator
from repro.workloads import load_workload


def small_workload(scale: float = 0.2):
    return load_workload("rodinia", "bfs", scale=scale, seed=0)


def results_equal(a, b) -> bool:
    """Exact equality of two WorkloadSimResults, field by field."""
    if len(a.kernel_results) != len(b.kernel_results):
        return False
    for ra, rb in zip(a.kernel_results, b.kernel_results):
        if (
            ra.invocation_index != rb.invocation_index
            or ra.cycles != rb.cycles
            or ra.wave_cycles != rb.wave_cycles
            or ra.extrapolation != rb.extrapolation
            or ra.stats.as_dict() != rb.stats.as_dict()
        ):
            return False
    return a.aggregate.as_dict() == b.aggregate.as_dict()


class TestDedupHelpers:
    def test_collapse_expand_roundtrip(self):
        draws = np.array([7, 2, 7, 7, 3, 2, 9])
        ms = collapse_draws(draws)
        assert np.array_equal(ms.unique[ms.inverse], draws)
        assert ms.counts.sum() == len(draws)
        assert ms.num_draws == 7 and ms.num_unique == 4 and ms.collapsed == 3

    def test_expanded_mean_is_bitwise_equal(self):
        rng = np.random.default_rng(4)
        draws = rng.integers(0, 10, size=100)
        values = rng.random(10) * 1e3
        ms = collapse_draws(draws)
        per_draw = float(values[draws].mean())
        expanded = float(expand_unique(values[ms.unique], ms.inverse).mean())
        assert per_draw == expanded

    def test_no_duplicates_is_a_noop(self):
        draws = np.array([3, 1, 4])
        ms = collapse_draws(draws)
        assert ms.collapsed == 0
        assert np.array_equal(np.sort(draws), ms.unique)


class TestPlanDedupEquivalence:
    """Weighted-unique estimates == per-draw estimates for every method."""

    METHODS = ["random", "pka", "sieve", "photon", "stem"]

    def _assert_plan_dedup_equal(self, plan, truth):
        for cluster in plan.clusters:
            drawn = cluster.sampled_indices
            if len(drawn) == 0:
                continue
            ms = collapse_draws(drawn)
            per_draw = cluster.member_count * float(truth[drawn].mean())
            unique_vals = truth[ms.unique]
            expanded = cluster.member_count * float(
                expand_unique(unique_vals, ms.inverse).mean()
            )
            assert per_draw == expanded
        # The totals follow, but check them explicitly anyway.
        assert plan.estimate_total(truth) == sum(
            c.member_count
            * float(
                expand_unique(
                    truth[collapse_draws(c.sampled_indices).unique],
                    collapse_draws(c.sampled_indices).inverse,
                ).mean()
            )
            for c in plan.clusters
            if len(c.sampled_indices)
        )

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods(self, method):
        workload = small_workload()
        config = ExperimentConfig(workload_scale=0.2, epsilon=0.1)
        store = ProfileStore(workload, RTX_2080, seed=3)
        sampler = config.sampler_for(method, workload)
        if hasattr(sampler, "build_plan_from_store"):
            plan = sampler.build_plan_from_store(store, seed=3)
        else:
            plan = sampler.build_plan(store, seed=3)
        self._assert_plan_dedup_equal(plan, store.true_execution_times())

    @pytest.mark.parametrize("replacement", [True, False])
    def test_stem_with_and_without_replacement(self, replacement):
        workload = small_workload()
        store = ProfileStore(workload, RTX_2080, seed=5)
        sampler = StemRootSampler(epsilon=0.1, replacement=replacement)
        plan = sampler.build_plan_from_store(store, seed=5)
        if not replacement:
            for cluster in plan.clusters:
                assert collapse_draws(cluster.sampled_indices).collapsed == 0
        self._assert_plan_dedup_equal(plan, store.true_execution_times())

    def test_under_active_fault_plan(self):
        workload = small_workload()
        fault_plan = FaultPlan.from_spec("seed=3,nan=0.05,inf=0.05")
        store = ProfileStore(
            workload,
            RTX_2080,
            seed=3,
            fault_injector=FaultInjector(fault_plan),
            validation="repair",
        )
        plan = StemRootSampler(epsilon=0.1).build_plan_from_store(store, seed=3)
        # Equality must hold against both the corrupted-then-repaired
        # observed profile and the clean truth.
        self._assert_plan_dedup_equal(plan, store.execution_times())
        self._assert_plan_dedup_equal(plan, store.true_execution_times())


class TestSimulatorDedup:
    DRAWS = [2, 5, 2, 7, 5, 2, 0, 7]

    def test_dedup_matches_per_draw_path(self):
        workload = small_workload()
        a = GpuSimulator(RTX_2080).simulate_workload(
            workload, self.DRAWS, seed=3, dedup=True
        )
        b = GpuSimulator(RTX_2080).simulate_workload(
            workload, self.DRAWS, seed=3, dedup=False
        )
        assert results_equal(a, b)

    def test_full_workload_unchanged(self):
        workload = small_workload(scale=0.1)
        a = GpuSimulator(RTX_2080).simulate_workload(workload, seed=1)
        b = GpuSimulator(RTX_2080).simulate_workload(workload, seed=1, dedup=False)
        assert results_equal(a, b)

    def test_same_fault_raised_either_way(self):
        workload = small_workload()
        plan = FaultPlan.from_spec("seed=11,perm_fail=0.2")
        injector = FaultInjector(plan)
        doomed = [
            i for i in range(len(workload))
            if injector.simulation_decision(i, 1).kind != "ok"
        ]
        assert doomed, "fault plan never fires at this rate"
        draws = [doomed[0], doomed[0], 1 - (doomed[0] & 1)]
        errors = []
        for dedup in (True, False):
            sim = GpuSimulator(RTX_2080, fault_injector=FaultInjector(plan))
            with pytest.raises(SimulationFailure) as err:
                sim.simulate_workload(workload, draws, seed=3, dedup=dedup)
            errors.append(str(err.value))
        assert errors[0] == errors[1]

    def test_clean_faulty_run_matches_no_injector(self):
        workload = small_workload()
        plan = FaultPlan.from_spec("seed=11,perm_fail=0.2")
        injector = FaultInjector(plan)
        safe = [
            i for i in range(len(workload))
            if injector.simulation_decision(i, 1).kind == "ok"
        ][:3]
        draws = safe + safe[:2]
        a = GpuSimulator(
            RTX_2080, fault_injector=FaultInjector(plan)
        ).simulate_workload(workload, draws, seed=3)
        b = GpuSimulator(RTX_2080).simulate_workload(
            workload, draws, seed=3, dedup=False
        )
        assert results_equal(a, b)


class TestSimResultCache:
    def test_cold_then_warm_bit_identical(self, tmp_path):
        workload = small_workload()
        cache = SimResultCache(str(tmp_path / "sim"))
        baseline = GpuSimulator(RTX_2080).simulate_workload(workload, seed=2)
        cold = GpuSimulator(RTX_2080, sim_cache=cache).simulate_workload(
            workload, seed=2
        )
        assert cache.hits == 0 and cache.misses == len(workload)
        warm = GpuSimulator(RTX_2080, sim_cache=cache).simulate_workload(
            workload, seed=2
        )
        assert cache.hits == len(workload)
        assert results_equal(baseline, cold)
        assert results_equal(baseline, warm)

    def test_disk_reuse_across_processes(self, tmp_path):
        """A fresh cache object (fresh memory layer) hits via disk."""
        workload = small_workload()
        root = str(tmp_path / "sim")
        first = GpuSimulator(
            RTX_2080, sim_cache=SimResultCache(root)
        ).simulate_workload(workload, seed=2)
        reread = SimResultCache(root)
        second = GpuSimulator(RTX_2080, sim_cache=reread).simulate_workload(
            workload, seed=2
        )
        assert reread.hits == len(workload) and reread.misses == 0
        assert results_equal(first, second)

    def test_seed_and_gpu_invalidate(self, tmp_path):
        workload = small_workload()
        cache = SimResultCache(str(tmp_path / "sim"))
        GpuSimulator(RTX_2080, sim_cache=cache).simulate_workload(workload, seed=2)
        GpuSimulator(RTX_2080, sim_cache=cache).simulate_workload(workload, seed=3)
        assert cache.hits == 0  # different trace seed = different context
        other_gpu = get_preset("h100")
        result = GpuSimulator(other_gpu, sim_cache=cache).simulate_workload(
            workload, seed=2
        )
        assert cache.hits == 0
        assert results_equal(
            result, GpuSimulator(other_gpu).simulate_workload(workload, seed=2)
        )

    def test_torn_entry_is_a_miss(self, tmp_path):
        workload = small_workload()
        root = str(tmp_path / "sim")
        cache = SimResultCache(root)
        GpuSimulator(RTX_2080, sim_cache=cache).simulate_workload(workload, seed=2)
        entries = [
            os.path.join(dirpath, f)
            for dirpath, _dirs, files in os.walk(root)
            for f in files
            if f.endswith(".npz")
        ]
        assert entries
        with open(entries[0], "wb") as fh:
            fh.write(b"not an npz file")
        fresh = SimResultCache(root)
        result = GpuSimulator(RTX_2080, sim_cache=fresh).simulate_workload(
            workload, seed=2
        )
        assert fresh.misses == len(workload)
        assert results_equal(
            result, GpuSimulator(RTX_2080).simulate_workload(workload, seed=2)
        )

    def test_dedup_plus_cache_on_repeated_draws(self, tmp_path):
        workload = small_workload()
        cache = SimResultCache(str(tmp_path / "sim"))
        draws = [2, 5, 2, 7, 5, 2]
        baseline = GpuSimulator(RTX_2080).simulate_workload(
            workload, draws, seed=3, dedup=False
        )
        sim = GpuSimulator(RTX_2080, sim_cache=cache)
        cold = sim.simulate_workload(workload, draws, seed=3)
        assert cache.misses == 3  # unique invocations only
        warm = sim.simulate_workload(workload, draws, seed=3)
        assert cache.hits == 3
        assert results_equal(baseline, cold)
        assert results_equal(baseline, warm)


class TestSplitTreeReuse:
    def trimodal(self, n=240):
        rng = np.random.default_rng(0)
        return np.concatenate([
            rng.normal(10, 0.5, n // 3),
            rng.normal(100, 4.0, n // 3),
            rng.normal(1000, 30.0, n // 3),
        ])

    @staticmethod
    def leaves_equal(a, b) -> bool:
        if len(a) != len(b):
            return False
        for la, lb in zip(a, b):
            if not np.array_equal(la.indices, lb.indices):
                return False
            if la.stats != lb.stats or la.depth != lb.depth:
                return False
        return True

    def test_cached_tree_equals_from_scratch(self):
        times = self.trimodal()
        cache = SplitTreeCache()
        for epsilon in (0.03, 0.05, 0.25):
            config = RootConfig(epsilon=epsilon)
            cached = root_split(
                times, config=config, rng=np.random.default_rng(7),
                tree_cache=cache,
            )
            scratch = root_split(
                times, config=config, rng=np.random.default_rng(7)
            )
            assert self.leaves_equal(cached, scratch)
        assert cache.misses == 1 and cache.hits == 2

    def test_lazy_expansion_order_is_irrelevant(self):
        """A tree first walked at a loose bound expands deeper splits
        later — those late expansions must match a from-scratch run."""
        times = self.trimodal()
        cache = SplitTreeCache()
        # Loose bound first: accepts few splits, expands little.
        root_split(
            times, config=RootConfig(epsilon=0.5),
            rng=np.random.default_rng(7), tree_cache=cache,
        )
        tight_cached = root_split(
            times, config=RootConfig(epsilon=0.02),
            rng=np.random.default_rng(7), tree_cache=cache,
        )
        tight_scratch = root_split(
            times, config=RootConfig(epsilon=0.02),
            rng=np.random.default_rng(7),
        )
        assert self.leaves_equal(tight_cached, tight_scratch)

    def test_structural_knobs_key_the_cache(self):
        times = self.trimodal()
        cache = SplitTreeCache()
        root_split(times, config=RootConfig(min_cluster_size=8),
                   rng=np.random.default_rng(7), tree_cache=cache)
        root_split(times, config=RootConfig(min_cluster_size=16),
                   rng=np.random.default_rng(7), tree_cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        cache = SplitTreeCache(max_entries=2)
        rng = np.random.default_rng(0)
        for i in range(4):
            times = rng.random(32) + i
            root_split(times, rng=np.random.default_rng(i), tree_cache=cache)
        assert len(cache) == 2

    def test_sampler_plans_identical_with_shared_tree_cache(self):
        workload = small_workload()
        store = ProfileStore(workload, RTX_2080, seed=4)
        cache = SplitTreeCache()
        for epsilon in (0.03, 0.1, 0.25):
            cached_plan = StemRootSampler(
                epsilon=epsilon, tree_cache=cache
            ).build_plan_from_store(store, seed=4)
            plain_plan = StemRootSampler(epsilon=epsilon).build_plan_from_store(
                store, seed=4
            )
            assert cached_plan.to_dict() == plain_plan.to_dict()
        assert cache.hits > 0


class TestSweepMemo:
    EPSILONS = (0.05, 0.25)

    def sweep_config(self):
        return ExperimentConfig(repetitions=2, workload_scale=0.01)

    def test_points_identical_with_and_without_caches(self, tmp_path):
        plain = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            tree_cache=False,
        )
        tree_cache = SplitTreeCache()
        sim_cache = SimResultCache(str(tmp_path / "sim"))
        memo = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            tree_cache=tree_cache, sim_cache=sim_cache, ground_truth="profile",
        )
        assert plain == memo
        assert tree_cache.hits > 0

    def test_sim_truth_cold_vs_warm(self, tmp_path):
        sim_cache = SimResultCache(str(tmp_path / "sim"))
        cold = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            sim_cache=sim_cache, ground_truth="sim",
        )
        assert sim_cache.misses > 0
        cold_misses = sim_cache.misses
        warm = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            sim_cache=sim_cache, ground_truth="sim",
        )
        assert cold == warm
        assert sim_cache.hits > 0
        assert sim_cache.misses == cold_misses  # warm run misses nothing

    def test_sim_truth_matches_uncached_sim_truth(self, tmp_path):
        uncached = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            ground_truth="sim", tree_cache=False,
        )
        cached = run_error_bound_sweep(
            self.EPSILONS, config=self.sweep_config(), suite="rodinia",
            ground_truth="sim",
            sim_cache=SimResultCache(str(tmp_path / "sim")),
        )
        assert uncached == cached

    def test_replace_preserves_every_config_field(self, monkeypatch):
        from types import SimpleNamespace

        captured = []

        def fake_run_suite(suite, config=None, **kwargs):
            captured.append(config)
            return [
                SimpleNamespace(
                    workload="w", speedup=10.0, error_percent=1.0, num_samples=5
                )
            ]

        monkeypatch.setattr(sweep_mod, "run_suite", fake_run_suite)
        fault_plan = FaultPlan.from_spec("seed=1,nan=0.1")
        base = ExperimentConfig(
            repetitions=7,
            base_seed=13,
            workload_scale=0.3,
            fault_plan=fault_plan,
            validation="repair",
        )
        run_error_bound_sweep((0.03, 0.2), config=base, suite="rodinia")
        assert [cfg.epsilon for cfg in captured] == [0.03, 0.2]
        for cfg in captured:
            assert cfg.repetitions == 7
            assert cfg.base_seed == 13
            assert cfg.workload_scale == 0.3
            assert cfg.fault_plan is fault_plan
            assert cfg.validation == "repair"
            assert cfg.tree_cache is not None  # auto-created, shared

    def test_invalid_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            run_error_bound_sweep(
                (0.05,), config=self.sweep_config(), ground_truth="nope"
            )

    def test_sim_ground_truth_is_picklable(self, tmp_path):
        import pickle

        truth = SimGroundTruth(sim_cache_root=str(tmp_path / "sim"))
        assert pickle.loads(pickle.dumps(truth)) == truth


class TestResilienceMemo:
    @staticmethod
    def outcome_key(res):
        return (
            res.plan.to_dict(),
            res.result.estimated_total,
            res.result.error_percent,
            res.achieved_epsilon,
            res.quarantined,
            res.redrawn,
            res.retries,
            res.rounds,
        )

    def test_faulty_pipeline_bit_identical_with_cache(self, tmp_path):
        workload = small_workload()
        sampler = StemRootSampler(epsilon=0.1)
        fault_plan = FaultPlan.from_spec("seed=7,sim_fail=0.1,perm_fail=0.02")

        def run(sim_cache=None):
            store = ProfileStore(workload, RTX_2080, seed=6)
            return sample_resiliently(
                store, sampler, fault_plan=fault_plan, seed=6,
                sim_cache=sim_cache,
            )

        plain = run()
        cache = SimResultCache(str(tmp_path / "sim"))
        cold = run(sim_cache=cache)
        assert cache.stores > 0
        warm = run(sim_cache=cache)
        assert cache.hits > 0
        assert self.outcome_key(plain) == self.outcome_key(cold)
        assert self.outcome_key(plain) == self.outcome_key(warm)

    def test_clean_pipeline_bit_identical_with_cache(self, tmp_path):
        workload = small_workload()
        sampler = StemRootSampler(epsilon=0.1)
        store = ProfileStore(workload, RTX_2080, seed=6)
        plain = sample_resiliently(store, sampler, seed=6)
        cache = SimResultCache(str(tmp_path / "sim"))
        cached = sample_resiliently(
            ProfileStore(workload, RTX_2080, seed=6), sampler, seed=6,
            sim_cache=cache,
        )
        assert self.outcome_key(plain) == self.outcome_key(cached)


class TestMemoCli:
    def test_sweep_command_writes_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        status = main([
            "sweep", "rodinia", "--epsilons", "0.05,0.25",
            "--repetitions", "1", "--scale", "0.01",
            "--ground-truth", "sim",
            "--sim-cache", str(tmp_path / "sim"),
            "--out", str(out),
        ])
        assert status == 0
        captured = capsys.readouterr()
        assert "error-bound sweep" in captured.out
        assert "memo:" in captured.err
        payload = json.loads(out.read_text())
        assert [p["epsilon"] for p in payload["points"]] == [0.05, 0.25]
        assert payload["memo"]["sim_cache"]["hits"] > 0  # 2nd eps reuses
        assert payload["memo"]["tree_cache"]["hits"] > 0

    def test_sweep_twice_identical_points_and_warm_hits(self, tmp_path):
        args = [
            "sweep", "rodinia", "--epsilons", "0.05",
            "--repetitions", "1", "--scale", "0.01",
            "--ground-truth", "sim",
            "--sim-cache", str(tmp_path / "sim"),
        ]
        assert main(args + ["--out", str(tmp_path / "a.json")]) == 0
        assert main(args + ["--out", str(tmp_path / "b.json")]) == 0
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        assert a["points"] == b["points"]
        assert b["memo"]["sim_cache"]["hit_rate"] == 1.0

    def test_dse_command_writes_report(self, tmp_path, capsys):
        out = tmp_path / "dse.json"
        status = main([
            "dse", "--workloads", "bfs", "--methods", "stem",
            "--repetitions", "1", "--max-invocations", "16",
            "--sim-cache", str(tmp_path / "sim"),
            "--out", str(out),
        ])
        assert status == 0
        assert "DSE error by variant" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["table"]
        assert payload["memo"]["sim_cache"]["misses"] > 0

    def test_dse_rejects_unknown_workload(self, capsys):
        assert main(["dse", "--workloads", "not-a-workload"]) == 2
        assert "unknown DSE workloads" in capsys.readouterr().err
