"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sample_args(self):
        args = build_parser().parse_args(
            ["sample", "rodinia", "bfs", "--scale", "0.5", "--epsilon", "0.1"]
        )
        assert args.command == "sample"
        assert args.epsilon == 0.1

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "nope", "bfs"])

    def test_rejects_unknown_gpu(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "rodinia", "bfs", "--gpu", "a100"])


class TestCommands:
    def test_suites(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "rodinia" in out and "bert_infer" in out

    def test_sample(self, capsys):
        assert main(["sample", "rodinia", "heartwall"]) == 0
        out = capsys.readouterr().out
        assert "error %" in out
        assert "heartwall" in out

    def test_compare(self, capsys):
        assert main(["compare", "rodinia", "bfs", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        for method in ("random", "pka", "sieve", "photon", "stem"):
            assert method in out

    def test_report(self, capsys):
        assert main(["report", "rodinia", "heartwall", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "risk %" in out

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["trace", "rodinia", "bfs", str(out_file), "--scale", "0.5"]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
