"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sample_args(self):
        args = build_parser().parse_args(
            ["sample", "rodinia", "bfs", "--scale", "0.5", "--epsilon", "0.1"]
        )
        assert args.command == "sample"
        assert args.epsilon == 0.1

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "nope", "bfs"])

    def test_rejects_unknown_gpu(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "rodinia", "bfs", "--gpu", "a100"])


class TestCommands:
    def test_suites(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "rodinia" in out and "bert_infer" in out

    def test_sample(self, capsys):
        assert main(["sample", "rodinia", "heartwall"]) == 0
        out = capsys.readouterr().out
        assert "error %" in out
        assert "heartwall" in out

    def test_compare(self, capsys):
        assert main(["compare", "rodinia", "bfs", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        for method in ("random", "pka", "sieve", "photon", "stem"):
            assert method in out

    def test_report(self, capsys):
        assert main(["report", "rodinia", "heartwall", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "risk %" in out

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["trace", "rodinia", "bfs", str(out_file), "--scale", "0.5"]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out


class TestObservability:
    def test_sample_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
        ]) == 0
        # Observability was torn down after the run.
        assert not obs.is_enabled()
        assert "error %" in capsys.readouterr().out

        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"]}
        assert "root.split" in names and "sampler.build_plan" in names

        metrics = json.loads(metrics_path.read_text())
        counters = metrics["counters"]
        for prefix in ("root.", "stem.", "sim."):
            assert any(
                name.startswith(prefix) and value > 0
                for name, value in counters.items()
            ), f"no nonzero {prefix} series"

    def test_trace_out_alone(self, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--trace-out", str(trace_path),
        ]) == 0
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_obs_subcommand_renders_report(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        capsys.readouterr()
        assert main(["obs", "report", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "Wall-clock by phase" in out
        assert "cluster" in out
        assert "root.splits_accepted" in out

    def test_obs_subcommand_without_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["sample", "rodinia", "bfs", "--scale", "0.5",
              "--trace-out", str(trace_path)])
        capsys.readouterr()
        assert main(["obs", "report", str(trace_path)]) == 0
        assert "Wall-clock by phase" in capsys.readouterr().out

    def test_disabled_run_matches_traced_run(self, tmp_path, capsys):
        assert main(["sample", "rodinia", "bfs", "--scale", "0.5"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "sample", "rodinia", "bfs", "--scale", "0.5",
            "--trace-out", str(tmp_path / "t.json"),
        ]) == 0
        traced = capsys.readouterr().out
        assert plain == traced
