"""Shared fixtures: small deterministic workloads and hardware handles."""

import numpy as np
import pytest

from repro.hardware import RTX_2080, TimingModel
from repro.workloads.generators.synthetic import (
    flat_workload,
    make_kernel_spec,
    mixed_workload,
    multimodal_workload,
)


@pytest.fixture(autouse=True)
def _isolate_run_ledger(monkeypatch):
    """Keep CLI runs in tests from appending to the repo's run ledger.

    The ledger is on by default for CLI commands (an empty
    ``REPRO_RUNS_DIR`` disables it); tests that want ledger behaviour
    pass ``--runs-dir`` or set the variable themselves.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", "")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def spec():
    return make_kernel_spec()


@pytest.fixture
def flat():
    """Unimodal single-kernel workload (1000 launches)."""
    return flat_workload(n=1000, seed=7)


@pytest.fixture
def trimodal():
    """Single kernel with three well-separated time peaks."""
    return multimodal_workload(n=1500, seed=11)


@pytest.fixture
def mixed():
    """Three kernel personalities (GEMM-like, BN-like, pool-like)."""
    return mixed_workload(n_per_kernel=600, seed=5)


@pytest.fixture
def gpu():
    return RTX_2080


@pytest.fixture
def timing(gpu):
    return TimingModel(gpu)


@pytest.fixture
def flat_times(flat, timing):
    return timing.execution_times(flat, seed=3)


@pytest.fixture
def trimodal_times(trimodal, timing):
    return timing.execution_times(trimodal, seed=3)


@pytest.fixture
def mixed_times(mixed, timing):
    return timing.execution_times(mixed, seed=3)
