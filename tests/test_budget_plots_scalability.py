"""Tests for budget planning, ASCII plots, and scalability fitting."""

import pytest

from repro.analysis.plots import ScatterPoint, render_gantt, render_scatter
from repro.core.budget import epsilon_for_budget, plan_for_budget
from repro.core.stem import (
    ClusterStats,
    predicted_error_multi,
    predicted_simulated_time,
)
from repro.experiments.scalability import ScalePoint, fit_exponent


def example_clusters():
    return [
        ClusterStats(n=10_000, mu=5.0, sigma=2.0),
        ClusterStats(n=2_000, mu=50.0, sigma=20.0),
        ClusterStats(n=500, mu=200.0, sigma=10.0),
    ]


class TestEpsilonForBudget:
    def test_inverse_square_scaling(self):
        clusters = example_clusters()
        e1 = epsilon_for_budget(clusters, 1000.0)
        e2 = epsilon_for_budget(clusters, 4000.0)
        assert e1 / e2 == pytest.approx(2.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            epsilon_for_budget(example_clusters(), 0.0)
        with pytest.raises(ValueError):
            epsilon_for_budget([], 10.0)

    def test_zero_variance_clusters(self):
        clusters = [ClusterStats(n=100, mu=1.0, sigma=0.0)]
        assert epsilon_for_budget(clusters, 10.0) < 1e-6

    def test_clamped_to_one(self):
        clusters = [ClusterStats(n=1_000_000, mu=1.0, sigma=100.0)]
        assert epsilon_for_budget(clusters, 1e-9) == 1.0


class TestPlanForBudget:
    def test_plan_fits_budget(self):
        clusters = example_clusters()
        plan = plan_for_budget(clusters, budget=5_000.0)
        assert plan.within_budget
        assert plan.predicted_time <= 5_000.0 * (1 + 1e-9)
        assert predicted_error_multi(clusters, plan.sample_sizes) == pytest.approx(
            plan.predicted_error
        )

    def test_bigger_budget_smaller_error(self):
        clusters = example_clusters()
        small = plan_for_budget(clusters, budget=2_000.0)
        large = plan_for_budget(clusters, budget=50_000.0)
        assert large.predicted_error < small.predicted_error
        assert large.predicted_time > small.predicted_time

    def test_floor_reported_when_budget_too_small(self):
        clusters = example_clusters()
        floor = predicted_simulated_time(clusters, [1, 1, 1])
        plan = plan_for_budget(clusters, budget=floor / 2)
        assert not plan.within_budget
        assert plan.predicted_time == pytest.approx(floor)
        assert (plan.sample_sizes == 1).all()

    def test_sample_sizes_capped_at_cluster_sizes(self):
        clusters = [ClusterStats(n=5, mu=1.0, sigma=5.0)]
        plan = plan_for_budget(clusters, budget=1e9)
        assert plan.sample_sizes[0] <= 5


class TestRenderScatter:
    def points(self):
        return [
            ScatterPoint(1.0, 10.0, "stem"),
            ScatterPoint(100.0, 1.0, "stem"),
            ScatterPoint(10.0, 5.0, "random"),
        ]

    def test_renders_with_legend(self):
        text = render_scatter(self.points(), title="T", x_label="speedup")
        assert "T" in text
        assert "legend" in text
        assert "stem" in text and "random" in text

    def test_log_scale(self):
        text = render_scatter(self.points(), log_x=True)
        assert "log scale" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_scatter([ScatterPoint(0.0, 1.0, "a")], log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_scatter([])

    def test_grid_dimensions(self):
        text = render_scatter(self.points(), width=30, height=8)
        rows = [line for line in text.splitlines() if line.startswith("|")]
        assert len(rows) == 8
        assert all(len(r) == 32 for r in rows)


class TestRenderGantt:
    def test_rows_per_resource(self):
        text = render_gantt(
            {"gpu0": [(0.0, 5.0)], "net": [(5.0, 8.0)]}, width=40, title="G"
        )
        lines = text.splitlines()
        assert lines[0] == "G"
        assert any("gpu0" in line for line in lines)
        assert any("net" in line for line in lines)

    def test_busy_marks_present(self):
        text = render_gantt({"gpu0": [(0.0, 10.0)]}, width=20)
        assert "#" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_gantt({})

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError):
            render_gantt({"gpu0": []})


class TestFitExponent:
    def test_linear_data(self):
        points = [
            ScalePoint(num_invocations=n, profile_seconds=0.0, plan_seconds=n * 1e-5)
            for n in (1_000, 10_000, 100_000)
        ]
        exponent, r2 = fit_exponent(points)
        assert exponent == pytest.approx(1.0, abs=0.01)
        assert r2 > 0.999

    def test_quadratic_data(self):
        points = [
            ScalePoint(num_invocations=n, profile_seconds=0.0, plan_seconds=n**2 * 1e-9)
            for n in (1_000, 10_000, 100_000)
        ]
        exponent, _ = fit_exponent(points)
        assert exponent == pytest.approx(2.0, abs=0.01)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_exponent([ScalePoint(10, 0.0, 1.0)])


class TestBudgetProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    cluster_strategy = st.builds(
        ClusterStats,
        n=st.integers(min_value=1, max_value=50_000),
        mu=st.floats(min_value=0.1, max_value=1e3),
        sigma=st.floats(min_value=0.0, max_value=1e2),
    )

    @given(st.lists(cluster_strategy, min_size=1, max_size=6), st.floats(min_value=10.0, max_value=1e7))
    @settings(max_examples=30, deadline=None)
    def test_property_plan_never_exceeds_budget_when_feasible(self, clusters, budget):
        plan = plan_for_budget(clusters, budget)
        if plan.within_budget:
            assert plan.predicted_time <= budget * (1 + 1e-9)
        else:
            # Infeasible only when even the one-sample floor is too big.
            assert plan.floor_time >= budget

    @given(st.lists(cluster_strategy, min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_property_epsilon_monotone_in_budget(self, clusters):
        e_small = epsilon_for_budget(clusters, 100.0)
        e_large = epsilon_for_budget(clusters, 10_000.0)
        assert e_large <= e_small + 1e-12
