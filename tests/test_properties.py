"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.clustering import count_kde_peaks, kmeans_1d
from repro.core.plan import PlanCluster, SamplingPlan
from repro.core.root import RootConfig, root_split
from repro.core.sampler import StemRootSampler
from repro.core.stem import ClusterStats, kkt_sample_sizes, predicted_error_multi

positive_times = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.floats(min_value=0.1, max_value=1e4),
)


class TestRootProperties:
    @given(positive_times, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_leaves_always_partition(self, times, seed):
        rng = np.random.default_rng(seed)
        leaves = root_split(times, rng=rng)
        merged = np.sort(np.concatenate([l.indices for l in leaves]))
        assert np.array_equal(merged, np.arange(len(times)))

    @given(positive_times)
    @settings(max_examples=40, deadline=None)
    def test_leaf_stats_consistent(self, times):
        leaves = root_split(times, rng=np.random.default_rng(0))
        for leaf in leaves:
            member_times = times[leaf.indices]
            assert leaf.stats.n == len(member_times)
            assert leaf.stats.mu == pytest.approx(member_times.mean())

    @given(positive_times, st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_total_time_preserved(self, times, k):
        config = RootConfig(k=k)
        leaves = root_split(times, config=config, rng=np.random.default_rng(1))
        total = sum(l.stats.total for l in leaves)
        assert total == pytest.approx(times.sum(), rel=1e-9)


class TestPlanProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=1000),  # member_count
                st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=10),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_estimate_is_weighted_sum(self, cluster_specs, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(100) + 0.01
        clusters = [
            PlanCluster(f"c{i}", members, np.asarray(samples, dtype=np.int64))
            for i, (members, samples) in enumerate(cluster_specs)
        ]
        plan = SamplingPlan(method="m", workload_name="w", clusters=clusters)
        manual = sum(
            members * values[np.asarray(samples)].mean()
            for members, samples in cluster_specs
        )
        assert plan.estimate_total(values) == pytest.approx(manual)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip_preserves_estimates(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(n) + 0.01
        samples = rng.integers(0, n, size=min(5, n))
        plan = SamplingPlan(
            method="m",
            workload_name="w",
            clusters=[PlanCluster("c", n, samples.astype(np.int64))],
        )
        restored = SamplingPlan.from_json(plan.to_json())
        assert restored.estimate_total(values) == pytest.approx(
            plan.estimate_total(values)
        )


class TestSamplerProperties:
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_plan_always_covers_workload(self, epsilon, seed):
        from repro.hardware import RTX_2080, TimingModel
        from repro.workloads.generators.synthetic import multimodal_workload

        workload = multimodal_workload(n=300, seed=seed % 7)
        times = TimingModel(RTX_2080).execution_times(workload, seed=seed)
        plan = StemRootSampler(epsilon=epsilon).build_plan(workload, times, seed=seed)
        plan.validate(len(workload))
        # Predicted error never exceeds the requested bound.
        assert plan.metadata["predicted_error"] <= epsilon + 1e-9


class TestStemScaleInvariance:
    @given(
        st.lists(
            st.builds(
                ClusterStats,
                n=st.integers(min_value=1, max_value=10_000),
                mu=st.floats(min_value=0.1, max_value=100.0),
                sigma=st.floats(min_value=0.0, max_value=30.0),
            ),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.1, max_value=1000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_sizes_invariant_to_time_units(self, clusters, unit):
        """Rescaling all times (us -> ns, another GPU's clock) leaves the
        allocation unchanged — STEM depends only on CoV structure."""
        scaled = [
            ClusterStats(n=c.n, mu=c.mu * unit, sigma=c.sigma * unit)
            for c in clusters
        ]
        original = kkt_sample_sizes(clusters)
        rescaled = kkt_sample_sizes(scaled)
        # Allow an off-by-one per cluster from floating point at the
        # ceiling boundary; the allocation is otherwise unit-free.
        assert np.abs(original - rescaled).max() <= 1

    @given(
        st.lists(
            st.builds(
                ClusterStats,
                n=st.integers(min_value=1, max_value=10_000),
                mu=st.floats(min_value=0.1, max_value=100.0),
                sigma=st.floats(min_value=0.0, max_value=30.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_extra_samples_never_hurt_the_bound(self, clusters):
        sizes = kkt_sample_sizes(clusters)
        bigger = [int(m) + 5 for m in sizes]
        assert predicted_error_multi(clusters, bigger) <= predicted_error_multi(
            clusters, [int(m) for m in sizes]
        )


class TestClusteringProperties:
    @given(positive_times)
    @settings(max_examples=30, deadline=None)
    def test_kmeans_centers_within_data_range(self, times):
        result = kmeans_1d(times, 2, rng=np.random.default_rng(0))
        assert result.centers.min() >= times.min() - 1e-9
        assert result.centers.max() <= times.max() + 1e-9

    @given(positive_times)
    @settings(max_examples=30, deadline=None)
    def test_kde_peaks_at_least_one(self, times):
        assert count_kde_peaks(times) >= 1
