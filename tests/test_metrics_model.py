"""Tests for the 13-metric microarchitectural model (Figure 14 support)."""

import numpy as np
import pytest

from repro.profiling.metrics import (
    COUNT_METRICS,
    MICROARCH_METRICS,
    RATE_METRICS,
    MicroarchModel,
    aggregate_metrics,
)
from repro.workloads import WorkloadBuilder
from repro.workloads.generators.synthetic import make_kernel_spec


class TestMicroarchModel:
    def test_thirteen_metrics(self):
        assert len(MICROARCH_METRICS) == 13
        assert set(COUNT_METRICS) | set(RATE_METRICS) == set(MICROARCH_METRICS)

    def test_all_metrics_evaluated(self, mixed, gpu):
        values = MicroarchModel(gpu).evaluate(mixed, seed=0)
        assert set(values) == set(MICROARCH_METRICS)
        for arr in values.values():
            assert len(arr) == len(mixed)

    def test_rates_bounded(self, mixed, gpu):
        values = MicroarchModel(gpu).evaluate(mixed, seed=0)
        for name in RATE_METRICS:
            assert (values[name] >= 0).all()
            assert (values[name] <= 1.0).all()

    def test_counts_nonnegative(self, mixed, gpu):
        values = MicroarchModel(gpu).evaluate(mixed, seed=0)
        for name in COUNT_METRICS:
            assert (values[name] >= 0).all()

    def test_locality_improves_hit_rate(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k", working_set_mb=2.0)
        builder.launch(spec, locality=0.9)
        builder.launch(spec, locality=0.1)
        w = builder.build()
        values = MicroarchModel(gpu).evaluate(w, seed=0)
        assert values["l2_read_hit_rate"][0] > values["l2_read_hit_rate"][1]

    def test_counts_scale_with_work(self, gpu):
        builder = WorkloadBuilder(name="w")
        spec = make_kernel_spec("k")
        builder.launch(spec, work_scale=1.0)
        builder.launch(spec, work_scale=2.0)
        w = builder.build()
        values = MicroarchModel(gpu).evaluate(w, seed=0)
        assert values["fp32_ops"][1] == pytest.approx(2 * values["fp32_ops"][0])


class TestAggregateMetrics:
    def test_counts_sum_rates_average(self):
        per_invocation = {
            "fp32_ops": np.array([10.0, 30.0]),
            "branch_efficiency": np.array([0.5, 1.0]),
        }
        agg = aggregate_metrics(per_invocation)
        assert agg["fp32_ops"] == pytest.approx(40.0)
        assert agg["branch_efficiency"] == pytest.approx(0.75)

    def test_weighted_aggregation(self):
        per_invocation = {
            "fp32_ops": np.array([10.0, 30.0]),
            "branch_efficiency": np.array([0.5, 1.0]),
        }
        weights = np.array([3.0, 1.0])
        agg = aggregate_metrics(per_invocation, weights)
        assert agg["fp32_ops"] == pytest.approx(60.0)
        assert agg["branch_efficiency"] == pytest.approx((1.5 + 1.0) / 4)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics({"fp32_ops": np.ones(2)}, np.zeros(2))
