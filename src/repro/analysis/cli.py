"""Implementation of the ``repro analyze`` subcommand.

Same exit-code contract as ``repro lint``:

* ``0`` — clean (no non-baselined, non-suppressed findings);
* ``1`` — findings;
* ``2`` — internal/usage error (bad path, broken config, crash).
"""

from __future__ import annotations

import sys
from typing import Optional

from ..lint.baseline import write_baseline
from ..lint.changed import changed_python_files, under_config_roots
from ..lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from ..lint.config import LintUsageError, load_config
from ..lint.reporters import render_json, render_text
from .engine import run_analysis
from .passes import load_builtin_analysis_passes, registered_analysis_passes

__all__ = ["add_analyze_arguments", "run_analyze_command"]


def add_analyze_arguments(parser) -> None:
    """Attach ``repro analyze`` arguments to an argparse subparser."""
    parser.add_argument(
        "paths", nargs="*",
        help="report findings only for these files/directories (the "
             "program graph always covers the configured paths)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)")
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help="pyproject.toml to read [tool.repro.lint] from "
             "(default: nearest pyproject.toml above the cwd)")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="override the configured analysis baseline file")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the analysis baseline from the current findings "
             "and exit 0")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="run only this analysis rule (repeatable)")
    parser.add_argument(
        "--changed", nargs="?", const="", default=None, metavar="REF",
        help="report findings only for files that differ from REF "
             "(default: the configured changed-ref, origin/main)")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to this path")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered analysis rules and exit")


def _list_rules() -> int:
    load_builtin_analysis_passes()
    for rule, cls in sorted(registered_analysis_passes().items()):
        print(f"{rule:26s} [{cls.severity}] {cls.description}")
    return EXIT_CLEAN


def run_analyze_command(args) -> int:
    """Entry point used by ``repro.cli``; returns the process exit code."""
    try:
        return _run(args)
    except LintUsageError as err:
        print(f"repro analyze: error: {err}", file=sys.stderr)
        return EXIT_ERROR
    except Exception as err:  # internal error contract: never a traceback
        print(
            f"repro analyze: internal error: {type(err).__name__}: {err}",
            file=sys.stderr,
        )
        return EXIT_ERROR


def _run(args) -> int:
    if args.list_rules:
        return _list_rules()
    config = load_config(args.config)
    if args.baseline:
        config.analysis_baseline = args.baseline
    rules: Optional[list] = args.rule

    report_only = None
    if args.changed is not None:
        ref = args.changed or config.changed_ref
        report_only = under_config_roots(
            config, changed_python_files(config.root, ref)
        )
        if not report_only and not args.paths:
            print(
                f"repro analyze: no .py files changed against {ref}",
                file=sys.stderr,
            )
            return EXIT_CLEAN

    result = run_analysis(
        config,
        paths=args.paths or None,
        use_baseline=not (args.no_baseline or args.update_baseline),
        rules=rules,
        report_only=report_only,
    )

    if args.update_baseline:
        count = write_baseline(
            result.findings,
            config.analysis_baseline_path(),
            linted_paths=(
                result.linted_paths
                if (args.paths or report_only is not None)
                else None
            ),
        )
        print(
            f"analysis baseline updated: {count} finding(s) written to "
            f"{config.analysis_baseline_path()}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    report = render_json(result) if args.format == "json" else render_text(result)
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_json(result))
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS
