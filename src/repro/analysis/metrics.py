"""Aggregation conventions for speedup and error (paper Sec. 5).

The paper follows Eeckhout's guidance: *harmonic* mean for speedups,
*arithmetic* mean for errors, and every randomized experiment is repeated
(10x by default) and averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["harmonic_mean", "MethodAggregate", "aggregate_results"]


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; infinite entries contribute zero reciprocal."""
    vals = np.asarray(list(values), dtype=np.float64)
    if len(vals) == 0:
        raise ValueError("harmonic mean of an empty sequence")
    if (vals <= 0).any():
        raise ValueError("harmonic mean requires positive values")
    reciprocals = np.where(np.isfinite(vals), 1.0 / vals, 0.0)
    denom = reciprocals.sum()
    if denom == 0:
        return float("inf")
    return float(len(vals) / denom)


@dataclass
class MethodAggregate:
    """Accumulates per-workload results of one method."""

    method: str
    errors: List[float] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)

    def add(self, error_percent: float, speedup: float) -> None:
        self.errors.append(error_percent)
        self.speedups.append(speedup)

    @property
    def mean_error(self) -> float:
        """Arithmetic mean of sampling errors (percent)."""
        if not self.errors:
            raise ValueError("no results recorded")
        return float(np.mean(self.errors))

    @property
    def mean_speedup(self) -> float:
        """Harmonic mean of speedups."""
        return harmonic_mean(self.speedups)

    def summary(self) -> Dict[str, float]:
        return {"error_percent": self.mean_error, "speedup": self.mean_speedup}


def aggregate_results(
    rows: Iterable[Dict[str, float]],
) -> Dict[str, MethodAggregate]:
    """Group flat result rows by method.

    Each row needs ``method``, ``error_percent`` and ``speedup`` keys —
    the shape the experiment runner produces.
    """
    aggregates: Dict[str, MethodAggregate] = {}
    for row in rows:
        method = str(row["method"])
        agg = aggregates.setdefault(method, MethodAggregate(method))
        agg.add(float(row["error_percent"]), float(row["speedup"]))
    return aggregates
