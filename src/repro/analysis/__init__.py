"""Result aggregation and reporting, plus the static-analysis tier.

Two families live here:

* **result analysis** — histograms, method aggregates, plain-text
  tables and distribution validation for experiment outputs;
* **program analysis** — the whole-program static tier behind ``repro
  analyze`` (:mod:`~repro.analysis.graph`, :mod:`~repro.analysis.engine`
  and the interprocedural passes) and the runtime determinism sanitizer
  (:mod:`~repro.analysis.detsan`).

The static modules are imported lazily by the CLI; importing this
package stays cheap for code that only wants ``render_table``.
"""

from .histogram import (
    KernelShape,
    TimeHistogram,
    classify_times,
    peak_ranges,
    render_histogram,
)
from .metrics import MethodAggregate, aggregate_results, harmonic_mean
from .plots import ScatterPoint, render_gantt, render_scatter
from .reporting import format_value, render_series, render_table
from .validation import DistributionMatch, validate_distribution, weighted_ks_statistic

__all__ = [
    "harmonic_mean",
    "MethodAggregate",
    "aggregate_results",
    "TimeHistogram",
    "KernelShape",
    "classify_times",
    "render_histogram",
    "peak_ranges",
    "format_value",
    "render_table",
    "render_series",
    "ScatterPoint",
    "render_scatter",
    "render_gantt",
    "DistributionMatch",
    "weighted_ks_statistic",
    "validate_distribution",
    # static-analysis tier (lazy: import the submodules directly)
    "build_graph",
    "run_analysis",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    if name in ("build_graph", "run_analysis"):
        from . import engine

        return getattr(engine, name)
    if name == "ProjectGraph":
        from .graph import ProjectGraph

        return ProjectGraph
    if name == "DeterminismSanitizer":
        from .detsan import DeterminismSanitizer

        return DeterminismSanitizer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
