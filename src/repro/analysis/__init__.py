"""Result aggregation, histograms, and plain-text reporting."""

from .histogram import (
    KernelShape,
    TimeHistogram,
    classify_times,
    peak_ranges,
    render_histogram,
)
from .metrics import MethodAggregate, aggregate_results, harmonic_mean
from .plots import ScatterPoint, render_gantt, render_scatter
from .reporting import format_value, render_series, render_table
from .validation import DistributionMatch, validate_distribution, weighted_ks_statistic

__all__ = [
    "harmonic_mean",
    "MethodAggregate",
    "aggregate_results",
    "TimeHistogram",
    "KernelShape",
    "classify_times",
    "render_histogram",
    "peak_ranges",
    "format_value",
    "render_table",
    "render_series",
    "ScatterPoint",
    "render_scatter",
    "render_gantt",
    "DistributionMatch",
    "weighted_ks_statistic",
    "validate_distribution",
]
