"""DetSan — the runtime determinism sanitizer.

The static tier (``repro analyze``) proves the *absence of known
nondeterminism patterns*; DetSan checks the property itself at runtime:
**every engine configuration must produce bit-identical intermediate
state at every sync point**.  Instrumented code records
``(sync-point key, payload)`` pairs at well-defined places — per-
invocation cycle arrays after :meth:`GpuSimulator.simulate_workload`,
per-cluster sample draws inside :meth:`StemRootSampler.build_plan`,
post-aggregation result rows in the experiment runner — and DetSan
keeps a **content-addressed assertion table**: the first record of a key
pins its digest; any later record of the same key with a *different*
digest is a divergence, reported with both hashes and both owning
scopes.

That one mechanism covers every pairing in one process:

* **cold vs warm cache** — the second (cache-served) call re-records
  the same keys; a broken cache key shows up as a digest mismatch;
* **scalar vs batch** — run the same workload under two
  :func:`scope` labels with different engine configs; same keys,
  compared automatically;
* **sequential vs parallel** — workers inherit ``REPRO_DETSAN`` and
  sanitize their own process; the parent compares what crosses the
  boundary (aggregated rows recorded parent-side on result receipt);
* **cycle vs analytical fidelity** — raw simulator records carry an
  engine-family tag (the two engines legitimately differ), while
  row-level records compare the *decision-visible* outputs.

Enablement: ``REPRO_DETSAN=1`` in the environment (inherited by pool
workers) or :func:`enable`.  Disabled, every hook is one early-returning
function call per *sync point* (not per invocation) — unmeasurable on
the paths it instruments.

Negative testing: ``REPRO_DETSAN_FAULT=<substring>`` deliberately
perturbs the digest of any re-recorded key containing the substring, so
CI can assert the sanitizer actually reports the faulted sync point.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, is_dataclass
from typing import Any, Dict, Iterator, List, Optional, Set

__all__ = [
    "DeterminismSanitizer",
    "Divergence",
    "disable",
    "enable",
    "get_sanitizer",
    "is_enabled",
    "record",
    "scope",
]

_ENABLE_ENV = "REPRO_DETSAN"
_FAULT_ENV = "REPRO_DETSAN_FAULT"


def _canonical_update(h, value: Any) -> None:
    """Feed ``value`` into the hash in a type-tagged canonical form."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        h.update(b"I" + repr(value).encode())
    elif isinstance(value, float):
        # repr round-trips doubles exactly; bit-identity is the contract.
        # Coerced first: np.float64 is a float subclass but reprs as
        # "np.float64(…)", and a worker-side np.float64 must hash like
        # the parent-side plain float it compares against.
        h.update(b"F" + repr(float(value)).encode())
    elif isinstance(value, str):
        h.update(b"S" + value.encode("utf-8"))
    elif isinstance(value, bytes):
        h.update(b"Y" + value)
    elif isinstance(value, (list, tuple)):
        h.update(b"L" + repr(len(value)).encode())
        for item in value:
            _canonical_update(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + repr(len(value)).encode())
        for key in sorted(value, key=repr):
            _canonical_update(h, key)
            _canonical_update(h, value[key])
    elif is_dataclass(value) and not isinstance(value, type):
        import dataclasses

        h.update(b"C" + type(value).__name__.encode())
        _canonical_update(h, dataclasses.asdict(value))
    elif hasattr(value, "dtype") and hasattr(value, "tobytes"):
        # numpy array (duck-typed so this module never imports numpy)
        h.update(b"A" + str(value.dtype).encode())
        h.update(repr(tuple(getattr(value, "shape", ()))).encode())
        import numpy as np

        h.update(np.ascontiguousarray(value).tobytes())
    else:
        # Deterministic reprs only (dataclass-free objects land here);
        # an address-bearing default repr would self-diverge, which is a
        # loud failure, not a silent pass.
        h.update(b"R" + repr(value).encode())


def digest_of(payload: Any) -> str:
    h = hashlib.sha256()
    _canonical_update(h, payload)
    return h.hexdigest()


@dataclass(frozen=True)
class Divergence:
    """One sync point where two recordings disagreed."""

    key: str
    first_scope: str
    first_digest: str
    scope: str
    digest: str

    def describe(self) -> str:
        return (
            f"sync point {self.key!r}: "
            f"[{self.first_scope}] {self.first_digest[:16]}… != "
            f"[{self.scope}] {self.digest[:16]}…"
        )


@dataclass
class _Entry:
    digest: str
    scope: str
    scopes: Set[str]


class DeterminismSanitizer:
    """Content-addressed assertion table over sync-point recordings."""

    def __init__(self, fault: str = ""):
        self._lock = threading.Lock()
        self._table: Dict[str, _Entry] = {}
        self._divergences: List[Divergence] = []
        self._diverged_keys: Set[str] = set()
        self._scope = "main"
        self._fault = fault
        self.records = 0

    # -- recording ---------------------------------------------------------
    def record(self, key: str, payload: Any) -> None:
        digest = digest_of(payload)
        with self._lock:
            self.records += 1
            entry = self._table.get(key)
            if entry is None:
                self._table[key] = _Entry(
                    digest=digest, scope=self._scope, scopes={self._scope}
                )
                return
            if self._fault and self._fault in key:
                # Deliberate fault injection (negative tests): perturb
                # every re-recording of a matching key.
                digest = hashlib.sha256(
                    (digest + "|detsan-fault").encode()
                ).hexdigest()
            entry.scopes.add(self._scope)
            if digest != entry.digest and key not in self._diverged_keys:
                self._diverged_keys.add(key)
                self._divergences.append(
                    Divergence(
                        key=key,
                        first_scope=entry.scope,
                        first_digest=entry.digest,
                        scope=self._scope,
                        digest=digest,
                    )
                )

    @contextmanager
    def scoped(self, label: str) -> Iterator[None]:
        """Label subsequent recordings with the owning configuration."""
        previous = self._scope
        self._scope = label
        try:
            yield
        finally:
            self._scope = previous

    # -- inspection --------------------------------------------------------
    @property
    def divergences(self) -> List[Divergence]:
        return list(self._divergences)

    def coverage(self) -> Dict[str, int]:
        """How much the run actually cross-checked."""
        multi = sum(1 for e in self._table.values() if len(e.scopes) > 1)
        return {
            "keys": len(self._table),
            "records": self.records,
            "cross_checked_keys": multi,
            "divergences": len(self._divergences),
        }

    def report(self) -> str:
        """Human report: first divergent sync point, or the coverage."""
        cov = self.coverage()
        lines = [
            "detsan: {keys} sync point(s), {records} recording(s), "
            "{cross_checked_keys} cross-checked, {divergences} "
            "divergence(s)".format(**cov)
        ]
        for div in self._divergences:
            lines.append("detsan: DIVERGENCE " + div.describe())
        if not self._divergences:
            lines.append("detsan: all cross-checked sync points bit-identical")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        with self._lock:
            self._table.clear()
            self._divergences.clear()
            self._diverged_keys.clear()
            self.records = 0


# -- module-level singleton (what the instrumentation hooks use) -----------

_active: Optional[DeterminismSanitizer] = None
if os.environ.get(_ENABLE_ENV, "") not in ("", "0"):
    _active = DeterminismSanitizer(fault=os.environ.get(_FAULT_ENV, ""))


def is_enabled() -> bool:
    return _active is not None


def get_sanitizer() -> Optional[DeterminismSanitizer]:
    return _active


def enable(fault: Optional[str] = None) -> DeterminismSanitizer:
    """Turn the sanitizer on (fresh table); returns the instance."""
    global _active
    _active = DeterminismSanitizer(
        fault=os.environ.get(_FAULT_ENV, "") if fault is None else fault
    )
    return _active


def disable() -> None:
    global _active
    _active = None


def record(key: str, payload: Any) -> None:
    """Record one sync point; no-op (one test) when disabled."""
    if _active is not None:
        _active.record(key, payload)


@contextmanager
def scope(label: str) -> Iterator[None]:
    """Label recordings with the owning engine configuration."""
    if _active is None:
        yield
        return
    with _active.scoped(label):
        yield


def index_digest(indices) -> str:
    """Short stable digest of an index list, for sync-point keys."""
    h = hashlib.sha256()
    for i in indices:
        h.update(repr(int(i)).encode())
        h.update(b",")
    return h.hexdigest()[:12]
