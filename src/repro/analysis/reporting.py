"""Plain-text rendering of tables and figure series.

Every benchmark target prints its table/figure in the same layout the
paper uses, so paper-vs-measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: object, precision: int = 2) -> str:
    """Human formatting: floats get fixed precision, large floats get commas."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "N/A"
        if abs(value) >= 10_000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Fixed-width ASCII table."""
    text_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: Dict[str, Dict[object, float]],
    title: str = "",
    precision: int = 2,
    x_order: Optional[Sequence[object]] = None,
) -> str:
    """Render multiple named series over a shared x-axis as a table.

    ``series`` maps series name to ``{x: y}``; handy for figure targets
    like the epsilon sweep or per-workload bar charts.
    """
    if x_order is None:
        keys: List[object] = []
        for points in series.values():
            for x in points:
                if x not in keys:
                    keys.append(x)
    else:
        keys = list(x_order)
    headers = [x_label] + list(series)
    rows = []
    for x in keys:
        row: List[object] = [x]
        for name in series:
            row.append(series[name].get(x, float("nan")))
        rows.append(row)
    return render_table(headers, rows, title=title, precision=precision)
