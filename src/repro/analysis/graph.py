"""Whole-program graph over the parsed source tree.

The syntactic lint tier (:mod:`repro.lint`) sees one file at a time; the
analysis tier needs to answer questions that span call chains — "does
this pool worker transitively write a module global?", "can this seed
reach ``default_rng`` through a helper?", "which fields of this keyed
dataclass can influence its outputs?".  :class:`ProjectGraph` is the
shared substrate those passes walk:

* **module naming** — every parsed file gets a dotted module name
  derived from its project-relative path (``src/repro/sim/batch.py`` →
  ``repro.sim.batch``), so imports can be resolved to project files;
* **binding tables** — per-module name bindings from ``import`` /
  ``from … import`` statements *including relative imports* (the lint
  tier's :class:`~repro.lint.names.ImportMap` deliberately skips those);
* **function table** — every module-level function and every method,
  keyed ``module:qualpath`` (e.g. ``repro.core.fidelity:FidelityPolicy.
  memo_identity``);
* **call graph** — best-effort resolved callee edges per function:
  local names, imported names (chasing one re-export hop per lookup,
  e.g. ``repro.parallel.run_tasks`` → ``repro.parallel.executor:
  run_tasks``), ``self.method()`` within a class, and ``param.method()``
  where the parameter is annotated with a project class;
* **class table** — fields per class: dataclass ``AnnAssign`` fields
  for ``@dataclass`` types, ``self.x = …`` assignments in ``__init__``
  for plain classes.

Resolution is sound-for-lint, not a type checker: anything that cannot
be resolved statically stays an ``external:`` edge and is never matched
against effect or taint rules.  That bias (unresolved ⇒ assumed benign)
keeps the passes quiet on dynamic code while still catching the
concrete, name-resolvable mistakes the repo's invariants care about.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lint.engine import SourceModule

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectGraph",
    "module_name_for",
]

#: Leading path segments stripped before deriving dotted module names.
_SOURCE_PREFIXES = ("src/",)


def module_name_for(rel: str) -> str:
    """Dotted module name for a project-relative POSIX path.

    ``src/repro/sim/batch.py`` → ``repro.sim.batch``;
    ``pkg/__init__.py`` → ``pkg``.  Files outside a recognized source
    prefix use their path verbatim (fixture projects lint with
    ``paths = ["."]`` and get ``chain`` for ``chain.py``).
    """
    name = rel
    for prefix in _SOURCE_PREFIXES:
        if name.startswith(prefix):
            name = name[len(prefix):]
            break
    if name.endswith(".py"):
        name = name[: -len(".py")]
    parts = [p for p in name.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Resolved target: ``module:qualpath`` for a project function,
    #: ``external:<dotted>`` for an import-resolved non-project callee,
    #: ``None`` for calls rooted in locals/attributes we cannot resolve.
    target: Optional[str]
    #: The raw dotted callee text (``helper.fn``), when it had one.
    dotted: Optional[str]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    key: str  # "module:qualpath"
    module: SourceModule
    module_name: str
    qualpath: str  # "fn" or "Cls.fn"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualpath.rsplit(".", 1)[-1]

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] if hasattr(args, "posonlyargs") else []
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        return names

    def param_annotations(self) -> Dict[str, str]:
        """Parameter name -> bare annotation class name (last segment)."""
        table: Dict[str, str] = {}
        args = self.node.args
        every = list(getattr(args, "posonlyargs", [])) + list(args.args) + list(
            args.kwonlyargs
        )
        for arg in every:
            ann = _annotation_class(arg.annotation)
            if ann is not None:
                table[arg.arg] = ann
        return table


@dataclass
class ClassInfo:
    """One class definition and its (best-effort) field set."""

    key: str  # "module:ClassName"
    module: SourceModule
    module_name: str
    name: str
    node: ast.ClassDef
    is_dataclass: bool
    #: Field name -> declaring AST node (AnnAssign for dataclasses,
    #: the ``self.x = …`` Assign/AnnAssign for plain classes).
    fields: Dict[str, ast.AST] = field(default_factory=dict)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def _annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
    """Bare class name of an annotation, through Optional[...] etc."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: take the last identifier-ish segment.
        text = annotation.value.strip().strip("'\"")
        tail = text.replace("Optional[", "").rstrip("]")
        return tail.rsplit(".", 1)[-1] or None
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / "Optional[X]" — look inside one level.
        return _annotation_class(
            annotation.slice if not isinstance(annotation.slice, ast.Tuple) else None
        )
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        dotted = _dotted(annotation)
        return dotted.rsplit(".", 1)[-1] if dotted else None
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _dotted(target)
        if name and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    fields: Dict[str, ast.AST] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = stmt.annotation
            ann_name = (
                _dotted(ann.value) if isinstance(ann, ast.Subscript) else _dotted(ann)
            )
            if ann_name and ann_name.rsplit(".", 1)[-1] == "ClassVar":
                continue
            fields[stmt.target.id] = stmt
    return fields


def _init_fields(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    """``self.x = …`` targets inside ``__init__`` of a plain class.

    Leading-underscore attributes are derived/private state, not fields
    in the cache-key sense (matches the lint tier's plain-class rule).
    """
    fields: Dict[str, ast.AST] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                        and target.attr not in fields
                    ):
                        fields[target.attr] = node
    return fields


class ProjectGraph:
    """Functions, classes, bindings and call edges over parsed modules."""

    def __init__(self, modules: Sequence[SourceModule]):
        self.modules: List[SourceModule] = list(modules)
        #: dotted module name -> SourceModule
        self.by_module_name: Dict[str, SourceModule] = {}
        #: "module:qualpath" -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: "module:ClassName" -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: bare class name -> [ClassInfo] (cross-module lookup)
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: per-module import binding: module name -> {local: absolute dotted}
        self.bindings: Dict[str, Dict[str, str]] = {}
        #: per-module names assigned at module level (shared mutable state
        #: candidates): module name -> {name: assigning AST node}
        self.module_globals: Dict[str, Dict[str, ast.AST]] = {}

        for module in self.modules:
            self._index_module(module)
        for info in self.functions.values():
            self._collect_calls(info)

    # -- indexing ----------------------------------------------------------
    def _index_module(self, module: SourceModule) -> None:
        mod_name = module_name_for(module.rel)
        self.by_module_name[mod_name] = module
        self.bindings[mod_name] = self._module_bindings(module, mod_name)
        self.module_globals[mod_name] = self._collect_module_globals(module)

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, mod_name, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, mod_name, stmt)

    def _add_function(
        self,
        module: SourceModule,
        mod_name: str,
        node: ast.AST,
        class_name: Optional[str],
    ) -> FunctionInfo:
        qualpath = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            key=f"{mod_name}:{qualpath}",
            module=module,
            module_name=mod_name,
            qualpath=qualpath,
            node=node,
            class_name=class_name,
        )
        self.functions[info.key] = info
        return info

    def _add_class(
        self, module: SourceModule, mod_name: str, node: ast.ClassDef
    ) -> None:
        is_dc = _is_dataclass(node)
        info = ClassInfo(
            key=f"{mod_name}:{node.name}",
            module=module,
            module_name=mod_name,
            name=node.name,
            node=node,
            is_dataclass=is_dc,
            fields=_dataclass_fields(node) if is_dc else _init_fields(node),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(module, mod_name, stmt, class_name=node.name)
                info.methods[stmt.name] = fn
        self.classes[info.key] = info
        self.classes_by_name.setdefault(node.name, []).append(info)

    @staticmethod
    def _module_bindings(module: SourceModule, mod_name: str) -> Dict[str, str]:
        """Import bindings including relative imports, resolved absolute."""
        bindings: Dict[str, str] = {}
        package_parts = mod_name.split(".")
        is_package = module.rel.endswith("__init__.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # ``from .x import y`` in repro.parallel.grid:
                    # level 1 drops the module segment itself; for a
                    # package __init__, level 1 is the package.
                    drop = node.level - (1 if is_package else 0)
                    if drop > len(package_parts):
                        continue
                    base_parts = package_parts[: len(package_parts) - drop]
                    base = ".".join(base_parts)
                    target = f"{base}.{node.module}" if node.module else base
                else:
                    target = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{target}.{alias.name}" if target else alias.name
        return bindings

    @staticmethod
    def _collect_module_globals(module: SourceModule) -> Dict[str, ast.AST]:
        table: Dict[str, ast.AST] = {}
        for stmt in module.tree.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    table.setdefault(target.id, stmt)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            table.setdefault(elt.id, stmt)
        return table

    # -- resolution --------------------------------------------------------
    def resolve_dotted(
        self, mod_name: str, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve a dotted name used in ``mod_name`` to a function key.

        Returns ``module:qualpath`` for a project function,
        ``external:<absolute>`` for an import that leaves the project,
        ``None`` when the root is not a recognizable binding.
        """
        if _depth > 8:  # re-export cycles
            return None
        first, _, rest = dotted.partition(".")
        local_fn = f"{mod_name}:{dotted}"
        if local_fn in self.functions:
            return local_fn
        bindings = self.bindings.get(mod_name, {})
        target = bindings.get(first)
        if target is None:
            return None
        absolute = f"{target}.{rest}" if rest else target
        return self.resolve_absolute(absolute, _depth=_depth + 1)

    def resolve_absolute(self, absolute: str, _depth: int = 0) -> Optional[str]:
        """Absolute dotted path -> function key (chasing re-exports)."""
        if _depth > 8:
            return f"external:{absolute}"
        # repro.parallel.executor.run_tasks -> repro.parallel.executor:run_tasks
        module_path, _, attr = absolute.rpartition(".")
        if not attr:
            return f"external:{absolute}"
        if module_path in self.by_module_name:
            key = f"{module_path}:{attr}"
            if key in self.functions:
                return key
            if f"{module_path}:{attr}" in self.classes:
                return None  # a class constructor call, not a function edge
            # Re-export: the package __init__ imported the name from a
            # submodule — chase that binding one hop.
            reexport = self.bindings.get(module_path, {}).get(attr)
            if reexport is not None:
                return self.resolve_absolute(reexport, _depth=_depth + 1)
            return None
        # Maybe absolute names a method: repro.sim.batch.BatchPolicy.memo_identity
        outer, _, method = module_path.rpartition(".")
        if outer in self.by_module_name:
            key = f"{outer}:{attr}"  # unlikely; keep simple
            if key in self.functions:
                return key
        return f"external:{absolute}"

    def _collect_calls(self, info: FunctionInfo) -> None:
        annotations = info.param_annotations()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            target: Optional[str] = None
            if dotted is not None:
                first, _, rest = dotted.partition(".")
                if first == "self" and info.class_name is not None and rest:
                    method = rest.split(".", 1)[0]
                    candidate = f"{info.module_name}:{info.class_name}.{method}"
                    if candidate in self.functions:
                        target = candidate
                elif rest and first in annotations:
                    # param.method() with an annotated project class
                    method = rest.split(".", 1)[0]
                    target = self._resolve_method(annotations[first], method)
                else:
                    target = self.resolve_dotted(info.module_name, dotted)
            info.calls.append(CallSite(node=node, target=target, dotted=dotted))

    def _resolve_method(self, class_name: str, method: str) -> Optional[str]:
        for cls in self.classes_by_name.get(class_name, []):
            fn = cls.methods.get(method)
            if fn is not None:
                return fn.key
        return None

    # -- queries used by passes -------------------------------------------
    def function_for_name(
        self, mod_name: str, name: str
    ) -> Optional[FunctionInfo]:
        """A bare name referenced in ``mod_name`` resolved to a function."""
        key = self.resolve_dotted(mod_name, name)
        if key is None or key.startswith("external:"):
            return None
        return self.functions.get(key)

    def callees(self, key: str) -> Set[str]:
        info = self.functions.get(key)
        if info is None:
            return set()
        return {
            c.target
            for c in info.calls
            if c.target is not None and not c.target.startswith("external:")
        }

    def transitive_closure(self, roots: Sequence[str]) -> Set[str]:
        """All project functions reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(k for k in self.callees(key) if k not in seen)
        return seen

    def resolved_external(self, info: FunctionInfo) -> List[Tuple[ast.Call, str]]:
        """(call node, absolute dotted) for import-resolved external calls."""
        out: List[Tuple[ast.Call, str]] = []
        for site in info.calls:
            if site.target is not None and site.target.startswith("external:"):
                out.append((site.node, site.target[len("external:"):]))
        return out
