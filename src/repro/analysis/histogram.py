"""Execution-time histogram utilities (Figures 1, 2 and 10).

Supports the paper's qualitative kernel taxonomy: *narrow* (stable),
*wide* (memory-bound jitter), and *multi-peak* (multiple runtime
contexts), plus plain-text rendering used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.clustering import count_kde_peaks

__all__ = ["TimeHistogram", "KernelShape", "classify_times", "render_histogram"]


@dataclass(frozen=True)
class KernelShape:
    """Qualitative shape of one kernel's execution-time distribution."""

    num_peaks: int
    cov: float
    #: One of "narrow", "wide", "multi-peak", "multi-peak+wide".
    label: str


@dataclass
class TimeHistogram:
    """A binned execution-time distribution."""

    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_times(cls, times: np.ndarray, bins: int = 40) -> "TimeHistogram":
        t = np.asarray(times, dtype=np.float64)
        if len(t) == 0:
            raise ValueError("cannot histogram an empty sample")
        counts, edges = np.histogram(t, bins=bins)
        return cls(edges=edges, counts=counts)

    @property
    def num_bins(self) -> int:
        return len(self.counts)

    def mode_bin(self) -> int:
        return int(self.counts.argmax())

    def normalized(self) -> np.ndarray:
        total = self.counts.sum()
        if total == 0:
            return self.counts.astype(np.float64)
        return self.counts / total


def classify_times(
    times: np.ndarray,
    wide_cov: float = 0.25,
    bins: int = 40,
) -> KernelShape:
    """Classify a kernel's time distribution per the Figure 2 taxonomy.

    A distribution is *multi-peak* when the KDE shows more than one mode,
    and *wide* when the CoV exceeds ``wide_cov`` — the two dimensions the
    paper's Figure 2 spans.  Both can hold at once.
    """
    t = np.asarray(times, dtype=np.float64)
    if len(t) == 0:
        raise ValueError("cannot classify an empty sample")
    mean = t.mean()
    cov = t.std() / mean if mean > 0 else 0.0
    peaks = count_kde_peaks(t)
    if peaks > 1:
        # Within-peak width decides whether it is also wide: compare the
        # pooled CoV after removing between-peak variance via quantile
        # splits at peak count.
        label = "multi-peak+wide" if cov > 2 * wide_cov else "multi-peak"
    elif cov > wide_cov:
        label = "wide"
    else:
        label = "narrow"
    return KernelShape(num_peaks=peaks, cov=cov, label=label)


def render_histogram(
    times: np.ndarray,
    bins: int = 40,
    width: int = 50,
    title: str = "",
) -> str:
    """ASCII-art histogram, one bin per line.

    Used by the Figure 1/10 benchmark targets to show distribution shapes
    directly in terminal output.
    """
    hist = TimeHistogram.from_times(times, bins=bins)
    peak = hist.counts.max() if hist.num_bins else 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for i in range(hist.num_bins):
        bar = "#" * int(round(hist.counts[i] / max(peak, 1) * width))
        lo, hi = hist.edges[i], hist.edges[i + 1]
        lines.append(f"{lo:10.2f}-{hi:10.2f} us |{bar:<{width}}| {hist.counts[i]}")
    return "\n".join(lines)


def peak_ranges(times: np.ndarray, labels: np.ndarray) -> List[Tuple[float, float]]:
    """(min, max) time range of each cluster label, sorted by position."""
    t = np.asarray(times, dtype=np.float64)
    out: List[Tuple[float, float]] = []
    for lab in np.unique(labels):
        members = t[labels == lab]
        if len(members):
            out.append((float(members.min()), float(members.max())))
    return sorted(out)


__all__.append("peak_ranges")
