"""Plain-text plotting: scatter charts and resource timelines.

The benchmark harness runs in terminals, so figure-class outputs are
rendered as ASCII: a log-log-capable scatter plot for the Figure 9-style
speedup/error tradeoff and a Gantt chart for multi-GPU timelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ScatterPoint", "render_scatter", "render_gantt"]


@dataclass(frozen=True)
class ScatterPoint:
    """One labeled point of a scatter chart."""

    x: float
    y: float
    series: str


_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scaled values must be positive")
        return math.log10(value)
    return value


def render_scatter(
    points: Sequence[ScatterPoint],
    width: int = 64,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """ASCII scatter plot with one marker per series."""
    if not points:
        raise ValueError("no points to plot")
    xs = [_transform(p.x, log_x) for p in points]
    ys = [_transform(p.y, log_y) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    series_names: List[str] = []
    for p in points:
        if p.series not in series_names:
            series_names.append(p.series)
    markers = {name: _MARKERS[i % len(_MARKERS)] for i, name in enumerate(series_names)}

    grid = [[" "] * width for _ in range(height)]
    for p, x, y in zip(points, xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = markers[p.series]

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    axis = f"{x_label}: [{min(p.x for p in points):g}, {max(p.x for p in points):g}]"
    axis += "  " + f"{y_label}: [{min(p.y for p in points):g}, {max(p.y for p in points):g}]"
    if log_x or log_y:
        axis += "  (log scale: " + "/".join(
            label for label, flag in (("x", log_x), ("y", log_y)) if flag
        ) + ")"
    lines.append(axis)
    legend = "  ".join(f"{markers[name]}={name}" for name in series_names)
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_gantt(
    intervals: Dict[str, List[Tuple[float, float]]],
    width: int = 72,
    title: str = "",
    end_time: Optional[float] = None,
) -> str:
    """ASCII Gantt chart: one row per resource, '#' where busy.

    ``intervals`` maps resource name to (start, finish) pairs; overlap
    within a row is drawn once.  Used to visualize multi-GPU timelines.
    """
    if not intervals:
        raise ValueError("no intervals to plot")
    horizon = end_time or max(
        (finish for spans in intervals.values() for _, finish in spans), default=0.0
    )
    if horizon <= 0:
        raise ValueError("timeline horizon must be positive")
    lines: List[str] = []
    if title:
        lines.append(title)
    name_width = max(len(name) for name in intervals)
    for name in sorted(intervals):
        row = [" "] * width
        for start, finish in intervals[name]:
            lo = int(max(0.0, start) / horizon * (width - 1))
            hi = int(min(horizon, finish) / horizon * (width - 1))
            for col in range(lo, hi + 1):
                row[col] = "#"
        lines.append(f"{name:>{name_width}} |{''.join(row)}|")
    lines.append(f"{'':>{name_width}} 0{'':>{width - 8}}{horizon:>7.0f}")
    return "\n".join(lines)
