"""The ``repro detsan`` cross-engine smoke.

Runs one small workload through every engine pairing the repo promises
is bit-identical, with the determinism sanitizer on, in one process:

* **scalar vs batch** — the same invocations through
  ``BatchPolicy(enabled=False)`` and an eagerly-batching policy;
* **cold vs warm** — a :class:`~repro.memo.SimResultCache` populated
  then re-read, both by the same simulator and by a fresh one opening
  the same directory (the cross-run path);
* **sequential vs parallel** — the same experiment grid at ``jobs=1``
  and ``jobs=2``, compared on the aggregated rows the parent receives.

Every pairing funnels through the same sync-point keys (see
:mod:`repro.analysis.detsan`), so a divergence report names the first
sync point where two configurations disagreed, with both digests and
both owning scopes.  Exit status: 0 when every cross-checked sync point
was bit-identical, 1 on divergence (or when nothing was cross-checked,
which means the instrumentation is broken), 2 on usage errors.

``--fault SUBSTR`` (or ``REPRO_DETSAN_FAULT``) deliberately perturbs
re-recordings of matching keys — CI runs the smoke once clean and once
faulted to prove the sanitizer actually fires.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from . import detsan

__all__ = ["add_detsan_arguments", "run_detsan_command"]


def add_detsan_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", default="rodinia",
                        help="workload suite (default rodinia)")
    parser.add_argument("--workload", default="bfs",
                        help="workload name (default bfs)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload size scale factor (default 0.05)")
    parser.add_argument("--gpu", default="rtx2080",
                        help="GPU preset (default rtx2080)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=0.05,
                        help="STEM error bound for the grid phase")
    parser.add_argument("--repetitions", type=int, default=2,
                        help="grid repetitions (default 2)")
    parser.add_argument("--methods", default="random,stem",
                        help="comma-separated methods for the grid phase "
                             "(default random,stem)")
    parser.add_argument("--skip-grid", action="store_true",
                        help="skip the sequential-vs-parallel grid phase "
                             "(engine pairings only)")
    parser.add_argument("--fault", metavar="SUBSTR", default=None,
                        help="perturb re-recordings of sync-point keys "
                             "containing SUBSTR (negative testing; "
                             "default $REPRO_DETSAN_FAULT)")


def _engine_phase(args) -> None:
    """Scalar vs batch, then cold vs warm, on raw simulator output."""
    from ..hardware import get_preset
    from ..memo import SimResultCache
    from ..sim import BatchPolicy, GpuSimulator
    from ..workloads import load_workload

    gpu = get_preset(args.gpu)
    workload = load_workload(
        args.suite, args.workload, scale=args.scale, seed=args.seed
    )

    with detsan.scope("engine=scalar"):
        GpuSimulator(gpu, batch_policy=BatchPolicy(enabled=False)).simulate_workload(
            workload, seed=args.seed
        )
    with detsan.scope("engine=batch"):
        GpuSimulator(gpu, batch_policy=BatchPolicy(min_width=2)).simulate_workload(
            workload, seed=args.seed
        )

    with tempfile.TemporaryDirectory(prefix="detsan-simcache-") as tmp:
        cached = GpuSimulator(gpu, sim_cache=SimResultCache(tmp))
        with detsan.scope("cache=cold"):
            cached.simulate_workload(workload, seed=args.seed)
        with detsan.scope("cache=warm"):
            cached.simulate_workload(workload, seed=args.seed)
        # A fresh simulator on the same directory exercises the
        # cross-run path: nothing in memory, everything from disk.
        with detsan.scope("cache=warm-fresh"):
            GpuSimulator(gpu, sim_cache=SimResultCache(tmp)).simulate_workload(
                workload, seed=args.seed
            )


def _grid_phase(args) -> None:
    """The same experiment grid at jobs=1 and jobs=2."""
    from ..experiments.runner import ExperimentConfig, run_suite
    from ..hardware import get_preset

    config = ExperimentConfig(
        gpu=get_preset(args.gpu),
        repetitions=args.repetitions,
        base_seed=args.seed,
        epsilon=args.epsilon,
        workload_scale=args.scale,
    )
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    with detsan.scope("grid=sequential"):
        run_suite(
            args.suite,
            config=config,
            methods=methods,
            workload_names=[args.workload],
            jobs=1,
        )
    # Workers run in their own processes; what crosses back — the
    # aggregated rows — is recorded parent-side under the same keys the
    # sequential runner used, so the comparison happens here.
    with detsan.scope("grid=jobs2"):
        run_suite(
            args.suite,
            config=config,
            methods=methods,
            workload_names=[args.workload],
            jobs=2,
        )


def run_detsan_command(args) -> int:
    fault = args.fault
    if fault is None:
        fault = os.environ.get("REPRO_DETSAN_FAULT", "")
    sanitizer = detsan.enable(fault=fault)
    try:
        _engine_phase(args)
        if not args.skip_grid:
            _grid_phase(args)

        coverage = sanitizer.coverage()
        print(sanitizer.report(), end="")
        if coverage["cross_checked_keys"] == 0:
            print(
                "detsan: ERROR — no sync point was recorded by more than "
                "one configuration; the instrumentation is not firing",
                file=sys.stderr,
            )
            return 1
        return 1 if sanitizer.divergences else 0
    except Exception as err:  # pragma: no cover - defensive
        print(f"repro detsan: internal error: {err}", file=sys.stderr)
        return 2
    finally:
        # The smoke owns its sanitizer end to end; leave the process
        # clean so main() doesn't re-report.
        detsan.disable()
