"""Interprocedural effect inference over the project graph.

Computes, per function, the *direct* effects that matter for pool
purity — writes to module-level globals and calls into banned
ambient-nondeterminism APIs — and propagates them over the call graph to
a transitive summary: a function is impure iff it, or anything it can
reach through project-internal calls, has a direct effect.

Soundness bias matches :mod:`repro.analysis.graph`: an *unresolvable*
callee contributes nothing (dynamic dispatch is assumed benign), while a
*resolved* project callee contributes everything it can reach.  Modules
in the effect exemption set (by default :mod:`repro.obs` — worker-local
observability that the parallel executor merges deterministically)
contribute no effects at all.

Also home to the pool-dispatch discovery shared by the purity and
seed-flow passes: every call site whose callee name is ``run_tasks`` /
``supervise_tasks``, with its worker argument expression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .graph import FunctionInfo, ProjectGraph

__all__ = [
    "DirectEffects",
    "Effect",
    "PoolDispatch",
    "DEFAULT_EFFECT_EXEMPT_MODULES",
    "MUTATING_METHODS",
    "banned_call_reason",
    "compute_direct_effects",
    "find_pool_dispatches",
    "local_names",
    "propagate_effects",
    "shortest_chain",
]

#: Modules whose effects are exempt from purity: process-local
#: observability that workers ship back and the parent merges in a
#: canonical order (see ``repro.parallel.executor``), plus the runtime
#: determinism sanitizer itself.
DEFAULT_EFFECT_EXEMPT_MODULES = ("repro.obs", "repro.analysis.detsan")

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "extend",
    "insert", "remove", "discard", "clear", "sort", "reverse",
    "__setitem__", "__delitem__", "write",
}

#: Ambient wall-clock / OS-entropy reads (mirrors the ``wall-clock``
#: lint rule's ban list — one invariant, two tiers).
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: numpy.random entry points that are explicit, seedable constructions
#: (mirrors the ``global-rng`` lint rule's allowlist).
_ALLOWED_NUMPY_RANDOM = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}


def banned_call_reason(absolute: str) -> Optional[str]:
    """Why an absolute dotted callee is banned in a pure context."""
    if absolute in _WALLCLOCK:
        return f"reads ambient wall-clock/OS state via {absolute}()"
    if absolute == "random" or absolute.startswith("random."):
        return f"uses the module-state stdlib RNG via {absolute}()"
    if (
        absolute.startswith("numpy.random.")
        and absolute not in _ALLOWED_NUMPY_RANDOM
    ):
        return f"uses the numpy module-state RNG via {absolute}()"
    return None


@dataclass(frozen=True)
class Effect:
    """One direct impurity, anchored at its source location."""

    kind: str  # "global-write" | "banned-call"
    function: str  # key of the function containing the effect
    detail: str  # human sentence fragment
    path: str  # module rel path of the effect site
    line: int
    col: int


@dataclass
class DirectEffects:
    """Direct (non-transitive) effects of one function."""

    effects: List[Effect] = field(default_factory=list)


def local_names(fn_node: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params, assigns, loops…)."""
    names: Set[str] = set()
    args = fn_node.args
    for group in (
        getattr(args, "posonlyargs", []), args.args, args.kwonlyargs,
    ):
        names.update(a.arg for a in group)
    for special in (args.vararg, args.kwarg):
        if special is not None:
            names.add(special.arg)

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind(node.target)
        elif isinstance(node, ast.For):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                names.add(node.name)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                bind(gen.target)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn_node:
            names.add(node.name)
    return names


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def compute_direct_effects(
    graph: ProjectGraph,
    exempt_modules: Sequence[str] = DEFAULT_EFFECT_EXEMPT_MODULES,
) -> Dict[str, DirectEffects]:
    """Direct effects of every project function."""
    exempt = tuple(exempt_modules)
    out: Dict[str, DirectEffects] = {}
    for key, info in graph.functions.items():
        if _module_exempt(info.module_name, exempt):
            out[key] = DirectEffects()
            continue
        out[key] = _direct_effects(graph, info, exempt)
    return out


def _module_exempt(module_name: str, exempt: Tuple[str, ...]) -> bool:
    return any(
        module_name == mod or module_name.startswith(mod + ".") for mod in exempt
    )


def _direct_effects(
    graph: ProjectGraph, info: FunctionInfo, exempt: Tuple[str, ...]
) -> DirectEffects:
    effects = DirectEffects()
    fn_node = info.node
    locals_ = local_names(fn_node)
    module_globals = graph.module_globals.get(info.module_name, {})
    declared_global: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def add(kind: str, node: ast.AST, detail: str) -> None:
        effects.effects.append(
            Effect(
                kind=kind,
                function=info.key,
                detail=detail,
                path=info.module.rel,
                line=int(getattr(node, "lineno", 1) or 1),
                col=int(getattr(node, "col_offset", 0) or 0),
            )
        )

    def is_shared_root(name: Optional[str]) -> bool:
        if name is None or name == "self":
            return False
        if name in locals_ and name not in declared_global:
            return False
        return name in module_globals or name in declared_global

    for node in ast.walk(fn_node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in declared_global:
                    add(
                        "global-write", node,
                        f"rebinds module global '{target.id}'",
                    )
            else:
                root = _root_name(target)
                if is_shared_root(root):
                    add(
                        "global-write", node,
                        f"mutates module global '{root}' in place",
                    )

    for site in info.calls:
        call = site.node
        # Mutating method on a module global: GLOBAL.append(...), etc.
        if isinstance(call.func, ast.Attribute):
            root = _root_name(call.func)
            if call.func.attr in MUTATING_METHODS and is_shared_root(root):
                add(
                    "global-write", call,
                    f"mutates module global '{root}' via .{call.func.attr}()",
                )
        if site.target is not None and site.target.startswith("external:"):
            reason = banned_call_reason(site.target[len("external:"):])
            if reason is not None:
                add("banned-call", call, reason)
    return effects


def propagate_effects(
    graph: ProjectGraph, direct: Dict[str, DirectEffects]
) -> Dict[str, List[Effect]]:
    """Transitive effects per function (fixpoint over the call graph)."""
    summary: Dict[str, Set[Effect]] = {
        key: set(d.effects) for key, d in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for key in graph.functions:
            mine = summary.setdefault(key, set())
            before = len(mine)
            for callee in graph.callees(key):
                mine |= summary.get(callee, set())
            if len(mine) != before:
                changed = True
    return {key: sorted(v, key=lambda e: (e.path, e.line, e.detail)) for key, v in summary.items()}


def shortest_chain(
    graph: ProjectGraph, root: str, carrier_of: Dict[str, List[Effect]], effect: Effect
) -> List[str]:
    """BFS call chain from ``root`` to the function owning ``effect``."""
    if root == effect.function:
        return [root]
    seen = {root}
    queue: List[Tuple[str, List[str]]] = [(root, [root])]
    while queue:
        key, path = queue.pop(0)
        for callee in sorted(graph.callees(key)):
            if callee in seen:
                continue
            if effect not in set(carrier_of.get(callee, [])):
                continue
            next_path = path + [callee]
            if callee == effect.function:
                return next_path
            seen.add(callee)
            queue.append((callee, next_path))
    return [root, effect.function]


#: Callee names treated as pool dispatch entry points.  Name-based on
#: purpose: fixture projects import ``repro.parallel`` without it being
#: part of the analyzed tree, so absolute resolution cannot be required.
POOL_ENTRYPOINTS = {"run_tasks", "supervise_tasks"}


@dataclass
class PoolDispatch:
    """One ``run_tasks``/``supervise_tasks`` call site."""

    caller: FunctionInfo
    call: ast.Call
    entrypoint: str
    worker: Optional[ast.AST]  # the worker argument expression


def find_pool_dispatches(graph: ProjectGraph) -> List[PoolDispatch]:
    dispatches: List[PoolDispatch] = []
    for info in graph.functions.values():
        for site in info.calls:
            dotted = site.dotted
            if dotted is None:
                continue
            name = dotted.rsplit(".", 1)[-1]
            if name not in POOL_ENTRYPOINTS:
                continue
            call = site.node
            worker: Optional[ast.AST] = None
            if call.args:
                worker = call.args[0]
            for kw in call.keywords:
                if kw.arg == "worker":
                    worker = kw.value
            dispatches.append(
                PoolDispatch(
                    caller=info, call=call, entrypoint=name, worker=worker
                )
            )
    return dispatches
