"""Distribution-level validation of sampled workloads.

Beyond total-time error, a sampled workload should *look like* the full
workload: the weighted empirical distribution of its sampled execution
times should match the full distribution.  This module quantifies that
with a weighted two-sample Kolmogorov–Smirnov statistic — a stricter
companion to the paper's Figure 14 metric comparison, useful for
catching plans that nail the mean while misshaping the distribution
(e.g. single-sample-per-cluster baselines on multi-peak kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.plan import SamplingPlan

__all__ = ["DistributionMatch", "weighted_ks_statistic", "validate_distribution"]


@dataclass(frozen=True)
class DistributionMatch:
    """KS-style comparison of sampled-vs-full time distributions."""

    ks_statistic: float
    num_samples: int
    num_full: int

    @property
    def matches(self) -> bool:
        """A loose practical threshold: distributions agree within 0.2."""
        return self.ks_statistic < 0.2


def weighted_ks_statistic(
    full_values: np.ndarray,
    sample_values: np.ndarray,
    sample_weights: Optional[np.ndarray] = None,
) -> float:
    """Max CDF gap between the full sample and a weighted subsample."""
    full = np.sort(np.asarray(full_values, dtype=np.float64))
    samples = np.asarray(sample_values, dtype=np.float64)
    if len(full) == 0 or len(samples) == 0:
        raise ValueError("both samples must be non-empty")
    if sample_weights is None:
        sample_weights = np.ones(len(samples))
    weights = np.asarray(sample_weights, dtype=np.float64)
    if len(weights) != len(samples):
        raise ValueError("weights must align with sample values")
    if weights.sum() <= 0:
        raise ValueError("weights must have positive total")

    order = np.argsort(samples)
    samples = samples[order]
    cum_weights = np.cumsum(weights[order]) / weights.sum()

    # Evaluate both CDFs on the union grid.
    grid = np.union1d(full, samples)
    cdf_full = np.searchsorted(full, grid, side="right") / len(full)
    cdf_sample = np.zeros(len(grid))
    positions = np.searchsorted(samples, grid, side="right")
    nonzero = positions > 0
    cdf_sample[nonzero] = cum_weights[positions[nonzero] - 1]
    return float(np.abs(cdf_full - cdf_sample).max())


def validate_distribution(
    plan: SamplingPlan, times: np.ndarray
) -> DistributionMatch:
    """Compare a plan's weighted sample distribution to the full one."""
    weights_map = plan.sample_weights()
    indices = np.fromiter(weights_map.keys(), dtype=np.int64)
    weights = np.fromiter(weights_map.values(), dtype=np.float64)
    statistic = weighted_ks_statistic(times, times[indices], weights)
    return DistributionMatch(
        ks_statistic=statistic,
        num_samples=len(indices),
        num_full=len(times),
    )
