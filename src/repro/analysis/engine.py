"""The whole-program analysis engine behind ``repro analyze``.

Mirrors :func:`repro.lint.run_lint` — same config, same
:class:`~repro.lint.engine.SourceModule` parsing, same inline
suppressions, same baseline format and reporters, same
:class:`~repro.lint.engine.LintResult` shape — but runs the
*interprocedural* pass registry over a :class:`ProjectGraph` built from
the **entire configured tree**, regardless of path operands.  Whole-
program facts do not localize: a seed tainted three modules away still
taints this file's sink.  Path operands (and ``--changed``) therefore
restrict *reporting*, never *loading*.

Exit-code contract, baseline semantics and suppression comments are
identical to the lint tier, so CI and editors treat the two tiers as
one tool with two scopes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..lint.baseline import match_baseline
from ..lint.config import LintConfig, LintUsageError
from ..lint.engine import (
    LintResult,
    SourceModule,
    _rel_posix,
    discover_files,
    parse_module,
)
from ..lint.findings import Finding
from .graph import ProjectGraph
from .passes import load_builtin_analysis_passes, registered_analysis_passes

__all__ = ["build_graph", "run_analysis"]


def build_graph(
    config: LintConfig, paths: Optional[Sequence[str]] = None
) -> ProjectGraph:
    """Parse the configured tree (or explicit paths) into a ProjectGraph."""
    modules: List[SourceModule] = []
    for path in discover_files(config, paths):
        try:
            modules.append(parse_module(path, config.root))
        except SyntaxError:
            continue  # reported as parse-error findings by run_analysis
    return ProjectGraph(modules)


def run_analysis(
    config: LintConfig,
    paths: Optional[Sequence[str]] = None,
    use_baseline: bool = True,
    rules: Optional[Sequence[str]] = None,
    report_only: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every enabled analysis pass over the whole configured tree.

    ``paths``/``report_only`` restrict which files findings are
    *reported* for; the program graph always covers the configured
    roots.  ``report_only`` takes root-relative POSIX paths (what
    ``--changed`` produces); ``paths`` takes CLI operands resolved like
    lint path operands.
    """
    load_builtin_analysis_passes()
    known = set(registered_analysis_passes())
    unknown = sorted(
        {
            rule
            for rule in (list(rules or []))
            if rule not in known
        }
    )
    if unknown:
        raise LintUsageError(
            "unknown analysis rule id(s): " + ", ".join(unknown)
            + " (run `repro analyze --list-rules` for the registry)"
        )
    enabled = {
        rule: cls
        for rule, cls in registered_analysis_passes().items()
        if rule not in config.disable and (rules is None or rule in rules)
    }

    modules: List[SourceModule] = []
    raw: List[Finding] = []
    for path in discover_files(config, None):
        try:
            modules.append(parse_module(path, config.root))
        except SyntaxError as err:
            raw.append(
                Finding(
                    path=_rel_posix(path, config.root),
                    line=int(err.lineno or 1),
                    col=int(err.offset or 0),
                    rule="parse-error",
                    severity="error",
                    message=f"file does not parse: {err.msg}",
                    hint="fix the syntax error; unparseable files are "
                    "invisible to whole-program analysis",
                )
            )

    report_rels = _report_filter(config, paths, report_only)

    graph = ProjectGraph(modules)
    module_by_rel = {m.rel: m for m in modules}
    for cls in enabled.values():
        raw.extend(cls().check_graph(graph, config))
    raw.sort()

    if report_rels is not None:
        raw = [f for f in raw if f.path in report_rels]

    visible: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = module_by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed += 1
        else:
            visible.append(finding)

    baselined = 0
    if use_baseline:
        visible, baselined = match_baseline(
            visible, config.analysis_baseline_path()
        )

    reported_paths = (
        sorted(report_rels)
        if report_rels is not None
        else [m.rel for m in modules]
    )
    return LintResult(
        findings=visible,
        files_checked=len(modules),
        suppressed=suppressed,
        baselined=baselined,
        raw_findings=raw,
        linted_paths=reported_paths,
    )


def _report_filter(
    config: LintConfig,
    paths: Optional[Sequence[str]],
    report_only: Optional[Sequence[str]],
) -> Optional[Set[str]]:
    """Root-relative rels to report findings for; None = everything."""
    if paths is None and report_only is None:
        return None
    rels: Set[str] = set(report_only or [])
    if paths:
        # Resolve operands like lint does (file or directory), then
        # reduce to rels — a directory operand covers its whole subtree.
        for path in discover_files(config, paths):
            rels.add(_rel_posix(path, config.root))
    return rels
