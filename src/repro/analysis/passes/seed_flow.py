"""Analysis rule ``seed-flow``: RNG seeds must derive from explicit inputs.

Taint-tracks seed material interprocedurally.  **Sources** are ambient
values that differ between identical runs or processes: wall-clock reads
(``time.time`` and friends), OS entropy (``os.urandom``, ``uuid4``),
``id()`` (address-dependent), ``hash()`` (salted per process for
strings), and unordered-set construction (iteration order is arbitrary;
``sorted()``/``len()``/``min()``/``max()`` launder the taint because
their value does not depend on iteration order).  **Sinks** are the
explicit generator constructors (``numpy.random.default_rng``,
``SeedSequence`` and the bit generators, stdlib ``random.Random``).

The analysis is flow-insensitive but interprocedural, over two
per-function summaries computed to fixpoint on the call graph:

* *return taint* — whether a function's return value carries a source
  (and which parameters pass through to the return value), so a helper
  like ``def wall_seed(): return int(time.time())`` taints every caller;
* *seed-sink parameters* — parameters that reach a sink inside the
  function (directly or via a callee's seed-sink parameter), so a
  tainted argument is flagged at the call site that supplies it.

A second check catches the other way seeds go wrong in a parallel
program: a **seeded generator escaping into shared mutable state**.  A
module-level ``Generator`` is process-shared mutable state; any function
reachable from a pool-dispatched worker that touches one draws values
that depend on scheduling, not on the payload seed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...lint.findings import Finding
from ..effects import find_pool_dispatches
from ..graph import FunctionInfo, ProjectGraph
from .base import AnalysisPass, register_analysis_pass

#: Absolute dotted callees whose return value is tainted seed material.
_SOURCE_CALLS = {
    "time.time": "wall-clock read time.time()",
    "time.time_ns": "wall-clock read time.time_ns()",
    "time.perf_counter": "monotonic-timer read time.perf_counter() (process-relative)",
    "time.monotonic": "monotonic-timer read time.monotonic() (process-relative)",
    "datetime.datetime.now": "wall-clock read datetime.now()",
    "datetime.datetime.utcnow": "wall-clock read datetime.utcnow()",
    "os.urandom": "OS entropy os.urandom()",
    "os.getpid": "process id os.getpid()",
    "uuid.uuid1": "OS entropy uuid.uuid1()",
    "uuid.uuid4": "OS entropy uuid.uuid4()",
    "secrets.token_bytes": "OS entropy secrets.token_bytes()",
    "secrets.randbits": "OS entropy secrets.randbits()",
}

#: Builtin calls whose value depends on object identity / process salt.
_SOURCE_BUILTINS = {
    "id": "object address id()",
    "hash": "process-salted hash()",
}

#: Calls that launder unordered-set taint: their value is independent of
#: iteration order.
_ORDER_NEUTRAL_BUILTINS = {"sorted", "len", "min", "max", "frozenset"}

#: Sink constructors: the argument is a seed.
_SEED_SINKS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "random.Random",
}

#: Generator-producing constructors (for the escape check).
_GENERATOR_MAKERS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "random.Random",
}


@dataclass(frozen=True)
class Taint:
    """One taint tag: a concrete source, or a parameter pass-through."""

    kind: str  # "src" | "param"
    detail: str  # source description, or the parameter name
    via: str = ""  # call chain note ("via wall_seed()")

    def describe(self) -> str:
        text = self.detail
        if self.via:
            text += f" (via {self.via})"
        return text


@dataclass
class FunctionSummary:
    """Interprocedural seed-flow summary of one function."""

    return_taints: Set[Taint]
    #: Parameter names whose value reaches a seed sink inside this
    #: function (or a callee's seed-sink parameter).
    sink_params: Set[str]


class _TaintEvaluator:
    """Flow-insensitive taint of expressions within one function."""

    def __init__(
        self,
        graph: ProjectGraph,
        info: FunctionInfo,
        summaries: Dict[str, FunctionSummary],
    ):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.params = set(info.params)
        self.locals_taint: Dict[str, Set[Taint]] = {}

    def run_locals_fixpoint(self) -> None:
        """Propagate taint through straight-line local assignments."""
        assigns: List[Tuple[ast.AST, ast.AST]] = []
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assigns.append((target, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigns.append((node.target, node.value))
            elif isinstance(node, ast.AugAssign):
                assigns.append((node.target, node.value))
        for _ in range(4):  # chains of local aliases converge fast
            changed = False
            for target, value in assigns:
                taints = self.expr_taint(value)
                if not taints:
                    continue
                for name in self._target_names(target):
                    bucket = self.locals_taint.setdefault(name, set())
                    before = len(bucket)
                    bucket |= taints
                    changed = changed or len(bucket) != before
            if not changed:
                break

    @staticmethod
    def _target_names(target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for elt in target.elts:
                names.extend(_TaintEvaluator._target_names(elt))
            return names
        return []

    def expr_taint(self, node: Optional[ast.AST]) -> Set[Taint]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            taints = set(self.locals_taint.get(node.id, ()))
            if node.id in self.params:
                taints.add(Taint(kind="param", detail=node.id))
            return taints
        if isinstance(node, (ast.Set, ast.SetComp)):
            return {Taint(kind="src", detail="unordered set construction")}
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.IfExp):
            return (
                self.expr_taint(node.body)
                | self.expr_taint(node.orelse)
                | self.expr_taint(node.test)
            )
        taints: Set[Taint] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                taints |= self.expr_taint(value)
        return taints

    def _call_taint(self, call: ast.Call) -> Set[Taint]:
        func = call.func
        # Builtins by bare name (not shadowed by an import binding).
        if isinstance(func, ast.Name):
            bindings = self.graph.bindings.get(self.info.module_name, {})
            if func.id not in bindings:
                if func.id in _ORDER_NEUTRAL_BUILTINS:
                    # Launders set-iteration taint but still forwards
                    # genuine ambient sources inside the arguments.
                    inner: Set[Taint] = set()
                    for arg in call.args:
                        inner |= self.expr_taint(arg)
                    return {
                        t for t in inner
                        if not (t.kind == "src" and "unordered set" in t.detail)
                    }
                if func.id in _SOURCE_BUILTINS:
                    return {Taint(kind="src", detail=_SOURCE_BUILTINS[func.id])}
                if func.id == "set":
                    return {Taint(kind="src", detail="unordered set construction")}

        resolved = self._resolve_call(call)
        if resolved is not None and resolved.startswith("external:"):
            absolute = resolved[len("external:"):]
            if absolute in _SOURCE_CALLS:
                return {Taint(kind="src", detail=_SOURCE_CALLS[absolute])}
            if absolute == "set" or absolute == "builtins.set":
                return {Taint(kind="src", detail="unordered set construction")}
            return set()
        if resolved is not None and resolved in self.graph.functions:
            summary = self.summaries.get(resolved)
            if summary is None:
                return set()
            callee = self.graph.functions[resolved]
            out: Set[Taint] = set()
            arg_map = _map_arguments(callee, call)
            for taint in summary.return_taints:
                if taint.kind == "src":
                    via = taint.via or f"{callee.name}()"
                    out.add(Taint(kind="src", detail=taint.detail, via=via))
                else:  # param pass-through: taint of the matching argument
                    arg = arg_map.get(taint.detail)
                    if arg is not None:
                        for inner in self.expr_taint(arg):
                            via = inner.via or f"{callee.name}()"
                            out.add(
                                Taint(kind=inner.kind, detail=inner.detail, via=via)
                            )
            return out
        # Unresolved calls (methods on objects, external helpers): the
        # arguments' taint flows through conservatively only for genuine
        # sources — int(time.time()) stays tainted.
        out = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            out |= {t for t in self.expr_taint(arg) if t.kind == "src"}
        return out

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        for site in self.info.calls:
            if site.node is call:
                return site.target
        return None


def _map_arguments(callee: FunctionInfo, call: ast.Call) -> Dict[str, ast.AST]:
    """Callee parameter name -> argument expression at this call site."""
    params = callee.params
    if params and params[0] == "self":
        params = params[1:]
    mapping: Dict[str, ast.AST] = {}
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if position < len(params):
            mapping[params[position]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            mapping[kw.arg] = kw.value
    return mapping


def _sink_name(absolute: str) -> str:
    return absolute.rsplit(".", 1)[-1]


@register_analysis_pass
class SeedFlowPass(AnalysisPass):
    rule = "seed-flow"
    description = (
        "taint-track RNG seeds across call chains: no seed may derive "
        "from wall-clock, OS entropy, id()/hash() or unordered-set "
        "iteration, and no seeded generator may escape into shared "
        "mutable state reachable from pool workers"
    )

    def check_graph(self, graph: ProjectGraph, config) -> Iterable[Finding]:
        summaries = self._compute_summaries(graph)
        findings: List[Finding] = []
        findings.extend(self._check_sinks(graph, summaries))
        findings.extend(self._check_generator_escape(graph))
        return findings

    # -- interprocedural summaries ----------------------------------------
    def _compute_summaries(
        self, graph: ProjectGraph
    ) -> Dict[str, FunctionSummary]:
        summaries: Dict[str, FunctionSummary] = {
            key: FunctionSummary(return_taints=set(), sink_params=set())
            for key in graph.functions
        }
        for _ in range(12):  # call-chain depth bound; repo converges in <5
            changed = False
            for key, info in graph.functions.items():
                evaluator = _TaintEvaluator(graph, info, summaries)
                evaluator.run_locals_fixpoint()
                new_returns = self._return_taints(info, evaluator)
                new_sinks = self._sink_params(graph, info, evaluator, summaries)
                summary = summaries[key]
                if not new_returns <= summary.return_taints:
                    summary.return_taints |= new_returns
                    changed = True
                if not new_sinks <= summary.sink_params:
                    summary.sink_params |= new_sinks
                    changed = True
            if not changed:
                break
        return summaries

    @staticmethod
    def _return_taints(
        info: FunctionInfo, evaluator: _TaintEvaluator
    ) -> Set[Taint]:
        taints: Set[Taint] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                taints |= evaluator.expr_taint(node.value)
        return taints

    def _sink_params(
        self,
        graph: ProjectGraph,
        info: FunctionInfo,
        evaluator: _TaintEvaluator,
        summaries: Dict[str, FunctionSummary],
    ) -> Set[str]:
        sink_params: Set[str] = set()
        for site in info.calls:
            seed_args = self._seed_arguments(graph, site, summaries)
            for arg in seed_args:
                for taint in evaluator.expr_taint(arg):
                    if taint.kind == "param":
                        sink_params.add(taint.detail)
        return sink_params

    @staticmethod
    def _seed_arguments(
        graph: ProjectGraph, site, summaries: Dict[str, FunctionSummary]
    ) -> List[ast.AST]:
        """Argument expressions of this call that are seed material."""
        call = site.node
        target = site.target
        if target is not None and target.startswith("external:"):
            absolute = target[len("external:"):]
            if absolute in _SEED_SINKS:
                args = list(call.args)
                args.extend(
                    kw.value for kw in call.keywords if kw.arg in (None, "seed")
                )
                return args
            return []
        if target is not None and target in graph.functions:
            summary = summaries.get(target)
            if summary is None or not summary.sink_params:
                return []
            callee = graph.functions[target]
            arg_map = _map_arguments(callee, call)
            return [
                arg_map[p] for p in summary.sink_params if p in arg_map
            ]
        return []

    # -- findings ----------------------------------------------------------
    def _check_sinks(
        self, graph: ProjectGraph, summaries: Dict[str, FunctionSummary]
    ) -> Iterable[Finding]:
        for info in graph.functions.values():
            evaluator = _TaintEvaluator(graph, info, summaries)
            evaluator.run_locals_fixpoint()
            for site in info.calls:
                seed_args = self._seed_arguments(graph, site, summaries)
                if not seed_args:
                    continue
                sink_label = self._sink_label(graph, site)
                for arg in seed_args:
                    sources = sorted(
                        t.describe()
                        for t in evaluator.expr_taint(arg)
                        if t.kind == "src"
                    )
                    if not sources:
                        continue
                    yield self.finding(
                        info.module,
                        site.node,
                        f"seed reaching {sink_label} in "
                        f"{info.qualpath}() derives from "
                        + "; ".join(sources)
                        + " — identical runs would draw different values",
                        hint="derive seeds from explicit run inputs "
                        "(base seed + structural indices), never from "
                        "ambient process state",
                    )

    @staticmethod
    def _sink_label(graph: ProjectGraph, site) -> str:
        target = site.target or ""
        if target.startswith("external:"):
            return _sink_name(target[len("external:"):]) + "()"
        if target in graph.functions:
            return f"{graph.functions[target].qualpath}() (seed parameter)"
        return "a seed sink"

    def _check_generator_escape(self, graph: ProjectGraph) -> Iterable[Finding]:
        # Module-level names bound to generator constructions.
        shared: Dict[Tuple[str, str], ast.AST] = {}
        for mod_name, globals_table in graph.module_globals.items():
            module = graph.by_module_name[mod_name]
            for name, node in globals_table.items():
                value = getattr(node, "value", None)
                if not isinstance(value, ast.Call):
                    continue
                dotted = _dotted_text(value.func)
                if dotted is None:
                    continue
                resolved = graph.resolve_dotted(mod_name, dotted)
                if resolved is None:
                    continue
                if (
                    resolved.startswith("external:")
                    and resolved[len("external:"):] in _GENERATOR_MAKERS
                ):
                    shared[(mod_name, name)] = node
                del module

        if not shared:
            return
        # Functions reachable from any pool worker.
        workers: List[str] = []
        for dispatch in find_pool_dispatches(graph):
            worker = dispatch.worker
            if isinstance(worker, ast.Name):
                info = graph.function_for_name(
                    dispatch.caller.module_name, worker.id
                )
                if info is not None:
                    workers.append(info.key)
        reachable = graph.transitive_closure(workers)
        for key in sorted(reachable):
            info = graph.functions[key]
            locals_ = None
            for node in ast.walk(info.node):
                if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                    continue
                if (info.module_name, node.id) not in shared:
                    continue
                if locals_ is None:
                    from ..effects import local_names

                    locals_ = local_names(info.node)
                if node.id in locals_:
                    continue
                yield self.finding(
                    info.module,
                    node,
                    f"seeded generator '{node.id}' is module-level shared "
                    f"mutable state touched by '{info.qualpath}', which is "
                    "reachable from a pool worker; draw order would depend "
                    "on scheduling, not on the payload seed",
                    hint="construct the generator inside the worker from "
                    "the payload seed instead of sharing one per process",
                )


def _dotted_text(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_text(node.value)
        return f"{base}.{node.attr}" if base else None
    return None
