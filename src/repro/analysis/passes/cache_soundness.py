"""Analysis rule ``cache-key-soundness``: keys cover what influences results.

The lint-tier rule ``cache-key-completeness`` is syntactic: every
declared field must be *mentioned* by the key function or exempted.
This tier asks the question that actually matters for cache hygiene:
**which fields can influence results**, and is every one of those either
serialized into the key or carried by a reviewed exemption?

A field *influences results* when it is read outside the key machinery:

* ``self.<field>`` loads in any method of the class other than the key
  method itself and dunders, or
* ``<param>.<field>`` loads in any project function whose parameter is
  annotated with the class (how free functions like
  ``fidelity_cycle_counts(policy: FidelityPolicy)`` consume fields).

The diff ``influencing − serialized − exempt`` is the finding set:
deleting ``gap_safety`` from ``FidelityPolicy.memo_identity()`` makes
this pass fail *without touching pyproject.toml*, because the field is
still read by the fidelity engine.

Keyed classes are discovered two ways, and both are checked:

* every ``[[tool.repro.lint.cache-key]]`` entry (authoritative for the
  key method and the exemption list), and
* every class defining ``memo_identity()`` or ``fingerprint()`` even
  without a TOML entry — a new keyed class is verified from the moment
  it exists, with an empty exemption list.

Exemptions are *reviewed*: an entry with a non-empty ``exempt`` list
must carry a written ``justification`` in pyproject.toml, or this pass
flags it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...lint.config import CacheKeySpec, LintConfig
from ...lint.findings import Finding
from ...lint.passes.cache_keys import (
    _calls_dataclasses_fields,
    _field_call_kwarg,
    _referenced_fields,
)
from ..graph import ClassInfo, ProjectGraph
from .base import AnalysisPass, register_analysis_pass

#: Method names that mark a class as cache-keyed even without a TOML
#: entry.  ``to_dict``/``repr`` keys must be declared explicitly — too
#: many innocent classes have a ``to_dict``.
KEY_METHOD_NAMES = ("memo_identity", "fingerprint")

#: Methods whose ``self.<field>`` reads do not count as influence: the
#: key machinery itself plus representation/equality dunders.
_NON_INFLUENCE_METHODS = {"__repr__", "__eq__", "__hash__", "__str__"}


@dataclass
class _Keyed:
    """One keyed class resolved against the project graph."""

    cls: ClassInfo
    key: str  # method name, or "repr"
    exempt: Tuple[str, ...]
    justification: str
    declared: bool  # True when it came from a TOML entry


def _spec_rel(spec: CacheKeySpec) -> str:
    return spec.path.replace(os.sep, "/")


class _InfluenceIndex:
    """Field reads per class name, collected once over the whole graph.

    ``reads[class_name][field]`` is the qualpath of one function that
    loads the field (for the finding message) — existence is what the
    soundness check needs; one witness is what the human needs.
    """

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self.reads: Dict[str, Dict[str, str]] = {}
        self._collect()

    def _collect(self) -> None:
        for info in self.graph.functions.values():
            receivers: Dict[str, str] = {}  # local name -> class name
            if info.class_name is not None:
                if not (
                    info.name == "__init__"
                    or info.name in _NON_INFLUENCE_METHODS
                ):
                    receivers["self"] = info.class_name
            receivers.update(info.param_annotations())
            if not receivers:
                continue
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                ):
                    continue
                cls_name = receivers.get(node.value.id)
                if cls_name is None:
                    continue
                self.reads.setdefault(cls_name, {}).setdefault(
                    node.attr, self._where(info, node.value.id)
                )

    @staticmethod
    def _where(info, receiver: str) -> str:
        if receiver == "self":
            return f"{info.qualpath}()"
        return f"{info.qualpath}({receiver}: …)"

    def influencing_fields(
        self, keyed: _Keyed
    ) -> Dict[str, str]:
        """Field -> witness, for fields of this class read outside the key.

        Reads *inside the key method itself* never count — they are the
        serialization, not a consumer.
        """
        raw = dict(self.reads.get(keyed.cls.name, {}))
        fields = set(keyed.cls.fields)
        key_method = keyed.cls.methods.get(keyed.key)
        key_reads: Set[str] = set()
        if key_method is not None:
            key_reads = _referenced_fields(key_method.node)
        out: Dict[str, str] = {}
        for name, witness in raw.items():
            if name not in fields:
                continue  # property / derived attribute, not a field
            if name in key_reads and witness.startswith(
                f"{keyed.cls.name}.{keyed.key}("
            ):
                continue
            out[name] = witness
        return out


@register_analysis_pass
class CacheKeySoundnessPass(AnalysisPass):
    rule = "cache-key-soundness"
    description = (
        "every field that can influence a keyed class's results must be "
        "serialized by its cache key or carried by a reviewed exemption "
        "with a written justification"
    )

    def check_graph(self, graph: ProjectGraph, config: LintConfig) -> Iterable[Finding]:
        index = _InfluenceIndex(graph)
        findings: List[Finding] = []
        for keyed in self._keyed_classes(graph, config):
            findings.extend(self._check_keyed(keyed, index))
        return findings

    # -- discovery ---------------------------------------------------------
    def _keyed_classes(
        self, graph: ProjectGraph, config: LintConfig
    ) -> List[_Keyed]:
        by_rel_name: Dict[Tuple[str, str], ClassInfo] = {
            (c.module.rel, c.name): c for c in graph.classes.values()
        }
        out: List[_Keyed] = []
        covered: Set[str] = set()
        for spec in config.cache_keys:
            cls = by_rel_name.get((_spec_rel(spec), spec.cls))
            if cls is None:
                continue  # path not in this graph (e.g. explicit operands)
            covered.add(cls.key)
            out.append(
                _Keyed(
                    cls=cls,
                    key=spec.key,
                    exempt=spec.exempt,
                    justification=spec.justification,
                    declared=True,
                )
            )
        for cls in graph.classes.values():
            if cls.key in covered:
                continue
            for method in KEY_METHOD_NAMES:
                if method in cls.methods:
                    out.append(
                        _Keyed(
                            cls=cls,
                            key=method,
                            exempt=(),
                            justification="",
                            declared=False,
                        )
                    )
                    break
        return out

    # -- checks ------------------------------------------------------------
    def _check_keyed(
        self, keyed: _Keyed, index: _InfluenceIndex
    ) -> Iterable[Finding]:
        cls = keyed.cls
        if keyed.declared and keyed.exempt and not keyed.justification:
            yield self.finding(
                cls.module,
                cls.node,
                f"cache-key exemption for {cls.name} "
                f"({', '.join(keyed.exempt)}) has no justification; "
                "exemptions are reviewed waivers, not configuration",
                hint="add justification = \"…\" to this "
                "[[tool.repro.lint.cache-key]] entry explaining why the "
                "exempted fields cannot change results",
            )

        serialized = self._serialized_fields(keyed)
        if serialized is None:
            return  # unresolvable key method: the lint tier reports it
        influencing = index.influencing_fields(keyed)
        for name in sorted(influencing):
            if name in serialized or name in keyed.exempt:
                continue
            anchor = cls.fields.get(name, cls.node)
            yield self.finding(
                cls.module,
                anchor,
                f"{cls.name}.{name} influences results (read in "
                f"{influencing[name]}) but is not serialized by "
                f"{self._key_label(keyed)} and carries no exemption; "
                "cached entries keyed before the field changes would be "
                "served as stale hits",
                hint=f"serialize self.{name} in the key, or exempt it in "
                "pyproject.toml with a written justification",
            )

    def _serialized_fields(self, keyed: _Keyed) -> Optional[Set[str]]:
        cls = keyed.cls
        fields = set(cls.fields)
        if keyed.key == "repr":
            hidden: Set[str] = set()
            for name, node in cls.fields.items():
                default = getattr(node, "value", None)
                repr_kw = _field_call_kwarg(default, "repr")
                if isinstance(repr_kw, ast.Constant) and repr_kw.value is False:
                    hidden.add(name)
            return fields - hidden
        method = cls.methods.get(keyed.key)
        if method is None:
            return None
        if _calls_dataclasses_fields(method.node):
            return fields  # enumerates fields(): complete by construction
        serialized = _referenced_fields(method.node) & fields
        # The key method may delegate: self.memo_identity() calling
        # self.config.fingerprint() still only covers 'config' itself.
        return serialized

    @staticmethod
    def _key_label(keyed: _Keyed) -> str:
        if keyed.key == "repr":
            return "repr()"
        return f"{keyed.key}()"
