"""Analysis pass protocol and registry.

An analysis pass is a :class:`~repro.lint.passes.base.LintPass` with one
extra hook: :meth:`AnalysisPass.check_graph`, called once per run with
the whole-program :class:`~repro.analysis.graph.ProjectGraph`.  Findings,
severities, inline ``# repro-lint: disable=…`` suppressions, baselines
and reporters are all shared with the lint tier — the two tiers differ
only in *scope* (one file vs. the program), not in contract.

The registry is separate from the lint registry so an analysis rule may
deliberately reuse a lint rule id: the interprocedural purity pass
registers as ``pool-safety``, subsuming the name-based syntactic pass of
the same id (one invariant, one id, two tiers of enforcement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Type

from ...lint.findings import Finding
from ...lint.passes.base import LintPass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...lint.config import LintConfig
    from ..graph import ProjectGraph

__all__ = ["AnalysisPass", "register_analysis_pass", "registered_analysis_passes"]

_REGISTRY: Dict[str, Type["AnalysisPass"]] = {}


def register_analysis_pass(cls: Type["AnalysisPass"]) -> Type["AnalysisPass"]:
    """Class decorator adding a pass to the analysis registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} must set a non-empty rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate analysis rule id {cls.rule!r}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_analysis_passes() -> Dict[str, Type["AnalysisPass"]]:
    """Rule id -> pass class, in registration order."""
    return dict(_REGISTRY)


class AnalysisPass(LintPass):
    """Base class of every whole-program analysis rule."""

    def check_graph(
        self, graph: "ProjectGraph", config: "LintConfig"
    ) -> Iterable[Finding]:
        return ()

    def graph_finding(
        self,
        graph: "ProjectGraph",
        module,
        node,
        message: str,
        hint: str = "",
        severity: str = "",
    ) -> Finding:
        return self.finding(module, node, message, hint=hint, severity=severity)
