"""Analysis rule ``pool-safety``: pool workers must be *transitively* pure.

Subsumes the syntactic lint rule of the same id.  The lint tier rejects
worker callables that cannot even be shipped to a spawn-start pool
(lambdas, closures); this tier verifies the property the parallel engine
actually relies on for bit-identical results — that a dispatched worker
is **pure up to its explicit payload**:

* no writes to module-level globals, directly or through any chain of
  project-internal calls (the blind spot of the name-based pass: a
  module-level worker that *calls* a helper mutating a module dict
  passed the old check);
* no ambient nondeterminism (wall-clock reads, stdlib ``random``,
  numpy's module-state RNG) anywhere in the worker's call closure.

Effects inside exempt modules do not count (default: :mod:`repro.obs`,
whose per-worker state is shipped back and merged deterministically, and
the DetSan runtime sanitizer).  Config::

    [tool.repro.lint.pool-safety]
    effect_exempt_modules = ["repro.obs", "repro.analysis.detsan"]

Findings are anchored at the *effect site* (the global write or banned
call), so an inline ``# repro-lint: disable=pool-safety`` with a
rationale at that line exempts exactly the statement that was reviewed.
Unpicklable workers (lambda / nested function) are still reported at the
dispatch site, as in the lint tier.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ...lint.findings import Finding
from ..effects import (
    DEFAULT_EFFECT_EXEMPT_MODULES,
    compute_direct_effects,
    find_pool_dispatches,
    propagate_effects,
    shortest_chain,
)
from ..graph import ProjectGraph
from .base import AnalysisPass, register_analysis_pass


def _short(key: str) -> str:
    """Human name of a function key: module:qualpath -> qualpath."""
    return key.split(":", 1)[-1]


def _chain_text(chain: List[str]) -> str:
    return " -> ".join(_short(k) for k in chain)


@register_analysis_pass
class PoolPurityPass(AnalysisPass):
    rule = "pool-safety"
    description = (
        "pool-dispatched workers must be transitively pure: no module-"
        "global writes and no ambient nondeterminism anywhere in their "
        "call closure (interprocedural tier of the lint rule)"
    )

    def check_graph(self, graph: ProjectGraph, config) -> Iterable[Finding]:
        options = config.options_for(self.rule)
        exempt_modules = tuple(
            str(m)
            for m in options.get(
                "effect_exempt_modules", DEFAULT_EFFECT_EXEMPT_MODULES
            )
        )
        direct = compute_direct_effects(graph, exempt_modules)
        transitive = propagate_effects(graph, direct)
        dispatches = find_pool_dispatches(graph)

        seen: Set[Tuple[str, str, int, str]] = set()
        findings: List[Finding] = []
        for dispatch in dispatches:
            worker = dispatch.worker
            if worker is None:
                continue
            caller = dispatch.caller
            if isinstance(worker, ast.Lambda):
                findings.append(
                    self.finding(
                        caller.module,
                        worker,
                        f"lambda passed as worker to {dispatch.entrypoint}() "
                        "cannot be pickled to spawn-start pool workers",
                        hint="define a module-level function and pass it by name",
                    )
                )
                continue
            if not isinstance(worker, ast.Name):
                continue  # dynamic worker expression: out of static reach
            info = graph.function_for_name(caller.module_name, worker.id)
            if info is None:
                if self._is_nested_def(caller, worker.id):
                    findings.append(
                        self.finding(
                            caller.module,
                            worker,
                            f"nested function '{worker.id}' passed as worker "
                            f"to {dispatch.entrypoint}() is a closure with no "
                            "importable qualified name and cannot be pickled "
                            "to pool workers",
                            hint="hoist it to module level and pass state "
                            "through the payloads instead of captured "
                            "variables",
                        )
                    )
                continue

            for effect in transitive.get(info.key, []):
                dedup = (info.key, effect.path, effect.line, effect.detail)
                if dedup in seen:
                    continue
                seen.add(dedup)
                chain = shortest_chain(graph, info.key, transitive, effect)
                findings.append(
                    Finding(
                        path=effect.path,
                        line=effect.line,
                        col=effect.col,
                        rule=self.rule,
                        severity=self.severity,
                        message=(
                            f"worker '{_short(info.key)}' dispatched to "
                            f"{dispatch.entrypoint}() is impure: "
                            f"{_chain_text(chain)} {effect.detail}"
                        ),
                        hint=(
                            "thread the state through the payload (pure up "
                            "to explicit inputs), or — if the effect is "
                            "provably result-neutral (e.g. a process-local "
                            "cache-handle memo) — suppress this line with "
                            "'# repro-lint: disable=pool-safety' and a "
                            "rationale"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _is_nested_def(caller, name: str) -> bool:
        for node in ast.walk(caller.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not caller.node
                and node.name == name
            ):
                return True
        return False
