"""Built-in whole-program analysis passes.

Importing this package registers every built-in pass with the analysis
registry (mirroring :mod:`repro.lint.passes`).
"""

from __future__ import annotations

from .base import AnalysisPass, register_analysis_pass, registered_analysis_passes

__all__ = [
    "AnalysisPass",
    "load_builtin_analysis_passes",
    "register_analysis_pass",
    "registered_analysis_passes",
]

_LOADED = False


def load_builtin_analysis_passes() -> None:
    """Import every built-in pass module exactly once."""
    global _LOADED
    if _LOADED:
        return
    from . import cache_soundness, purity, seed_flow  # noqa: F401

    _LOADED = True
