"""Trace files with embedded sampling information (paper Figure 5).

The paper's pipeline hands the simulator "the corresponding code or trace
of the workload" with the sampling information embedded: traces are
generated *only for the sampled kernels*, and each trace record carries
the weight its kernel represents.  This module implements that exchange
format as JSON-lines:

* line 1 — a header: workload identity, method, metadata;
* one line per *sampled* kernel launch: launch index, kernel name, launch
  geometry, context knobs, and the representation weight.

A trace-based simulator can replay the file without access to the
original workload object; :func:`read_sampled_trace` also reconstructs a
reduced :class:`Workload` plus the weights needed for weighted-sum
estimation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .core.plan import SamplingPlan
from .workloads.kernel import KernelSpec
from .workloads.workload import Workload, WorkloadBuilder

__all__ = ["SampledTrace", "write_sampled_trace", "read_sampled_trace"]

_FORMAT_VERSION = 1


@dataclass
class SampledTrace:
    """In-memory form of a sampled-workload trace."""

    workload: Workload
    #: Per-invocation weight: how many full-workload launches each traced
    #: launch stands for (summing to the original workload size).
    weights: np.ndarray
    method: str
    source_workload: str
    metadata: Dict[str, object]

    def estimate_total(self, values: np.ndarray) -> float:
        """Weighted-sum reconstruction from per-traced-kernel values."""
        if len(values) != len(self.weights):
            raise ValueError("values must align with the traced launches")
        return float(np.dot(self.weights, values))


def _spec_payload(spec: KernelSpec) -> Dict[str, object]:
    return {
        "name": spec.name,
        "grid_dim": list(spec.grid_dim),
        "block_dim": list(spec.block_dim),
        "mix": spec.mix.as_dict(),
        "stride_bytes": spec.memory.stride_bytes,
        "random_fraction": spec.memory.random_fraction,
        "working_set_bytes": spec.memory.working_set_bytes,
        "memory_boundedness": spec.memory_boundedness,
        "num_basic_blocks": spec.num_basic_blocks,
        "bbv_seed": spec.bbv_seed,
    }


def _spec_from_payload(payload: Dict[str, object]) -> KernelSpec:
    from .workloads.kernel import InstructionMix, MemoryPattern

    return KernelSpec(
        name=str(payload["name"]),
        grid_dim=tuple(payload["grid_dim"]),  # type: ignore[arg-type]
        block_dim=tuple(payload["block_dim"]),  # type: ignore[arg-type]
        mix=InstructionMix(**payload["mix"]),  # type: ignore[arg-type]
        memory=MemoryPattern(
            stride_bytes=int(payload["stride_bytes"]),  # type: ignore[arg-type]
            random_fraction=float(payload["random_fraction"]),  # type: ignore[arg-type]
            working_set_bytes=int(payload["working_set_bytes"]),  # type: ignore[arg-type]
        ),
        memory_boundedness=float(payload["memory_boundedness"]),  # type: ignore[arg-type]
        num_basic_blocks=int(payload["num_basic_blocks"]),  # type: ignore[arg-type]
        bbv_seed=int(payload["bbv_seed"]),  # type: ignore[arg-type]
    )


def write_sampled_trace(
    path: Union[str, Path],
    workload: Workload,
    plan: SamplingPlan,
) -> int:
    """Write the sampled-kernels trace for a plan.

    Traces are emitted only for the plan's *unique* sampled launches (the
    paper: "traces are generated only for the sampled kernels"), each
    annotated with its accumulated representation weight.  Returns the
    number of trace records written.
    """
    plan.validate(len(workload))
    weights = plan.sample_weights()
    indices = sorted(weights)

    path = Path(path)
    with path.open("w") as fh:
        header = {
            "format_version": _FORMAT_VERSION,
            "kind": "sampled_kernel_trace",
            "workload": workload.name,
            "suite": workload.suite,
            "workload_size": len(workload),
            "method": plan.method,
            "metadata": dict(plan.metadata),
        }
        fh.write(json.dumps(header) + "\n")
        for index in indices:
            spec = workload.specs[int(workload.spec_ids[index])]
            record = {
                "launch_index": int(index),
                "weight": weights[index],
                "context_id": int(workload.context_ids[index]),
                "work_scale": float(workload.work_scales[index]),
                "locality": float(workload.localities[index]),
                "efficiency": float(workload.efficiencies[index]),
                "spec": _spec_payload(spec),
            }
            fh.write(json.dumps(record) + "\n")
    return len(indices)


def read_sampled_trace(path: Union[str, Path]) -> SampledTrace:
    """Load a sampled trace back into a reduced workload + weights."""
    path = Path(path)
    with path.open() as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "sampled_kernel_trace":
        raise ValueError(f"{path} is not a sampled kernel trace")
    if header.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('format_version')!r}"
        )

    builder = WorkloadBuilder(
        name=f"{header['workload']}[sampled]", suite=str(header["suite"])
    )
    weights: List[float] = []
    spec_cache: Dict[str, KernelSpec] = {}
    for line in lines[1:]:
        record = json.loads(line)
        key = json.dumps(record["spec"], sort_keys=True)
        spec = spec_cache.get(key)
        if spec is None:
            spec = _spec_from_payload(record["spec"])
            spec_cache[key] = spec
        builder.launch(
            spec,
            context_id=int(record["context_id"]),
            work_scale=float(record["work_scale"]),
            locality=float(record["locality"]),
            efficiency=float(record["efficiency"]),
        )
        weights.append(float(record["weight"]))

    return SampledTrace(
        workload=builder.build(),
        weights=np.asarray(weights, dtype=np.float64),
        method=str(header["method"]),
        source_workload=str(header["workload"]),
        metadata=dict(header.get("metadata", {})),
    )
