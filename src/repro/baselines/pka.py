"""PKA: Principal Kernel Analysis baseline (Avalos Baddouh et al., MICRO '21).

PKA clusters kernels by k-means over 12 instruction-level metrics
collected with NCU, sweeping ``k`` from 1 to 20 and keeping the best
clustering, then simulates a *single* kernel per cluster — the first
chronological one.  Two weaknesses the paper exploits:

* one sample per cluster cannot represent intra-cluster runtime
  variability (Figure 10's "identical" kernels span 2–11 us);
* first-chronological selection is biased when early invocations are
  atypical (Rodinia's ``heartwall``), producing up-to-99.9% errors unless
  hand-tuned to random selection (the ``select="random"`` mode here).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import obs
from ..errors import InfeasibleProfilingError
from ..core.clustering import kmeans
from ..core.plan import PlanCluster, SamplingPlan
from .base import ProfileStore

__all__ = ["PkaSampler"]


class PkaSampler:
    """k-means over NCU metrics, one chronological sample per cluster."""

    method = "pka"

    def __init__(
        self,
        max_k: int = 20,
        select: str = "first",
        elbow_threshold: float = 0.10,
        max_points_for_sweep: int = 200_000,
    ):
        if select not in ("first", "random"):
            raise ValueError("select must be 'first' or 'random'")
        self.max_k = max_k
        self.select = select
        #: Stop increasing k when relative inertia improvement drops below this.
        self.elbow_threshold = elbow_threshold
        self.max_points_for_sweep = max_points_for_sweep

    # -- feature handling -------------------------------------------------
    @staticmethod
    def normalize(features: np.ndarray) -> np.ndarray:
        """Z-score each metric column (constant columns become zero)."""
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        return (features - mean) / std

    def choose_k(self, features: np.ndarray, rng: np.random.Generator) -> int:
        """Sweep k = 1..max_k; keep the elbow of the inertia curve."""
        inertias: List[float] = []
        best_k = 1
        for k in range(1, self.max_k + 1):
            result = kmeans(features, k, rng=rng, n_init=1)
            inertias.append(result.inertia)
            if k == 1:
                continue
            prev = inertias[-2]
            if prev <= 0:
                break
            improvement = (prev - inertias[-1]) / prev
            if improvement < self.elbow_threshold:
                break
            best_k = k
        return best_k

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        if rng is None:
            rng = np.random.default_rng(seed)
        workload = store.workload
        n = len(workload)
        if n > self.max_points_for_sweep:
            raise InfeasibleProfilingError(
                f"PKA is infeasible on {workload.name!r}: NCU profiling of "
                f"{n} kernels would take months (see Table 5)"
            )
        features = self.normalize(store.pka_features())
        with obs.span("baseline.pka.build_plan", workload=workload.name):
            k = self.choose_k(features, rng)
            result = kmeans(features, k, rng=rng, n_init=3)

            clusters: List[PlanCluster] = []
            for j, members in enumerate(result.cluster_indices()):
                if len(members) == 0:
                    continue
                if self.select == "first":
                    chosen = int(members.min())
                else:
                    chosen = int(rng.choice(members))
                clusters.append(
                    PlanCluster(
                        label=f"pka_cluster_{j}",
                        member_count=len(members),
                        sampled_indices=np.array([chosen], dtype=np.int64),
                    )
                )
        obs.inc("baseline.plans_built")
        return SamplingPlan(
            method=self.method,
            workload_name=workload.name,
            clusters=clusters,
            metadata={"k": k, "select": self.select},
        )
