"""Baseline sampler interface and the shared lazy profile store.

Every sampling method consumes a different profiler's output (Table 1).
:class:`ProfileStore` computes each profile on demand and caches it so an
experiment comparing four methods on one workload profiles each signature
exactly once.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

import numpy as np

from .. import obs
from ..core.plan import SamplingPlan
from ..hardware.gpu_config import GPUConfig
from ..profiling.bbv import BbvProfiler, BbvTable
from ..profiling.ncu import NcuProfiler, PKA_METRICS
from ..profiling.nsys import NsysProfiler
from ..profiling.nvbit import NvbitProfiler
from ..resilience.validation import validate_times
from ..workloads.workload import Workload

__all__ = ["ProfileStore", "Sampler"]


class ProfileStore:
    """Lazy, cached access to every profiler's view of one workload.

    ``fault_injector`` (a :class:`~repro.resilience.faults.FaultInjector`,
    or ``None``) corrupts the nsys execution-time profile as it is
    collected — the store then *observes* the corrupted view while
    :meth:`true_execution_times` retains the clean one for scoring.
    ``validation`` (``"off"``/``"strict"``/``"repair"``) gates the
    observed profile through :func:`repro.resilience.validate_times`.
    Both default to disabled, leaving behaviour bit-identical.
    """

    def __init__(
        self,
        workload: Workload,
        config: GPUConfig,
        seed: int = 0,
        fault_injector=None,
        validation: str = "off",
        cache=None,
    ):
        if validation not in ("off", "strict", "repair"):
            raise ValueError("validation must be 'off', 'strict' or 'repair'")
        self.workload = workload
        self.config = config
        self.seed = seed
        self.fault_injector = fault_injector
        self.validation = validation
        #: Optional :class:`repro.parallel.ProfileCache` shared across
        #: stores, processes and runs.  Only the *clean* nsys profile is
        #: cached; fault injection and validation run on every read path,
        #: so cached and collected profiles behave identically.
        self.cache = cache
        self._cache: Dict[str, object] = {}

    def _collect_times(self) -> None:
        if self.cache is not None:
            clean = self.cache.get_or_collect(
                self.workload,
                self.config,
                self.seed,
                lambda: NsysProfiler(self.config).execution_times(
                    self.workload, seed=self.seed
                ),
            )
        else:
            clean = NsysProfiler(self.config).execution_times(
                self.workload, seed=self.seed
            )
        self._cache["times_true"] = clean
        observed = clean
        if self.fault_injector is not None:
            observed = self.fault_injector.corrupt_times(clean)
        if self.validation != "off":
            observed, health = validate_times(
                observed,
                expected_length=len(self.workload),
                mode=self.validation,
                name=f"{self.workload.name} profile",
            )
            self._cache["profile_health"] = health
        self._cache["times"] = observed

    def execution_times(self) -> np.ndarray:
        """nsys view: per-invocation execution time (STEM's input).

        This is the *observed* profile — corrupted by the fault injector
        and/or repaired by validation when those are enabled.
        """
        if "times" not in self._cache:
            self._collect_times()
        else:
            obs.inc("profile.cache_hits")
        return self._cache["times"]  # type: ignore[return-value]

    def true_execution_times(self) -> np.ndarray:
        """The clean profile, untouched by fault injection or repair.

        Experiments score plans against this so injected profile faults
        degrade the *plan*, not the ground truth.  Identical to
        :meth:`execution_times` when faults and validation are off.
        """
        if "times_true" not in self._cache:
            self._collect_times()
        return self._cache["times_true"]  # type: ignore[return-value]

    @property
    def profile_health(self):
        """Validation report for the observed profile (None before use)."""
        return self._cache.get("profile_health")

    def pka_features(self) -> np.ndarray:
        """NCU view: (n, 12) PKA metric matrix."""
        if "pka" not in self._cache:
            with obs.span("profile.ncu", workload=self.workload.name):
                self._cache["pka"] = NcuProfiler(self.config).feature_matrix(
                    self.workload, seed=self.seed
                )
        else:
            obs.inc("profile.cache_hits")
        return self._cache["pka"]  # type: ignore[return-value]

    def instruction_counts(self) -> np.ndarray:
        """NVBit view: dynamic instruction count per invocation."""
        if "instructions" not in self._cache:
            with obs.span("profile.nvbit", workload=self.workload.name):
                profile = NvbitProfiler(self.config).profile(
                    self.workload, seed=self.seed
                )
            self._cache["instructions"] = profile.column("instructions")
            self._cache["cta_size"] = profile.column("cta_size")
        else:
            obs.inc("profile.cache_hits")
        return self._cache["instructions"]  # type: ignore[return-value]

    def cta_sizes(self) -> np.ndarray:
        """Threads per block of each invocation (Sieve's tiebreaker)."""
        if "cta_size" not in self._cache:
            self.instruction_counts()
        return self._cache["cta_size"]  # type: ignore[return-value]

    def bbv_table(self) -> BbvTable:
        """BBV view: per-invocation basic-block vectors (Photon's input)."""
        if "bbv" not in self._cache:
            with obs.span("profile.bbv", workload=self.workload.name):
                self._cache["bbv"] = BbvProfiler(self.config).collect(
                    self.workload, seed=self.seed
                )
        else:
            obs.inc("profile.cache_hits")
        return self._cache["bbv"]  # type: ignore[return-value]

    @property
    def num_pka_metrics(self) -> int:
        return len(PKA_METRICS)


class Sampler(Protocol):
    """Common sampling-method interface (STEM and all baselines)."""

    method: str

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        """Produce a sampling plan for the store's workload."""
        ...
