"""Baseline sampler interface and the shared lazy profile store.

Every sampling method consumes a different profiler's output (Table 1).
:class:`ProfileStore` computes each profile on demand and caches it so an
experiment comparing four methods on one workload profiles each signature
exactly once.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

import numpy as np

from .. import obs
from ..core.plan import SamplingPlan
from ..hardware.gpu_config import GPUConfig
from ..profiling.bbv import BbvProfiler, BbvTable
from ..profiling.ncu import NcuProfiler, PKA_METRICS
from ..profiling.nsys import NsysProfiler
from ..profiling.nvbit import NvbitProfiler
from ..workloads.workload import Workload

__all__ = ["ProfileStore", "Sampler"]


class ProfileStore:
    """Lazy, cached access to every profiler's view of one workload."""

    def __init__(self, workload: Workload, config: GPUConfig, seed: int = 0):
        self.workload = workload
        self.config = config
        self.seed = seed
        self._cache: Dict[str, object] = {}

    def execution_times(self) -> np.ndarray:
        """nsys view: per-invocation execution time (STEM's input)."""
        if "times" not in self._cache:
            self._cache["times"] = NsysProfiler(self.config).execution_times(
                self.workload, seed=self.seed
            )
        else:
            obs.inc("profile.cache_hits")
        return self._cache["times"]  # type: ignore[return-value]

    def pka_features(self) -> np.ndarray:
        """NCU view: (n, 12) PKA metric matrix."""
        if "pka" not in self._cache:
            with obs.span("profile.ncu", workload=self.workload.name):
                self._cache["pka"] = NcuProfiler(self.config).feature_matrix(
                    self.workload, seed=self.seed
                )
        else:
            obs.inc("profile.cache_hits")
        return self._cache["pka"]  # type: ignore[return-value]

    def instruction_counts(self) -> np.ndarray:
        """NVBit view: dynamic instruction count per invocation."""
        if "instructions" not in self._cache:
            with obs.span("profile.nvbit", workload=self.workload.name):
                profile = NvbitProfiler(self.config).profile(
                    self.workload, seed=self.seed
                )
            self._cache["instructions"] = profile.column("instructions")
            self._cache["cta_size"] = profile.column("cta_size")
        else:
            obs.inc("profile.cache_hits")
        return self._cache["instructions"]  # type: ignore[return-value]

    def cta_sizes(self) -> np.ndarray:
        """Threads per block of each invocation (Sieve's tiebreaker)."""
        if "cta_size" not in self._cache:
            self.instruction_counts()
        return self._cache["cta_size"]  # type: ignore[return-value]

    def bbv_table(self) -> BbvTable:
        """BBV view: per-invocation basic-block vectors (Photon's input)."""
        if "bbv" not in self._cache:
            with obs.span("profile.bbv", workload=self.workload.name):
                self._cache["bbv"] = BbvProfiler(self.config).collect(
                    self.workload, seed=self.seed
                )
        else:
            obs.inc("profile.cache_hits")
        return self._cache["bbv"]  # type: ignore[return-value]

    @property
    def num_pka_metrics(self) -> int:
        return len(PKA_METRICS)


class Sampler(Protocol):
    """Common sampling-method interface (STEM and all baselines)."""

    method: str

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        """Produce a sampling plan for the store's workload."""
        ...
