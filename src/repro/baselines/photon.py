"""Photon: BBV-driven fine-grained sampled simulation (MICRO '23).

At kernel granularity Photon walks the launch stream chronologically and,
for each launch, searches its already-simulated representatives for one
with the same warp count and a Basic-Block-Vector similarity above a 95%
threshold.  A match means "skip, reuse the representative's result"; a
miss means "simulate this launch and add it as a representative".

Similarity between raw (unnormalized) BBVs ``a`` and ``b`` is::

    sim(a, b) = 1 - |a - b|_1 / (|a|_1 + |b|_1)

so both control-flow shape and dynamic block counts participate: launches
doing different *amounts* of work do not match, but launches doing the
same work with different *memory behaviour* do — the residual ~10% CASIO
error the paper attributes to BBVs' blindness to runtime context.

The pairwise search is what gives Photon its O(N*S*d)–O(N^2*d) processing
cost; :meth:`PhotonSampler.build_plan` refuses workloads beyond
``max_kernels`` the same way the paper's Table 3 marks HuggingFace "N/A".
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..errors import InfeasibleProfilingError
from ..core.plan import PlanCluster, SamplingPlan
from .base import ProfileStore

__all__ = ["PhotonSampler"]


class PhotonSampler:
    """Online BBV matching with a fixed similarity threshold."""

    method = "photon"

    def __init__(
        self,
        threshold: float = 0.95,
        max_kernels: int = 500_000,
        pca_dims: int = None,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if pca_dims is not None and pca_dims < 1:
            raise ValueError("pca_dims must be positive")
        self.threshold = threshold
        self.max_kernels = max_kernels
        #: Optional PCA dimensionality reduction before comparison — the
        #: paper notes GPT-2 BBVs reach 800+ dimensions per kernel
        #: "before the dimension reduction with PCA".
        self.pca_dims = pca_dims
        #: Total representative comparisons performed by the last run
        #: (exposed for the Table 5 processing-cost accounting).
        self.last_num_comparisons = 0

    @staticmethod
    def pca_project(vectors: np.ndarray, dims: int) -> np.ndarray:
        """Project vectors onto their top principal components.

        Magnitude information is preserved (no centering of totals is
        undone): the projection keeps the dominant variance directions so
        similarity comparisons stay meaningful at reduced cost.
        """
        if dims >= vectors.shape[1] or len(vectors) < 2:
            return vectors
        mean = vectors.mean(axis=0)
        centered = vectors - mean
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[:dims]
        projected = centered @ components.T
        # Shift back so vector totals stay positive-ish for the L1-ratio
        # similarity; absolute offset is shared by every row.
        return projected - projected.min() + mean.sum() / max(vectors.shape[1], 1)

    def _match_spec_group(
        self,
        vectors: np.ndarray,
        group_indices: np.ndarray,
    ) -> Dict[int, List[int]]:
        """Chronological matching within one spec's launches.

        Returns ``{representative position: [matched positions...]}`` over
        positions into ``group_indices``.  All launches of one spec share
        a warp count, so the warp-count check is implicit; cross-spec
        matches cannot reach the threshold because specs occupy disjoint
        BBV subspaces (their similarity is 0).
        """
        totals = vectors.sum(axis=1)
        assignment: Dict[int, List[int]] = {}
        comparisons = 0
        # Leader clustering, vectorized one representative at a time.  This
        # is exactly equivalent to the launch-by-launch chronological scan:
        # every launch lands on the earliest-created representative it
        # matches, and representatives are exactly the launches matched by
        # no earlier representative.
        remaining = np.arange(len(group_indices))
        while len(remaining):
            rep = int(remaining[0])
            diffs = np.abs(vectors[remaining] - vectors[rep]).sum(axis=1)
            denom = totals[remaining] + totals[rep]
            with np.errstate(divide="ignore", invalid="ignore"):
                sims = np.where(denom > 0, 1.0 - diffs / denom, 0.0)
            sims[0] = 1.0  # the representative matches itself
            matched = sims >= self.threshold
            comparisons += len(remaining)
            assignment[rep] = [int(p) for p in remaining[matched]]
            remaining = remaining[~matched]
        self.last_num_comparisons += comparisons
        return assignment

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        workload = store.workload
        n = len(workload)
        if n > self.max_kernels:
            raise InfeasibleProfilingError(
                f"Photon is infeasible on {workload.name!r}: BBV comparison "
                f"over {n} kernels grows quadratically (see Sec. 5.6)"
            )
        table = store.bbv_table()
        self.last_num_comparisons = 0

        clusters: List[PlanCluster] = []
        with obs.span("baseline.photon.build_plan", workload=workload.name):
            for sid, (start, stop) in enumerate(table.spec_slices):
                group_indices = np.flatnonzero(workload.spec_ids == sid)
                if len(group_indices) == 0:
                    continue
                vectors = table.vectors[group_indices, start:stop].astype(np.float64)
                if self.pca_dims is not None:
                    vectors = self.pca_project(vectors, self.pca_dims)
                assignment = self._match_spec_group(vectors, group_indices)
                name = workload.specs[sid].name
                for rep_pos, member_positions in assignment.items():
                    clusters.append(
                        PlanCluster(
                            label=f"{name}/rep{rep_pos}",
                            member_count=len(member_positions),
                            sampled_indices=np.array(
                                [group_indices[rep_pos]], dtype=np.int64
                            ),
                        )
                    )
        obs.inc("baseline.plans_built")
        return SamplingPlan(
            method=self.method,
            workload_name=workload.name,
            clusters=clusters,
            metadata={
                "threshold": self.threshold,
                "num_comparisons": self.last_num_comparisons,
            },
        )
