"""TBPoint baseline (Huang et al., IPDPS '14).

The predecessor of PKA from the paper's related work (Sec. 7.2): TBPoint
profiles microarchitecture-independent per-kernel metrics, applies
*hierarchical* (agglomerative) clustering to group similar kernels, and
simulates the kernel **closest to each cluster's center** — a centroid
representative rather than PKA's first-chronological pick.

Like every code-signature method it shares the blindness Figure 10
demonstrates: launch contexts that differ only in cache locality or
pipeline efficiency land in the same cluster, and a single centroid
sample cannot carry their runtime spread.

Implementation note: agglomerative clustering is O(n^2) in memory, so
the linkage runs over the deduplicated feature rows (identical launches
collapse to one row); every invocation is then assigned its row's
cluster.  Workloads whose deduplicated profile still exceeds
``max_distinct_rows`` are refused, mirroring the scalability ceiling of
the original tool.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from ..core.plan import PlanCluster, SamplingPlan
from ..errors import InfeasibleProfilingError
from .base import ProfileStore
from .pka import PkaSampler

__all__ = ["TbpointSampler"]


class TbpointSampler:
    """Hierarchical clustering over metrics, centroid-nearest samples."""

    method = "tbpoint"

    def __init__(
        self,
        max_clusters: int = 20,
        linkage_method: str = "ward",
        max_distinct_rows: int = 4000,
        max_kernels: int = 200_000,
    ):
        if max_clusters < 1:
            raise ValueError("max_clusters must be positive")
        self.max_clusters = max_clusters
        self.linkage_method = linkage_method
        self.max_distinct_rows = max_distinct_rows
        #: Same NCU profiling ceiling as PKA (Table 5).
        self.max_kernels = max_kernels

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        workload = store.workload
        n = len(workload)
        if n > self.max_kernels:
            raise InfeasibleProfilingError(
                f"TBPoint is infeasible on {workload.name!r}: profiling "
                f"{n} kernels would take months (see Table 5)"
            )
        features = PkaSampler.normalize(store.pka_features())

        # Deduplicate rows (repeated launches of identical configuration);
        # when jittered profiles leave too many distinct rows for the
        # O(n^2) linkage, cluster a deterministic subsample and assign the
        # rest to the nearest resulting centroid.
        rounded = np.round(features, 6)
        distinct, inverse = np.unique(rounded, axis=0, return_inverse=True)
        if len(distinct) > self.max_distinct_rows:
            subsample_rng = np.random.default_rng(seed)
            picks = subsample_rng.choice(
                len(distinct), size=self.max_distinct_rows, replace=False
            )
            linkage_rows = distinct[np.sort(picks)]
        else:
            linkage_rows = distinct

        if len(linkage_rows) == 1:
            row_labels = np.zeros(len(distinct), dtype=np.int64)
        else:
            tree = linkage(linkage_rows, method=self.linkage_method)
            k = min(self.max_clusters, len(linkage_rows))
            sub_labels = fcluster(tree, t=k, criterion="maxclust") - 1
            centroids = np.vstack(
                [
                    linkage_rows[sub_labels == j].mean(axis=0)
                    for j in np.unique(sub_labels)
                ]
            )
            dists = (
                (distinct**2).sum(axis=1)[:, None]
                - 2.0 * distinct @ centroids.T
                + (centroids**2).sum(axis=1)[None, :]
            )
            row_labels = dists.argmin(axis=1)
        labels = row_labels[inverse]

        clusters: List[PlanCluster] = []
        for j in np.unique(labels):
            members = np.flatnonzero(labels == j)
            centroid = features[members].mean(axis=0)
            distances = ((features[members] - centroid) ** 2).sum(axis=1)
            chosen = int(members[int(distances.argmin())])
            clusters.append(
                PlanCluster(
                    label=f"tbpoint_cluster_{int(j)}",
                    member_count=len(members),
                    sampled_indices=np.array([chosen], dtype=np.int64),
                )
            )
        return SamplingPlan(
            method=self.method,
            workload_name=workload.name,
            clusters=clusters,
            metadata={
                "max_clusters": self.max_clusters,
                "linkage": self.linkage_method,
                "distinct_rows": int(len(distinct)),
            },
        )
