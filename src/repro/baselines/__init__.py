"""Baseline kernel-sampling methods compared against STEM+ROOT (Table 1)."""

from .base import ProfileStore, Sampler
from .photon import PhotonSampler
from .pka import PkaSampler
from .random_sampling import RandomSampler
from .sieve import SieveSampler
from .tbpoint import TbpointSampler

__all__ = [
    "ProfileStore",
    "Sampler",
    "RandomSampler",
    "PkaSampler",
    "SieveSampler",
    "PhotonSampler",
    "TbpointSampler",
]
