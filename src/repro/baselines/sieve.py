"""Sieve: stratified GPU-compute workload sampling (ISPASS '23).

Sieve's signature is the dynamic instruction count per launch, collected
with NVBit.  Per kernel-name group it measures the coefficient of
variation (CoV) of instruction counts and stratifies:

* stable groups (CoV below ``stable_cov``) — one stratum;
* moderately varying groups — quantile strata over instruction count;
* highly varying groups — more strata (or KDE-derived strata when
  ``use_kde`` is on; the paper turned KDE off for CASIO because it
  oversampled).

From each stratum Sieve simulates the first-chronological launch whose
CTA size equals the stratum's dominant CTA size.  Like PKA, the single
chronological sample per stratum is blind to execution-time variability
within a stratum — instruction counts do not see memory behaviour.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import obs
from ..errors import InfeasibleProfilingError
from ..core.clustering import count_kde_peaks
from ..core.plan import PlanCluster, SamplingPlan
from .base import ProfileStore

__all__ = ["SieveSampler"]


class SieveSampler:
    """Instruction-count stratification with first-chronological samples."""

    method = "sieve"

    def __init__(
        self,
        stable_cov: float = 0.02,
        high_cov: float = 0.5,
        moderate_strata: int = 4,
        high_strata: int = 16,
        select: str = "first",
        use_kde: bool = False,
        max_kernels: int = 300_000,
    ):
        if select not in ("first", "random"):
            raise ValueError("select must be 'first' or 'random'")
        if not 0 <= stable_cov < high_cov:
            raise ValueError("need 0 <= stable_cov < high_cov")
        #: Beyond this, NVBit instrumentation overhead (~90-300x wall time)
        #: makes profiling take months — the paper's HuggingFace "N/A".
        self.max_kernels = max_kernels
        self.stable_cov = stable_cov
        self.high_cov = high_cov
        self.moderate_strata = moderate_strata
        self.high_strata = high_strata
        self.select = select
        self.use_kde = use_kde

    def _num_strata(self, counts: np.ndarray) -> int:
        mean = counts.mean()
        cov = counts.std() / mean if mean > 0 else 0.0
        if cov < self.stable_cov:
            return 1
        if self.use_kde:
            # KDE stratification: one stratum per instruction-count mode.
            return max(1, count_kde_peaks(counts))
        return self.moderate_strata if cov < self.high_cov else self.high_strata

    @staticmethod
    def _quantile_strata(counts: np.ndarray, num_strata: int) -> List[np.ndarray]:
        """Split positions into quantile buckets of the count distribution."""
        if num_strata <= 1:
            return [np.arange(len(counts))]
        edges = np.quantile(counts, np.linspace(0, 1, num_strata + 1)[1:-1])
        labels = np.searchsorted(edges, counts, side="right")
        return [np.flatnonzero(labels == s) for s in range(num_strata)]

    def _pick(
        self,
        group_indices: np.ndarray,
        members: np.ndarray,
        cta: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """First-chronological member with the stratum's dominant CTA size."""
        member_cta = cta[group_indices[members]]
        values, counts = np.unique(member_cta, return_counts=True)
        dominant = values[counts.argmax()]
        eligible = members[member_cta == dominant]
        if self.select == "first":
            return int(group_indices[eligible].min())
        return int(rng.choice(group_indices[eligible]))

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        if rng is None:
            rng = np.random.default_rng(seed)
        workload = store.workload
        if len(workload) > self.max_kernels:
            raise InfeasibleProfilingError(
                f"Sieve is infeasible on {workload.name!r}: NVBit profiling "
                f"of {len(workload)} kernels would take months (see Table 5)"
            )
        counts = store.instruction_counts()
        cta = store.cta_sizes()

        clusters: List[PlanCluster] = []
        with obs.span("baseline.sieve.build_plan", workload=workload.name):
            for name, group_indices in workload.indices_by_name().items():
                group_counts = counts[group_indices]
                strata = self._quantile_strata(
                    group_counts, self._num_strata(group_counts)
                )
                for s, members in enumerate(strata):
                    if len(members) == 0:
                        continue
                    chosen = self._pick(group_indices, members, cta, rng)
                    clusters.append(
                        PlanCluster(
                            label=f"{name}/stratum{s}",
                            member_count=len(members),
                            sampled_indices=np.array([chosen], dtype=np.int64),
                        )
                    )
        obs.inc("baseline.plans_built")
        return SamplingPlan(
            method=self.method,
            workload_name=workload.name,
            clusters=clusters,
            metadata={
                "select": self.select,
                "use_kde": self.use_kde,
                "stable_cov": self.stable_cov,
                "high_cov": self.high_cov,
            },
        )
