"""Uniform random kernel sampling (the paper's `Random` baseline).

Each invocation is selected independently with probability ``fraction``
(10% on Rodinia, 0.1% on CASIO/HuggingFace in the paper).  The estimator
extrapolates by ``N * mean(sampled)`` — unbiased, but with no variance
control: kernels from rare long-tail contexts are easily missed, which is
why the paper reports ~26–28% error on Rodinia/CASIO.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..core.plan import PlanCluster, SamplingPlan
from .base import ProfileStore

__all__ = ["RandomSampler"]


class RandomSampler:
    """Selects each kernel launch independently with a fixed probability."""

    method = "random"

    def __init__(self, fraction: float = 0.001):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction

    def build_plan(
        self,
        store: ProfileStore,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        if rng is None:
            rng = np.random.default_rng(seed)
        with obs.span(
            "baseline.random.build_plan", workload=store.workload.name
        ):
            n = len(store.workload)
            selected = np.flatnonzero(rng.random(n) < self.fraction)
            if len(selected) == 0:
                # Degenerate draw on tiny workloads: keep one kernel so the
                # estimate exists at all.
                selected = np.array([int(rng.integers(n))], dtype=np.int64)
            cluster = PlanCluster(
                label="uniform",
                member_count=n,
                sampled_indices=selected.astype(np.int64),
            )
        obs.inc("baseline.plans_built")
        return SamplingPlan(
            method=self.method,
            workload_name=store.workload.name,
            clusters=[cluster],
            metadata={"fraction": self.fraction},
        )
