"""Memoization & incremental re-planning (never simulate the same thing twice).

Three complementary layers, each exactly-equal by construction:

* :mod:`~repro.memo.dedup` — collapse a plan's repeated with-replacement
  draws to unique invocations, simulate once, inverse-gather back;
* :mod:`~repro.memo.sim_cache` — content-addressed on-disk cache of raw
  per-invocation simulation results shared across repetitions, sweep
  points, DSE variants and runs;
* :mod:`~repro.memo.split_tree` — reusable lazy ROOT candidate-split
  trees, so an epsilon sweep clusters each (workload, seed) once and
  every epsilon point only re-walks acceptance decisions.
"""

from .dedup import DrawMultiset, collapse_draws, expand_unique
from .sim_cache import SIM_VERSION, RawKernelSim, SimResultCache
from .split_tree import SplitNode, SplitTreeCache, build_split_tree

__all__ = [
    "DrawMultiset",
    "collapse_draws",
    "expand_unique",
    "RawKernelSim",
    "SimResultCache",
    "SIM_VERSION",
    "SplitNode",
    "SplitTreeCache",
    "build_split_tree",
]
