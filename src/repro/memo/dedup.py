"""Unique-sample dedup: collapse repeated draws, expand exact estimates.

Sampling with replacement (the CLT's i.i.d. requirement) routinely draws
the same invocation several times inside one plan — and simulating a
drawn invocation is a pure function of (workload, invocation index,
seed, GPU config), so every repeat is pure waste.  This module collapses
a draw list to its unique invocations plus multiplicities, and expands
per-unique results back to the per-draw layout.

Bit-identity discipline
-----------------------
Estimates over the expanded values must run the *original* per-draw
arithmetic.  Expansion is an inverse gather (``unique_vals[inverse]``),
which reproduces the per-draw value array exactly; a "weighted" mean via
``(counts * unique_vals).sum() / counts.sum()`` is **not** equivalent —
IEEE addition of ``c`` repeated terms rounds differently from one
multiply by ``c`` — and would drift in the last ulp.  Downstream code
therefore gathers first and reuses the unchanged estimator code path,
which is how dedup stays invisible to every report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DrawMultiset", "collapse_draws", "expand_unique"]


@dataclass(frozen=True)
class DrawMultiset:
    """A draw list collapsed to unique invocations with multiplicities.

    ``unique[inverse]`` reconstructs the original draw order exactly;
    ``counts[j]`` is the multiplicity of ``unique[j]``.
    """

    unique: np.ndarray
    inverse: np.ndarray
    counts: np.ndarray

    @property
    def num_draws(self) -> int:
        return len(self.inverse)

    @property
    def num_unique(self) -> int:
        return len(self.unique)

    @property
    def collapsed(self) -> int:
        """How many simulations dedup avoids for this draw list."""
        return self.num_draws - self.num_unique


def collapse_draws(indices) -> DrawMultiset:
    """Collapse a (possibly repeating) draw list to its unique support."""
    draws = np.asarray(indices, dtype=np.int64).ravel()
    unique, inverse, counts = np.unique(
        draws, return_inverse=True, return_counts=True
    )
    return DrawMultiset(
        unique=unique,
        inverse=inverse.astype(np.int64, copy=False),
        counts=counts.astype(np.int64, copy=False),
    )


def expand_unique(unique_values: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """Inverse-gather per-unique values back to the per-draw layout.

    The result is elementwise identical to evaluating every draw
    directly, so any estimator applied to it (mean, scaled totals, the
    KKT error model) produces bit-identical numbers to the per-draw
    path.
    """
    return np.asarray(unique_values)[np.asarray(inverse, dtype=np.int64)]
