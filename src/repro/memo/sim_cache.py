"""Content-addressed cross-run cache of raw simulation results.

Simulating an invocation is pure: the raw (pre-noise, pre-extrapolation)
wave cycles, event counters and stall cycles are a deterministic
function of the workload contents, the invocation index, the trace seed
and the full simulator configuration.  Repetitions, epsilon-sweep
points and DSE variants that share that context therefore re-derive
identical raw results — this cache stores them once per machine, with
the same durability discipline as :class:`repro.parallel.ProfileCache`
(content-addressed keys, atomic ``os.replace`` writes, in-process LRU).

What is cached
--------------
The **raw** per-invocation outputs of ``GpuSimulator._execute_trace``
(wave cycles, extrapolation factor, unscaled stall cycles and the
unscaled integer event matrix) — never the post-processed
``KernelSimResult``.  Noise, launch overhead, extrapolation scaling and
rounding are recomputed by the caller through the unchanged vectorized
code path, which is what keeps cached runs bit-identical to cold runs.
``SimStats`` objects are mutable and mutated downstream, so the cache
stores plain arrays and callers materialize fresh stats per use.

Key derivation
--------------
A *context key* hashes the simulator version salt, the workload
fingerprint, ``repr(gpu)``, the trace seed and the simulator's identity
string (latency table, tracer knobs, warmup strategy).  Disk entries
are keyed by ``sha256(context, sorted unique index list)`` — one file
per simulate-call — while the in-process layer additionally memoizes
per (context, index), so a later call over a *different* index subset
still reuses every invocation the process has already simulated.

Integrity
---------
Entry metadata carries a SHA-256 checksum over every stored array
(indices, wave cycles, extrapolation, stall cycles, events), verified
on each disk read.  A mismatch or an unreadable file moves the entry
into the cache's ``quarantine/`` subdirectory (kept for forensics,
excluded from ``len()``), counts it in obs metrics, and reports a miss
so the invocations are transparently re-simulated — a corrupted cache
can cost simulation time but can never poison results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .. import obs

__all__ = ["RawKernelSim", "SimResultCache", "SIM_VERSION"]

#: Bump when the on-disk entry layout changes incompatibly.
#: v2 added the content checksum to entry metadata.
CACHE_FORMAT_VERSION = 2

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"


def _entry_checksum(arrays: Iterable[np.ndarray]) -> str:
    """SHA-256 over each array's bytes, dtype and shape, in order."""
    h = hashlib.sha256()
    for array in arrays:
        h.update(str(array.dtype).encode())
        h.update(repr(tuple(array.shape)).encode())
        h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()

#: Simulator version salt — bump whenever :mod:`repro.sim` changes in a
#: way that alters raw simulation outputs, so stale entries can never be
#: replayed against a newer simulator.
SIM_VERSION = 1


@dataclass(frozen=True)
class RawKernelSim:
    """Raw (unscaled) outcome of simulating one invocation's trace."""

    wave_cycles: float
    extrapolation: float
    stall_cycles: float
    #: Unscaled integer event counters in ``_EVENT_FIELDS`` order.
    events: np.ndarray


class SimResultCache:
    """Content-addressed store for raw simulation results.

    Parameters
    ----------
    root:
        Directory holding the cache (created on demand).
    max_memory_entries:
        Capacity of the per-invocation in-process LRU layer.
    """

    def __init__(self, root: str, max_memory_entries: int = 16384):
        self.root = str(root)
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._memory: "OrderedDict[Tuple[str, int], RawKernelSim]" = OrderedDict()
        #: Per-invocation counters (kept in addition to obs metrics so
        #: callers can read hit rates without enabling observability).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        #: Optional :class:`~repro.resilience.FaultInjector` used by the
        #: chaos harness to flip entry bytes right after a store.
        self.fault_injector = None

    # -- keys ----------------------------------------------------------------
    @staticmethod
    def context_for(workload, gpu, seed: int, simulator_id: str = "") -> str:
        """Context key: everything that shapes raw results except indices."""
        h = hashlib.sha256()
        h.update(
            f"v{CACHE_FORMAT_VERSION}\x00sim{SIM_VERSION}\x00{int(seed)}\x00".encode()
        )
        h.update(workload.fingerprint().encode())
        h.update(b"\x00")
        h.update(repr(gpu).encode())
        h.update(b"\x00")
        h.update(simulator_id.encode())
        return h.hexdigest()

    @staticmethod
    def key_for(context: str, indices: np.ndarray) -> str:
        h = hashlib.sha256()
        h.update(context.encode())
        h.update(b"\x00")
        h.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".npz")

    # -- integrity -----------------------------------------------------------
    def _quarantine_entry(self, path: str, reason: str) -> None:
        """Move a bad entry into ``quarantine/`` and count it.

        The file is kept (not deleted) so corruption can be inspected
        after the fact; quarantined entries are invisible to ``load``
        and excluded from ``len()``, so the invocations are simply
        re-simulated.
        """
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        try:
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            pass  # racing reader already moved it; counting still applies
        self.corrupt += 1
        obs.inc("memo.sim_cache.corrupt_quarantined")
        obs.log_event(
            "memo.sim_cache_quarantined", level="warning", path=path, reason=reason
        )

    # -- memory layer --------------------------------------------------------
    def _memory_get(self, context: str, index: int) -> Optional[RawKernelSim]:
        raw = self._memory.get((context, index))
        if raw is not None:
            self._memory.move_to_end((context, index))
        return raw

    def _memory_put(self, context: str, index: int, raw: RawKernelSim) -> None:
        self._memory[(context, index)] = raw
        self._memory.move_to_end((context, index))
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- public API ----------------------------------------------------------
    def load(
        self, context: str, indices: Iterable[int]
    ) -> Tuple[Dict[int, RawKernelSim], List[int]]:
        """Look up raw results for a set of (unique) invocation indices.

        Returns ``(found, missing)``: whatever subset the memory layer or
        a whole-call disk entry already holds, and the indices the caller
        still has to simulate.  Hit/miss counters are per invocation, so
        ``hits / (hits + misses)`` is the fraction of simulation work the
        cache saved.
        """
        index_list = [int(i) for i in indices]
        found: Dict[int, RawKernelSim] = {}
        missing: List[int] = []
        for index in index_list:
            raw = self._memory_get(context, index)
            if raw is not None:
                found[index] = raw
            else:
                missing.append(index)
        if missing:
            from_disk = self._load_disk(context, np.asarray(index_list, np.int64))
            if from_disk is not None:
                for index, raw in from_disk.items():
                    self._memory_put(context, index, raw)
                found = from_disk
                missing = []
        self.hits += len(found)
        self.misses += len(missing)
        obs.inc("memo.sim_cache.hits", len(found))
        obs.inc("memo.sim_cache.misses", len(missing))
        return found, missing

    def store(
        self, context: str, indices: Iterable[int], raws: Dict[int, RawKernelSim]
    ) -> str:
        """Persist one simulate-call's raw results; returns the entry key."""
        index_arr = np.asarray([int(i) for i in indices], dtype=np.int64)
        for index in index_arr:
            self._memory_put(context, int(index), raws[int(index)])
        key = self.key_for(context, index_arr)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        n = len(index_arr)
        events = np.empty((n, len(next(iter(raws.values())).events) if n else 0),
                          dtype=np.int64) if n else np.empty((0, 0), dtype=np.int64)
        wave = np.empty(n, dtype=np.float64)
        extrap = np.empty(n, dtype=np.float64)
        stall = np.empty(n, dtype=np.float64)
        for i, index in enumerate(index_arr):
            raw = raws[int(index)]
            wave[i] = raw.wave_cycles
            extrap[i] = raw.extrapolation
            stall[i] = raw.stall_cycles
            events[i] = raw.events
        meta = {
            "version": CACHE_FORMAT_VERSION,
            "sim_version": SIM_VERSION,
            "context": context,
            "n": int(n),
            "checksum": _entry_checksum([index_arr, wave, extrap, stall, events]),
        }
        blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-" + key[:8] + "-", suffix=".npz", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    indices=index_arr,
                    wave_cycles=wave,
                    extrapolation=extrap,
                    stall_cycles=stall,
                    events=events,
                    meta=blob,
                )
            os.replace(tmp, path)  # atomic on POSIX: readers see old or new
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stores += 1
        obs.inc("memo.sim_cache.stores")
        if self.fault_injector is not None and self.fault_injector.cache_corrupt_decision(
            key
        ):
            self.fault_injector.corrupt_cache_entry(path, key)
        return key

    # -- disk layer ----------------------------------------------------------
    def _load_disk(
        self, context: str, indices: np.ndarray
    ) -> Optional[Dict[int, RawKernelSim]]:
        path = self._path(self.key_for(context, indices))
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(bytes(payload["meta"]).decode())
                stored = np.array(payload["indices"])
                wave = np.array(payload["wave_cycles"])
                extrap = np.array(payload["extrapolation"])
                stall = np.array(payload["stall_cycles"])
                events = np.array(payload["events"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                json.JSONDecodeError):
            # Torn or foreign file: quarantine it, then re-simulate.
            self._quarantine_entry(path, reason="unreadable")
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("version") != CACHE_FORMAT_VERSION
            or meta.get("sim_version") != SIM_VERSION
            or meta.get("context") != context
            or not np.array_equal(stored, indices)
        ):
            return None
        if meta.get("checksum") != _entry_checksum(
            [stored, wave, extrap, stall, events]
        ):
            # Bit rot or a flipped byte: the entry parsed but its content
            # no longer matches what was stored.
            self._quarantine_entry(path, reason="checksum_mismatch")
            return None
        return {
            int(index): RawKernelSim(
                wave_cycles=float(wave[i]),
                extrapolation=float(extrap[i]),
                stall_cycles=float(stall[i]),
                events=events[i],
            )
            for i, index in enumerate(stored)
        }

    # -- maintenance ---------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process layer (the disk layer is untouched)."""
        self._memory.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __len__(self) -> int:
        """Number of complete entries on disk (quarantine excluded)."""
        count = 0
        if os.path.isdir(self.root):
            for sub in os.listdir(self.root):
                if sub == QUARANTINE_DIR:
                    continue
                subdir = os.path.join(self.root, sub)
                if os.path.isdir(subdir):
                    count += sum(
                        1
                        for f in os.listdir(subdir)
                        if f.endswith(".npz") and not f.startswith(".tmp-")
                    )
        return count
