"""Reusable ROOT candidate-split trees (incremental re-planning).

ROOT's recursion interleaves two very different computations:

* **structure** — k-means splits, which depend only on the execution
  times, the structural knobs (``k``, ``min_cluster_size``,
  ``max_depth``) and the k-means seeding — *not* on the error bound; and
* **acceptance** — the Eq. (7)–(8) test deciding whether a split pays
  for itself, which is a cheap closed-form function of the children's
  statistics and *does* depend on epsilon.

An epsilon sweep therefore re-runs the expensive structure work to
arrive at the same candidate splits and only ever changes the acceptance
decisions.  This module factors the structure into an explicit
:class:`SplitNode` tree that is expanded **lazily** (a node's k-means
runs the first time any walk wants its children) and **memoized** (via
:class:`SplitTreeCache`), so ``run_error_bound_sweep`` clusters each
(workload, seed) once and every epsilon point only re-walks the tree.

Determinism contract
--------------------
Each node's k-means seeding derives from ``(salt, *path)`` — the tree's
salt plus the node's child-position path from the root — never from a
shared generator stream.  Expansion order therefore cannot change any
node's split: a node first expanded during an ``eps=0.25`` walk gets
bit-identical children to the same node expanded during an ``eps=0.03``
walk (or during a from-scratch run), which is what makes cached-tree
clustering provably equal to re-clustering from scratch
(``tests/test_memo.py`` asserts this equivalence).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.clustering import kmeans_1d
from ..core.stem import ClusterStats

__all__ = ["SplitNode", "build_split_tree", "SplitTreeCache"]

#: Node leaf reasons (why a node can never have children).
STRUCTURAL = "structural"
DEGENERATE = "degenerate_kmeans"


@dataclass
class SplitNode:
    """One node of a candidate split tree.

    ``children`` is populated on first expansion; ``leaf_reason`` records
    why a node is terminal (``"structural"`` for the size/depth/variance
    stop conditions, ``"degenerate_kmeans"`` when k-means failed to
    produce two non-empty subclusters) or stays ``None`` for inner nodes.
    """

    indices: np.ndarray
    times: np.ndarray
    stats: ClusterStats
    depth: int
    salt: int
    path: Tuple[int, ...] = ()
    expanded: bool = False
    leaf_reason: Optional[str] = None
    children: List["SplitNode"] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.indices)

    def ensure_children(
        self, k: int, min_cluster_size: int, max_depth: int
    ) -> List["SplitNode"]:
        """Expand this node (once), returning its candidate children.

        Expansion consults only the structural knobs — never epsilon —
        and seeds k-means from ``(salt, *path)``, so the result is a pure
        function of the node's contents no matter which walk (or which
        epsilon) triggered it.
        """
        if self.expanded:
            return self.children
        self.expanded = True
        if (
            self.size < min_cluster_size
            or self.depth >= max_depth
            or self.stats.sigma == 0.0
        ):
            self.leaf_reason = STRUCTURAL
            return self.children
        rng = np.random.default_rng((self.salt,) + self.path)
        result = kmeans_1d(self.times, k, rng=rng)
        member_lists = [m for m in result.cluster_indices() if len(m)]
        if len(member_lists) < 2:
            self.leaf_reason = DEGENERATE
            return self.children
        obs.inc("memo.tree_nodes_expanded")
        for j, members in enumerate(member_lists):
            child_times = self.times[members]
            self.children.append(
                SplitNode(
                    indices=self.indices[members],
                    times=child_times,
                    stats=ClusterStats.from_times(child_times),
                    depth=self.depth + 1,
                    salt=self.salt,
                    path=self.path + (j,),
                )
            )
        return self.children


def build_split_tree(
    times: np.ndarray, indices: np.ndarray, salt: int
) -> SplitNode:
    """Root node of a (lazy) candidate split tree for one kernel group."""
    t = np.asarray(times, dtype=np.float64)
    idx = np.asarray(indices, dtype=np.int64)
    return SplitNode(
        indices=idx,
        times=t,
        stats=ClusterStats.from_times(t),
        depth=0,
        salt=int(salt),
    )


class SplitTreeCache:
    """In-process LRU memo of candidate split trees.

    Keys cover everything that shapes a tree's *structure*: the group's
    times and indices byte-for-byte, the k-means salt, and the structural
    knobs.  Epsilon is deliberately absent — every epsilon walks the same
    tree, which is the whole point.

    The cache is in-memory (trees hold live numpy arrays and are rebuilt
    cheaply relative to disk round-trips); with parallel grid workers
    each process keeps its own cache, and cross-run reuse comes from the
    profile/simulation caches instead.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max(1, int(max_entries))
        self._trees: "OrderedDict[str, SplitNode]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(
        times: np.ndarray,
        indices: np.ndarray,
        salt: int,
        k: int,
        min_cluster_size: int,
        max_depth: int,
    ) -> str:
        h = hashlib.sha256()
        h.update(
            f"{int(salt)}\x00{int(k)}\x00{int(min_cluster_size)}"
            f"\x00{int(max_depth)}\x00".encode()
        )
        h.update(np.ascontiguousarray(times, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
        return h.hexdigest()

    def get_or_build(
        self, key: str, builder: Callable[[], SplitNode]
    ) -> SplitNode:
        node = self._trees.get(key)
        if node is not None:
            self._trees.move_to_end(key)
            self.hits += 1
            obs.inc("memo.tree_cache.hits")
            return node
        self.misses += 1
        obs.inc("memo.tree_cache.misses")
        node = builder()
        self._trees[key] = node
        self._trees.move_to_end(key)
        while len(self._trees) > self.max_entries:
            self._trees.popitem(last=False)
        return node

    def __len__(self) -> int:
        return len(self._trees)

    def clear(self) -> None:
        self._trees.clear()

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
