"""Warp-level trace generation from kernel descriptors.

The simulator is trace-driven, as MacSim and Accel-Sim are.  A trace for
one kernel invocation is a per-warp instruction stream plus an address
stream for its global-memory operations.  Traces are *compact*: the
per-warp stream is capped at ``max_instructions_per_warp`` and the cycle
count extrapolated by the work ratio, the standard loop-extrapolation
reduction for long kernels (the sampled-simulation literature's
intra-kernel reduction; our ground truth and sampled runs share it, so
comparisons stay internally consistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..workloads.kernel import KernelInvocation

__all__ = ["Op", "WarpTrace", "KernelTrace", "TraceGenerator"]


class Op:
    """Instruction-kind opcodes used in warp traces."""

    FP32 = 0
    FP16 = 1
    INT = 2
    SFU = 3
    SHARED = 4
    BRANCH = 5
    LOAD = 6
    STORE = 7


@dataclass
class WarpTrace:
    """One warp's instruction stream.

    ``kinds`` holds opcode codes in program order; ``addresses`` holds one
    transaction address per memory instruction, consumed in order.
    """

    kinds: np.ndarray
    addresses: np.ndarray

    def __len__(self) -> int:
        return len(self.kinds)


@dataclass
class KernelTrace:
    """Compact trace of one kernel invocation."""

    invocation: KernelInvocation
    warps: List[WarpTrace]
    #: Thread blocks per SM wave actually traced.
    resident_warps: int
    #: Multiply simulated-wave cycles by this to cover the full kernel:
    #: (waves across the whole GPU) x (uncaptured loop iterations).
    extrapolation: float
    #: Scale caches by this factor when simulating the trace: the trace's
    #: scaled address space stands in for the real working set.
    cache_scale: float = 1.0


class TraceGenerator:
    """Builds compact kernel traces from specs and launch contexts."""

    def __init__(
        self,
        num_sms: int,
        max_blocks_per_sm: int = 16,
        max_warps_per_sm: int = 48,
        max_instructions_per_warp: int = 192,
        max_resident_warps: int = 24,
        line_bytes: int = 128,
    ):
        self.num_sms = num_sms
        self.max_blocks_per_sm = max_blocks_per_sm
        self.max_warps_per_sm = max_warps_per_sm
        self.max_instructions_per_warp = max_instructions_per_warp
        self.max_resident_warps = max_resident_warps
        self.line_bytes = line_bytes

    # -- instruction-stream synthesis ------------------------------------
    @staticmethod
    def _interleave(mix_counts: List[int], kinds: List[int], length: int) -> np.ndarray:
        """Spread instruction classes evenly through the stream.

        Mirrors how compilers schedule memory operations among arithmetic
        to hide latency: each class is distributed at its own stride.
        """
        total = sum(mix_counts)
        if total == 0:
            return np.full(length, Op.INT, dtype=np.int8)
        stream = np.empty(total, dtype=np.int8)
        positions = np.argsort(
            np.concatenate(
                [
                    (np.arange(count) + 0.5) / count + 1e-9 * kind
                    for count, kind in zip(mix_counts, kinds)
                    if count
                ]
            ),
            kind="stable",
        )
        flat_kinds = np.concatenate(
            [np.full(c, k, dtype=np.int8) for c, k in zip(mix_counts, kinds) if c]
        )
        stream[positions.argsort(kind="stable")] = flat_kinds
        # Tile or trim to the requested traced length.
        if total >= length:
            return stream[:length]
        reps = int(np.ceil(length / total))
        return np.tile(stream, reps)[:length]

    def _addresses(
        self,
        invocation: KernelInvocation,
        warp_index: int,
        count: int,
        ws_lines: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-warp coalesced transaction addresses.

        With probability ``locality`` a transaction re-touches a hot
        region (sized as a fraction of the working set); otherwise it
        streams through cold addresses or, for ``random_fraction`` of
        accesses, lands anywhere in the working set — so the hit rate a
        cache of a given capacity achieves responds to both the locality
        knob and the cache size, which is what the DSE experiments vary.
        """
        spec = invocation.spec
        context = invocation.context

        # The compact trace works in a *scaled address space*: the trace's
        # total access count stands in for the full working set, and the
        # simulator scales cache capacities by the same ratio (see
        # :meth:`address_space_scale`).  Footprint-to-capacity ratios —
        # the quantity cache behaviour depends on — are thereby preserved
        # despite the trace reduction.
        hot_lines = max(2, int(round(ws_lines * 0.01)))
        warm_lines = max(4, int(round(ws_lines * 0.2)))
        warp_lines = max(1, (warp_index * 7919) % ws_lines)

        p_hot = 0.35 * context.locality
        p_warm = p_hot + 0.55 * context.locality + 0.15
        u = rng.random(count)
        hot = u < p_hot
        warm = ~hot & (u < p_warm)
        cold = ~hot & ~warm
        random_access = cold & (rng.random(count) < spec.memory.random_fraction)
        streaming = cold & ~random_access

        # NOTE: the rng call sequence above and below is part of the
        # deterministic trace identity — reordering or fusing any of the
        # draws would change every downstream result.  Zero-size
        # ``integers`` calls are stream-neutral (they consume no bits),
        # so skipping them when a class is empty is bit-identical.
        lines = np.empty(count, dtype=np.int64)
        n_hot = int(np.count_nonzero(hot))
        if n_hot:
            lines[hot] = rng.integers(0, hot_lines, size=n_hot)
        n_warm = int(np.count_nonzero(warm))
        if n_warm:
            lines[warm] = hot_lines + rng.integers(0, warm_lines, size=n_warm)
        n_random = int(np.count_nonzero(random_access))
        if n_random:
            lines[random_access] = rng.integers(0, ws_lines, size=n_random)
        # Streaming accesses: a strided walk from the warp's base line.
        n_stream = int(np.count_nonzero(streaming))
        if n_stream:
            lines[streaming] = (
                warp_lines + np.arange(n_stream, dtype=np.int64)
            ) % ws_lines
        return lines * self.line_bytes

    # -- public API -------------------------------------------------------
    def generate(
        self, invocation: KernelInvocation, seed: int = 0
    ) -> KernelTrace:
        """Build the compact trace of one invocation."""
        spec = invocation.spec
        context = invocation.context
        rng = np.random.default_rng(
            (seed * 0x9E3779B9 + invocation.index * 0x85EBCA6B) & 0xFFFFFFFF
        )

        mix = spec.mix
        per_thread_total = max(mix.total(), 1)
        scaled_total = max(1, int(round(per_thread_total * context.work_scale)))
        traced_len = min(self.max_instructions_per_warp, scaled_total)

        kinds = self._interleave(
            [
                mix.fp32,
                mix.fp16,
                mix.int_alu,
                mix.sfu,
                mix.shared_ops(),
                mix.branch,
                mix.load_global,
                mix.store_global,
            ],
            [Op.FP32, Op.FP16, Op.INT, Op.SFU, Op.SHARED, Op.BRANCH, Op.LOAD, Op.STORE],
            traced_len,
        )

        # Resident warps of one SM wave.  A launch too small to fill every
        # SM leaves each SM with fewer resident blocks, so adding SMs
        # still spreads the work (and its memory traffic) thinner.
        blocks_per_sm = min(
            self.max_blocks_per_sm,
            max(1, self.max_warps_per_sm // max(spec.warps_per_block(), 1)),
        )
        total_blocks = spec.num_blocks()
        blocks_per_sm = min(
            blocks_per_sm, max(1, -(-total_blocks // self.num_sms))
        )
        resident = min(
            self.max_resident_warps, blocks_per_sm * spec.warps_per_block()
        )
        resident = min(resident, spec.num_warps())

        warps: List[WarpTrace] = []
        n_mem = int(np.count_nonzero((kinds == Op.LOAD) | (kinds == Op.STORE)))
        # Scaled address space: the wave's total transaction count stands
        # in for the real working set (footprint-to-capacity preserved).
        ws_lines = max(64, n_mem * max(resident, 1))
        working_set = max(
            int(spec.memory.working_set_bytes * min(context.work_scale, 4.0)),
            self.line_bytes * 4,
        )
        cache_scale = ws_lines * self.line_bytes / working_set
        for w in range(resident):
            addresses = self._addresses(invocation, w, n_mem, ws_lines, rng)
            warps.append(WarpTrace(kinds=kinds.copy(), addresses=addresses))

        # Extrapolation: waves across the GPU x untraced loop iterations
        # x untraced resident warps.
        blocks_per_wave = max(1, blocks_per_sm * self.num_sms)
        waves = max(1.0, total_blocks / blocks_per_wave)
        loop_factor = scaled_total / traced_len
        warp_factor = max(
            1.0,
            min(self.max_warps_per_sm, blocks_per_sm * spec.warps_per_block())
            / max(resident, 1),
        )
        return KernelTrace(
            invocation=invocation,
            warps=warps,
            resident_warps=resident,
            extrapolation=waves * loop_factor * warp_factor,
            cache_scale=cache_scale,
        )
