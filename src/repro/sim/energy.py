"""Energy estimation over cycle-level simulation statistics.

The paper's introduction lists power and energy estimation among the
uses of cycle-level simulation that sampling must keep viable.  This
module attaches a standard event-based energy model to
:class:`~repro.sim.stats.SimStats`: each microarchitectural event class
carries a per-event energy, plus static leakage proportional to cycles —
so a sampled simulation's weighted-sum cycle/stat estimates translate
directly into an energy estimate, with the same error characteristics
the evaluation measures for time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hardware.gpu_config import GPUConfig
from .stats import SimStats

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (nanojoules) attributed per subsystem."""

    compute_nj: float
    l1_nj: float
    l2_nj: float
    dram_nj: float
    static_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.compute_nj + self.l1_nj + self.l2_nj + self.dram_nj + self.static_nj
        )

    def shares(self) -> Dict[str, float]:
        total = self.total_nj or 1.0
        return {
            "compute": self.compute_nj / total,
            "l1": self.l1_nj / total,
            "l2": self.l2_nj / total,
            "dram": self.dram_nj / total,
            "static": self.static_nj / total,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (nJ), CACTI/McPAT-class constants.

    Defaults approximate published per-access figures for a ~12 nm GPU:
    arithmetic ops cost single-digit picojoules, cache accesses tens, and
    a DRAM line fill a few nanojoules.
    """

    fp32_nj: float = 0.004
    fp16_nj: float = 0.002
    int_nj: float = 0.002
    sfu_nj: float = 0.02
    shared_nj: float = 0.01
    branch_nj: float = 0.002
    l1_access_nj: float = 0.03
    l2_access_nj: float = 0.2
    dram_line_nj: float = 4.0
    #: Static power per SM, watts (converted via clock to nJ/cycle).
    static_watts_per_sm: float = 0.4

    def static_nj_per_cycle(self, config: GPUConfig) -> float:
        # One simulated SM's share; cycles are per-SM timeline cycles.
        return self.static_watts_per_sm / (config.clock_ghz * 1e9) * 1e9

    def evaluate(self, stats: SimStats, config: GPUConfig) -> EnergyBreakdown:
        """Attribute energy to the events in one stats record."""
        compute = (
            stats.fp32_ops * self.fp32_nj
            + stats.fp16_ops * self.fp16_nj
            + stats.int_ops * self.int_nj
            + stats.sfu_ops * self.sfu_nj
            + stats.shared_ops * self.shared_nj
            + stats.branches * self.branch_nj
        )
        l1 = (stats.l1_hits + stats.l1_misses) * self.l1_access_nj
        l2 = (stats.l2_hits + stats.l2_misses) * self.l2_access_nj
        dram = stats.dram_accesses * self.dram_line_nj
        static = stats.cycles * self.static_nj_per_cycle(config)
        return EnergyBreakdown(
            compute_nj=compute,
            l1_nj=l1,
            l2_nj=l2,
            dram_nj=dram,
            static_nj=static,
        )
