"""Set-associative cache model with LRU replacement.

Used for the per-SM L1 and the (per-SM slice of the) shared L2 in the
cycle-level simulator.  Accesses are warp-level transactions: one address
per coalesced warp access, tagged at cache-line granularity.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["Cache", "CacheStats"]


class CacheStats:
    """Hit/miss counters of one cache instance."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class Cache:
    """A set-associative, write-allocate, LRU cache.

    Implementation note: each set is a list of tags in LRU order (most
    recent last).  Line fills on miss; no writeback traffic is modeled
    beyond the allocate itself (GPU L2 write handling guarantees write
    hits, as the paper notes in Sec. 5.5).
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, associativity: int = 8):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        num_lines = max(1, size_bytes // line_bytes)
        self.associativity = min(associativity, num_lines)
        self.num_sets = max(1, num_lines // self.associativity)
        self.line_bytes = line_bytes
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit.  Allocates on miss."""
        line = address // self.line_bytes
        set_index = line % self.num_sets
        ways = self._sets.get(set_index)
        if ways is None:
            ways = []
            self._sets[set_index] = ways
        try:
            ways.remove(line)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.associativity:
                ways.pop(0)  # evict LRU
            ways.append(line)
            return False
        ways.append(line)  # refresh recency
        self.stats.hits += 1
        return True

    def flush(self) -> None:
        """Invalidate all lines (the paper's extreme-case L2-flush study)."""
        self._sets.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (content untouched) — used to keep
        untimed warmup accesses out of the measured statistics."""
        self.stats = CacheStats()

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
