"""Multi-SM detailed simulation with explicit shared-resource contention.

The default :class:`~repro.sim.simulator.GpuSimulator` details one SM and
folds the other SMs' pressure into a bandwidth share.  This module
simulates ``num_detailed_sms`` SMs *concurrently* in one event loop:
each SM has its own issue port, warps, and L1, while the L2 and the DRAM
channel are genuinely shared — so inter-SM cache interference and memory
queueing emerge instead of being approximated.

Cost scales linearly with the detailed-SM count; the remaining SMs are
covered by wave extrapolation exactly as in the single-SM path.  Use it
when studying contention-sensitive questions (e.g. how DSE conclusions
shift when interference is explicit); the sampling experiments use the
single-SM path for speed.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .cache import Cache
from .memory import DramModel
from .sm import LatencyTable, StreamingMultiprocessor
from .simulator import KernelSimResult
from .stats import SimStats
from .trace import KernelTrace, Op, TraceGenerator

__all__ = ["MultiSmSimulator"]


class MultiSmSimulator:
    """Simulates several SMs sharing L2 capacity and DRAM bandwidth."""

    def __init__(
        self,
        config: GPUConfig,
        num_detailed_sms: int = 4,
        latencies: Optional[LatencyTable] = None,
        max_instructions_per_warp: int = 128,
        max_resident_warps: int = 16,
        noise: float = 0.02,
    ):
        if num_detailed_sms < 1:
            raise ValueError("num_detailed_sms must be positive")
        self.config = config
        self.num_detailed_sms = min(num_detailed_sms, config.num_sms)
        self.latencies = latencies or self._derive_latencies(config)
        self.tracer = TraceGenerator(
            num_sms=config.num_sms,
            max_blocks_per_sm=config.max_blocks_per_sm,
            max_warps_per_sm=config.max_warps_per_sm,
            max_instructions_per_warp=max_instructions_per_warp,
            max_resident_warps=max_resident_warps,
            line_bytes=config.cache_line_bytes,
        )
        self.noise = noise

    @staticmethod
    def _derive_latencies(config: GPUConfig) -> LatencyTable:
        cycles_per_ns = config.clock_ghz
        return LatencyTable(
            l2_hit=max(20.0, config.l2_latency_ns * cycles_per_ns),
            dram=max(100.0, config.dram_latency_ns * cycles_per_ns),
        )

    # -- shared-resource construction ---------------------------------------
    def _shared_l2(self, cache_scale: float) -> Cache:
        line = self.config.cache_line_bytes
        # The detailed group shares its proportional slice of L2 capacity.
        share = self.config.l2_bytes * self.num_detailed_sms / self.config.num_sms
        return Cache(
            max(line * 4, int(share * cache_scale)),
            line_bytes=line,
            associativity=16,
        )

    def _shared_dram(self) -> DramModel:
        # The detailed group's fair share of total DRAM bandwidth; the K
        # simulated SMs then contend for it explicitly.
        share_gbps = (
            self.config.dram_bandwidth_gbps
            * self.num_detailed_sms
            / self.config.num_sms
        )
        return DramModel(
            latency_cycles=0.0,
            bandwidth_bytes_per_cycle=max(share_gbps / self.config.clock_ghz, 1e-3),
            line_bytes=self.config.cache_line_bytes,
        )

    # -- the multi-SM event loop ------------------------------------------------
    def _execute_group(
        self, traces: List[KernelTrace]
    ) -> Tuple[float, SimStats]:
        """Run one wave on each detailed SM concurrently."""
        assert traces
        cache_scale = traces[0].cache_scale
        l2 = self._shared_l2(cache_scale)
        dram = self._shared_dram()
        line = self.config.cache_line_bytes
        sms = [
            StreamingMultiprocessor(
                self.latencies,
                l1=Cache(
                    max(line * 2, int(self.config.l1_bytes_per_sm * cache_scale)),
                    line_bytes=line,
                    associativity=8,
                ),
                l2=l2,
                dram=dram,
            )
            for _ in traces
        ]

        stats = SimStats()
        counters: Dict[int, str] = {
            Op.FP32: "fp32_ops", Op.FP16: "fp16_ops", Op.INT: "int_ops",
            Op.SFU: "sfu_ops", Op.SHARED: "shared_ops", Op.BRANCH: "branches",
            Op.LOAD: "global_loads", Op.STORE: "global_stores",
        }

        pcs = [[0] * len(t.warps) for t in traces]
        cursors = [[0] * len(t.warps) for t in traces]
        issue_free = [0.0] * len(traces)
        heap: List[Tuple[float, int, int]] = []
        for s, trace in enumerate(traces):
            for w in range(len(trace.warps)):
                heap.append((0.0, s, w))
        heapq.heapify(heap)
        last_completion = 0.0

        while heap:
            ready, s, w = heapq.heappop(heap)
            warp = traces[s].warps[w]
            if pcs[s][w] >= len(warp.kinds):
                continue
            issue_at = max(ready, issue_free[s])
            stats.stall_cycles += max(0.0, issue_at - ready)
            issue_free[s] = issue_at + 1.0

            kind = int(warp.kinds[pcs[s][w]])
            pcs[s][w] += 1
            stats.instructions += 1
            setattr(stats, counters[kind], getattr(stats, counters[kind]) + 1)

            if kind in (Op.LOAD, Op.STORE):
                address = int(warp.addresses[cursors[s][w]])
                cursors[s][w] += 1
                latency = sms[s]._memory_latency(address, issue_at, stats)
            else:
                latency = sms[s]._compute_latency(
                    kind, traces[s].invocation.context.efficiency
                )
            completion = issue_at + latency
            last_completion = max(last_completion, completion)
            if pcs[s][w] < len(warp.kinds):
                heapq.heappush(heap, (completion, s, w))

        # Merge L1 stats (per SM) into the group record.
        stats.l1_hits = sum(sm.l1.stats.hits for sm in sms)
        stats.l1_misses = sum(sm.l1.stats.misses for sm in sms)
        return last_completion, stats

    # -- public API --------------------------------------------------------------
    def simulate_invocation(
        self, workload: Workload, index: int, seed: int = 0
    ) -> KernelSimResult:
        """Simulate one kernel with explicit multi-SM contention."""
        invocation = workload.invocation(index)
        # Distinct per-SM traces: the warp-index offsets give each SM its
        # own streaming bases while the reuse regions stay shared.
        traces = [
            self.tracer.generate(invocation, seed=seed * 131 + sm_index)
            for sm_index in range(self.num_detailed_sms)
        ]
        wave_cycles, stats = self._execute_group(traces)

        # Extrapolate: the group covered num_detailed_sms SMs of one wave.
        base = traces[0]
        extrapolation = base.extrapolation / 1.0  # waves already per-GPU
        rng = np.random.default_rng((seed * 0x9E3779B9 + index) & 0xFFFFFFFF)
        noise = (
            float(np.exp(rng.standard_normal() * self.noise - 0.5 * self.noise**2))
            if self.noise
            else 1.0
        )
        launch_cycles = self.config.launch_overhead_us * self.config.cycles_per_us()
        cycles = (wave_cycles * extrapolation + launch_cycles) * noise
        factor = extrapolation * self.config.num_sms / self.num_detailed_sms
        for field_name in (
            "instructions", "fp32_ops", "fp16_ops", "int_ops", "sfu_ops",
            "shared_ops", "branches", "global_loads", "global_stores",
            "l1_hits", "l1_misses", "l2_hits", "l2_misses",
            "dram_accesses", "dram_bytes",
        ):
            setattr(stats, field_name, int(round(getattr(stats, field_name) * factor)))
        stats.cycles = cycles
        obs.inc("sim.kernels_executed")
        obs.observe("sim.kernel_cycles", cycles)
        return KernelSimResult(
            invocation_index=index,
            cycles=cycles,
            wave_cycles=wave_cycles,
            extrapolation=extrapolation,
            stats=stats,
        )

    def cycle_counts(self, workload: Workload, seed: int = 0) -> np.ndarray:
        """Per-invocation cycles for a whole (reduced) workload."""
        with obs.span(
            "sim.multi_sm.workload",
            workload=workload.name,
            detailed_sms=self.num_detailed_sms,
        ):
            return np.array(
                [
                    self.simulate_invocation(workload, i, seed=seed).cycles
                    for i in range(len(workload))
                ],
                dtype=np.float64,
            )
