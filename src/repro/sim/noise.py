"""Vectorized per-invocation noise factors, bit-identical to keyed Generators.

``GpuSimulator._noise_factor`` draws one log-normal factor per invocation
from ``np.random.default_rng((seed * 0x9E3779B9 + index) & 0xFFFFFFFF)``.
Constructing a ``Generator`` (SeedSequence entropy pool + PCG64 seeding)
per invocation costs far more than the single draw it feeds, and shows up
once the wave simulation itself is batched.  This module replays the
exact numpy pipeline for *many* keys at once with array operations:

1. ``SeedSequence(key).generate_state(4, uint64)`` — the entropy-pool
   hash (uint32 multiply/xor mixing) vectorized over keys.
2. PCG64 seeding and output — 128-bit LCG state as (hi, lo) uint64 pairs
   with 32-bit limb arithmetic for the carry.
3. The first ``standard_normal()`` draw — the ziggurat accept path
   (~98.8% of keys) vectorized with the exact constant tables numpy
   ships; the rare rejection/tail lanes fall back to a direct scalar
   port that uses ``math.exp``/``math.log1p`` (the same libm calls the C
   implementation makes).

Bit-identity is enforced, not assumed: the first batched call verifies a
set of sentinel keys — chosen to exercise the accept, wedge-rejection,
multi-round and tail paths — against ``np.random.default_rng`` itself.
If the installed numpy produces different bits (different ziggurat
tables or seeding pipeline), the module permanently falls back to the
per-key scalar path for the rest of the process, so results never
depend on this optimization being right for the running numpy.

The ziggurat tables below are the 256-entry Marsaglia–Tsang constants
from numpy's ``distributions.c``, stored as exact uint64 bit patterns
(regenerating them from the textbook recurrence differs in the last
bits, which is exactly what bit-identity cannot tolerate).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

__all__ = ["first_standard_normal", "noise_factors", "uses_fallback"]

_U32 = np.uint32
_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_MASK52 = _U64(0x000FFFFFFFFFFFFF)

# SeedSequence hashing constants (numpy/random/bit_generator.pyx).
_XSHIFT = _U32(16)
_INIT_A = _U32(0x43B0D7E5)
_MULT_A = _U32(0x931E8875)
_INIT_B = _U32(0x8B51F9DD)
_MULT_B = _U32(0x58F38DED)
_MIX_MULT_L = _U32(0xCA01F9DD)
_MIX_MULT_R = _U32(0x4973F715)

# PCG64 128-bit LCG multiplier (pcg64.h), split into uint64 halves.
_PCG_MUL_HI = _U64(2549297995355413924)
_PCG_MUL_LO = _U64(4865540595714422341)

# Ziggurat geometry (distributions.c).
_ZIG_R = 3.6541528853610088
_ZIG_INV_R = 0.27366123732975828
_TO_DBL = 1.0 / 9007199254740992.0  # 2**-53

_KI_HEX = (
    "000ef33d8025ef6a0000000000000000000c08be98fbc6a8000da354fabd8142"
    "000e51f67ec1eeea000eb255e9d3f77e000eef4b817ecab9000f19470afa44aa"
    "000f37ed61ffcb18000f4f469561255c000f61a5e41ba396000f707a755396a4"
    "000f7cb2ec28449a000f86f10c6357d3000f8fa6578325de000f9724c74dd0da"
    "000f9da907dbf509000fa360f581fa74000fa86fde5b4bf8000facf160d354dc"
    "000fb0fb6718b90f000fb49f8d5374c6000fb7ec2366fe77000fbaece9a1e50e"
    "000fbdab9d040bed000fc03060ff6c57000fc2821037a248000fc4a67ae25bd1"
    "000fc6a2977aee31000fc87aa92896a4000fca325e4bde85000fcbcce902231a"
    "000fcd4d12f839c4000fceb54d8fec99000fd007bf1dc930000fd1464dd6c4e6"
    "000fd272a8e2f450000fd38e4ff0c91e000fd49a9990b478000fd598b8920f53"
    "000fd689c08e99ec000fd76ea9c8e832000fd848547b08e8000fd9178bad2c8c"
    "000fd9dd07a7add2000fda9970105e8c000fdb4d5dc02e20000fdbf95c5bfcd0"
    "000fdc9debb99a7d000fdd3b8118729d000fddd288342f90000fde6364369f64"
    "000fdeee708d514e000fdf7401a6b42e000fdff46599ed40000fe06fe4bc24f2"
    "000fe0e6c225a258000fe1593c28b84c000fe1c78cbc3f99000fe231e9db1caa"
    "000fe29885da1b91000fe2fb8fb54186000fe35b33558d4a000fe3b799d0002a"
    "000fe410e99ead7f000fe46746d47734000fe4bad34c095c000fe50baed29524"
    "000fe559f74ebc78000fe5a5c8e41212000fe5ef3e138689000fe6366fd91078"
    "000fe67b75c6d578000fe6be661e11aa000fe6ff55e5f4f2000fe73e5900a702"
    "000fe77b823e9e39000fe7b6e37070a2000fe7f08d774243000fe8289053f08c"
    "000fe85efb35173a000fe893dc840864000fe8c741f0cebc000fe8f9387d4ef6"
    "000fe929cc879b1d000fe95909d388ea000fe986fb939aa2000fe9b3ac714866"
    "000fe9df2694b6d5000fea0973abe67c000fea329cf166a4000fea5aab32952c"
    "000fea81a6d5741a000feaa797de1cf0000feacc85f3d920000feaf07865e63c"
    "000feb13762fec13000feb3585fe2a4a000feb56ae3162b4000feb76f4e284fa"
    "000feb965fe62014000febb4f4cf9d7c000febd2b8f449d0000febefb16e2e3e"
    "000fec0be31ebde8000fec2752b15a15000fec42049dafd3000fec5bfd29f196"
    "000fec75406ceef4000fec8dd2500cb4000feca5b6911f12000fecbcf0c427fe"
    "000fecd38454fb15000fece97488c8b3000fecfec47f91b7000fed1377358528"
    "000fed278f844903000fed3b10242f4c000fed4dfbad586e000fed605498c3dd"
    "000fed721d414fe8000fed8357e4a982000fed9406a42cc8000feda42b85b704"
    "000fedb3c8746ab4000fedc2df416652000fedd171a46e52000feddf813c8ad3"
    "000feded0f909980000fedfa1e0fd414000fee06ae124bc4000fee12c0d95a06"
    "000fee1e579006e0000fee29734b6524000fee34150ae4bc000fee3e3db89b3c"
    "000fee47ee2982f4000fee51271db086000fee59e9407f41000fee623528b42e"
    "000fee6a0b5897f1000fee716c3e077a000fee7858327b82000fee7ecf7b06ba"
    "000fee84d2484ab2000fee8a60b66343000fee8f7accc851000fee94207e25da"
    "000fee9851a829ea000fee9c0e13485c000fee9f557273f4000feea22762ccae"
    "000feea4836b42ac000feea668fc2d71000feea7d76ed6fa000feea8ce04fa0a"
    "000feea94be8333b000feea950296410000feea8d9c0075e000feea7e7897654"
    "000feea678481d24000feea48aa29e83000feea21d22e4da000fee9f2e352024"
    "000fee9bbc26af2e000fee97c524f2e4000fee93473c0a3a000fee8e40557516"
    "000fee88ae369c7a000fee828e7f3dfd000fee7bdea7b888000fee749bff37ff"
    "000fee6cc3a9bd5e000fee64529e007e000fee5b45a32888000fee51994e57b6"
    "000fee474a0006cf000fee3c53e12c50000fee30b2e02ad8000fee2462ad8205"
    "000fee175eb83c5a000fee09a22a1447000fedfb27e349cc000fedebea76216c"
    "000feddbe422047e000fedcb0ece39d3000fedb964042cf4000feda6dce938c9"
    "000fed937237e98d000fed7f1c38a836000fed69d2b9c02b000fed538d06ae00"
    "000fed3c41dea422000fed23e76a2fd8000fed0a732fe644000fecefda07fe34"
    "000fecd4100eb7b8000fecb708956eb4000fec98b61230c1000fec790a0da978"
    "000fec57f50f31fe000fec356686c962000fec114cb4b335000febeb948e6fd0"
    "000febc429a0b692000feb9af5ee0cdc000feb6fe1c98542000feb42d3ad1f9e"
    "000feb13b00b2d4b000feae2591a02e9000feaaeae992257000fea788d8ee326"
    "000fea3fcffd73e5000fea044c8dd9f6000fe9c5d62f563b000fe9843ba947a4"
    "000fe93f471d4728000fe8f6bd76c5d6000fe8aa5dc4e8e6000fe859e07ab1ea"
    "000fe804f690a940000fe7ab488233c0000fe74c751f6aa5000fe6e8102aa202"
    "000fe67da0b6abd8000fe60c9f38307e000fe5947338f742000fe51470977280"
    "000fe48bd436f458000fe3f9bffd1e37000fe35d35eeb19c000fe2b5122fe4fe"
    "000fe20003995557000fe13c82788314000fe068c4ee67b0000fdf82b02b71aa"
    "000fde87c57efeaa000fdd7509c63bfd000fdc46e529bf13000fdaf8f82e0282"
    "000fd985e1b2ba75000fd7e6ef48cf04000fd613adbd650b000fd40149e2f012"
    "000fd1a1a7b4c7ac000fcee204761f9e000fcba8d85e11b2000fc7d26ecd2d22"
    "000fc32b2f1e22ed000fbd6581c0b83a000fb606c4005434000fac40582a2874"
    "000f9e971e014598000f89fa48a41dfc000f66c5f7f0302c000f1a5a4b331c4a"
)

_WI_HEX = (
    "3ccf493b7815d9793c8b8d0be3fdf6c63c9250af3c2c5bb43c957cb938443b61"
    "3c9801fce82fa70c3c9a230c2e4cd0bc3c9c004d2f3861f73c9dac2f5a747274"
    "3c9f32482d4cd5c33ca04d32278ebbad3ca0f5053b025d433ca192a697413677"
    "3ca227a28f7a1af53ca2b52e3863d8803ca33c3fc05791f53ca3bd9ec1a2b12f"
    "3ca439ef8dff9b553ca4b1bb363dfea73ca52575621ad3743ca59580a707ce96"
    "3ca60231cfd97eea3ca66bd261a37c3d3ca6d2a2920005703ca736dad346f8a6"
    "3ca798ad10b32a773ca7f845ad46f5433ca855cc53430a773ca8b1649e7b769a"
    "3ca90b2ea94ecf983ca96347822c1eea3ca9b9c98e38c5463caa0eccdca4a72c"
    "3caa62676d77cd593caab4ad6e1016303cab05b16d136c9c3cab558487427a29"
    "3caba4368e529f3a3cabf1d62abf82323cac3e70f9594ef33cac8a13a5323b61"
    "3cacd4c9fe72268b3cad1e9f0e80b7483cad679d29e41f103cadafce0023b8c3"
    "3cadf73aa9f176533cae3debb5d2edfe3cae83e9337a6f003caec93abdf982ce"
    "3caf0de784f062263caf51f654d8f6883caf956d9e87d7ae3cafd8537dfa2eac"
    "3cb00d56e04234ec3cb02e40f5398f9a3cb04eea9e16a5fc3cb06f565b72a010"
    "3cb08f869071f40b3cb0af7d84bc61133cb0cf3d664bcc7f3cb0eec84b16086b"
    "3cb10e20329515ee3cb12d4707310fbe3cb14c3e9f8e91413cb16b08bfc4201e"
    "3cb189a71a78da343cb1a81b51ee6d883cb1c666f8f82acb3cb1e48b93e0d42e"
    "3cb2028a9940a09f3cb2206572c4c6e93cb23e1d7de9c31f3cb25bb40ca96bfb"
    "3cb2792a661dd37f3cb29681c719d71b3cb2b3bb62b82eda3cb2d0d862e1b853"
    "3cb2edd9e8cba98e3cb30ac10d6e48d73cb3278ee1f4b9303cb3444470265ea1"
    "3cb360e2baca52d53cb37d6abe05586a3cb399dd6fb2b2643cb3b63bbfb83d03"
    "3cb3d28698561de03cb3eebede725a833cb40ae571e09e743cb426fb2da6745d"
    "3cb44300e83c30a43cb45ef773cac75d3cb47adf9e66c3363cb496ba32488f2f"
    "3cb4b287f602415d3cb4ce49acb311dc3cb4ea001638a6053cb505abef5e5562"
    "3cb5214df20a8b5a3cb53ce6d56a664f3cb558774e1bb2c83cb574000e555f78"
    "3cb58f81c60e85143cb5aafd23241b593cb5c672d17d733d3cb5e1e37b2f8cd3"
    "3cb5fd4fc89f5e383cb618b860a31fc33cb6341de8a2b0a23cb64f8104b7260b"
    "3cb66ae257c996723cb6864283b131373cb6a1a22950b2b13cb6bd01e8b343bb"
    "3cb6d8626128d3523cb6f3c43161f8543cb70f27f78b68eb3cb72a8e516914c6"
    "3cb745f7dc70eedc3cb7616535e5731f3cb77cd6faeff4493cb7984dc8babd93"
    "3cb7b3ca3c8b14093cb7cf4cf3db22fb3cb7ead68c73dee73cb80667a486ea1f"
    "3cb82200dac886763cb83da2ce899f153cb8594e1fd1f5bd3cb875036f7a7ec5"
    "3cb890c35f47f72d3cb8ac8e9205c0433cb8c865aba10c9c3cb8e44951446a27"
    "3cb9003a2973b58f3cb91c38dc2883473cb9384612ef0afc3cb954627903a28a"
    "3cb9708ebb70d5ee3cb98ccb892e2a313cb9a919933f99bf3cb9c5798cd5d92c"
    "3cb9e1ec2b6f74113cb9fe7226fad24a3cba1b0c39f936923cba37bb21a2c85b"
    "3cba547f9e0bbb883cba715a724aa9a43cba8e4c64a0313d3cbaab563e9ff108"
    "3cbac878cd5af5ce3cbae5b4e18bb3363cbb030b4fc3a11a3cbb207cf09a985b"
    "3cbb3e0aa0e00c003cbb5bb541ce3d033cbb797db93f89273cbb9764f1e5f73c"
    "3cbbb56bdb85256e3cbbd3936b2ec0a23cbbf1dc9b81ae833cbc10486cec16a0"
    "3cbc2ed7e5f07a2d3cbc4d8c136e0d1c3cbc6c6608ec87053cbc8b66e0eba617"
    "3cbcaa8fbd36a2ab3cbcc9e1c73bd6903cbce95e3068e0373cbd0906328b8f6e"
    "3cbd28db1037ef203cbd48de1533c6473cbd691096e7f1233cbd8973f4d7fba5"
    "3cbdaa0999206e703cbdcad2f8fc490e3cbdebd195522e373cbe0d06fb49d21c"
    "3cbe2e74c4ea46f63cbe501c99c1d1883cbe72002f97fe253cbe94214b2abf0a"
    "3cbeb681c0f76f083cbed9237610a73a3cbefc086101eca93cbf1f328ac25321"
    "3cbf42a40fb74d6d3cbf665f20c901683cbf8a66048997823cbfaebb187122bf"
    "3cbfd360d22fe7853cbff859c118f60b3cc00ed447d3a0753cc021a8028fc947"
    "3cc034a983a902ab3cc047da4e3ef5c73cc05b3bf6adb37e3cc06ed023a72668"
    "3cc082988f632e173cc0969708e8a2543cc0aacd7571c0c43cc0bf3dd1eed448"
    "3cc0d3ea34aa3d303cc0e8d4cf1165933cc0fdffefa69fb63cc1136e04207041"
    "3cc129219bbb5d353cc13f1d69c4096d3cc1556448602e3b3cc16bf93b9deef3"
    "3cc182df74d212613cc19a1a564eebac3cc1b1ad777f2f8e3cc1c99ca971a694"
    "3cc1e1ebfbe4ae393cc1fa9fc2e2d9013cc213bc9d04cc813cc22d477a6fd3ee"
    "3cc24745a4ac9c243cc261bcc77658e03cc27cb2faa8592e3cc2982ecd770e78"
    "3cc2b437532a0a523cc2d0d43196db973cc2ee0db1a978f53cc30becd256aeee"
    "3cc32a7b5e68a4a33cc349c405ae12a33cc369d27a33a8403cc38ab39256410a"
    "3cc3ac7570ae88fa3cc3cf27b31704a63cc3f2dbaa60f4753cc417a49cb9e5da"
    "3cc43d9815545e943cc464ce44a73a153cc48d62759c43bc3cc4b7739d6b5a27"
    "3cc4e3250dcd89023cc5109f53e9ac413cc54011523a7e423cc571b1a94ae41b"
    "3cc5a5c08b718dd93cc5dc8a243ad0fe3cc61669cf861e4c3cc653ce7b006aea"
    "3cc69540be9fe5c33cc6db6b8d09e2323cc72728f05f7a343cc7799556090673"
    "3cc7d42df4d6ce8c3cc839030529f2343cc8ab0fbfaa7c143cc92ee0946f4496"
    "3cc9cbee014057ab3cca8fdc7894775a3ccb981f3878fdb13ccd3bb48209ad33"
)

_FI_HEX = (
    "3ff00000000000003fef446ac979f0873feeb7545b6ca9153fee3f11e027f077"
    "3fedd36fa704de953fed70920657bcf23fed144978a119dc3fecbd33a8a72deb"
    "3fec6a5ecea9787f3fec1b1cd9eebaea3febceeb4ee1dc823feb85653a8ff552"
    "3feb3e3a8234dd103feaf92a3f6ce8a23feab5fef17a25043fea748bd550c9e1"
    "3fea34aafdf5af0f3fe9f63bee651fd83fe9b9228d2406813fe97d4657617ac1"
    "3fe94291c21b7a473fe908f1bd31714f3fe8d0554fe60aa83fe898ad48badf02"
    "3fe861ebfc37bcac3fe82c050f56cf6e3fe7f6ed4b20e2cb3fe7c29a779c6858"
    "3fe78f033ca0b0d53fe75c1f0770d8563fe729e5f43f6d123fe6f850baea7aee"
    "3fe6c7589e635a893fe696f75e513b2a3fe667272a92e3233fe637e298550c18"
    "3fe60924988026653fe5dae86f4aff6a3fe5ad29acc85c893fe57fe4264c8d8f"
    "3fe55313f08d9e463fe526b55a656cd53fe4fac4e820b6673fe4cf3f4f494ec0"
    "3fe4a42172dc52783fe479685fdf50123fe44f114a4936793fe425198a355fe3"
    "3fe3fb7e99585b823fe3d23e10af31a33fe3a955a662cd0e3fe380c32bda00d5"
    "3fe358848bf550e93fe33097c9703a353fe308fafd6438ef3fe2e1ac55ea3bee"
    "3fe2baaa14d7954a3fe293f28e93cd153fe26d84290504ed3fe2475d5a90db84"
    "3fe2217ca92ff7f23fe1fbe0a99296203fe1d687fe5499693fe1b171573fd111"
    "3fe18c9b709b3c503fe16805128639da3fe143ad105ea99c3fe11f9248311f38"
    "3fe0fbb3a23259133fe0d810104142a03fe0b4a68d70d9ae3fe091761d995d81"
    "3fe06e7dccf03c363fe04bbcafa63f2e3fe02931e18b822a3fe006dc85b8cac4"
    "3fdfc9778c7bbda13fdf859da7a900ca3fdf4229cb2f7af33fdeff1a717e8f95"
    "3fdebc6e20bd1f543fde7a236a4ec3c53fde3838ea5f9b853fddf6ad47763a09"
    "3fddb57f320b56b13fdd74ad6426de333fdd3436a10210803fdcf419b4ae5b6d"
    "3fdcb45573c0a8483fdc74e8bb00d7c73fdc35d26f1d2cb83fdbf7117c616a17"
    "3fdbb8a4d6716d913fdb7a8b7807131b3fdb3cc462b331ca3fdaff4e9ea18552"
    "3fdac2293a5f5a9e3fda85534aa4d8803fda48cbea20c04d3fda0c923946843e"
    "3fd9d0a55e1e93df3fd995048418c0c63fd959aedbe09f933fd91ea39b33cb17"
    "3fd8e3e1fcb9f1153fd8a9693fde91883fd86f38a8ac5ab63fd8354f7faa0dd9"
    "3fd7fbad11b8d9113fd7c250aff414b03fd78939af9252eb3fd7506769c7b1ed"
    "3fd717d93ba9614c3fd6df8e86124caa3fd6a786ad88de213fd66fc11a25cbe2"
    "3fd6383d377be5153fd600fa7480d2c83fd5c9f84376c2443fd5933619d6eebe"
    "3fd55cb3703d01003fd5266fc2533bed3fd4f06a8ebf6d923fd4baa357109ca2"
    "3fd485199fad6ad43fd44fccefc324fe3fd41abcd1357a193fd3e5e8d08ed2db"
    "3fd3b1507cf143ae3fd37cf3680813793fd348d125f9d19e3fd314e94d5af62f"
    "3fd2e13b772107663fd2adc73e963fdd3fd27a8c414db11e3fd2478a1f17de89"
    "3fd214c079f7cc9e3fd1e22ef61881163fd1afd539c2f0503fd17db2ed5454e8"
    "3fd14bc7bb34ee673fd11a134fcf24233fd0e895598709c43fd0b74d88b242da"
    "3fd0863b8f9043363fd0555f2242e9d93fd024b7f6c7747e3fcfe88b89df93c5"
    "3fcf88108cb832353fcf27fe6ce998d23fcec854a4c99c443fce6912b2283cdd"
    "3fce0a38164571843fcdabc455c7900a3fcd4db6f8b2514f3fccf00f8a5e6fcc"
    "3fcc92cd9971df533fcc35f0b7d89d473fcbd9787abe18a13fcb7d647a8731aa"
    "3fcb21b452ccd13a3fcac667a25718073fca6b7e0b19267e3fca10f7322d7e3d"
    "3fc9b6d2bfd2fe5a3fc95d105f6a7c273fc903afbf74fa693fc8aab09192815b"
    "3fc852128a819a383fc7f9d5621f71753fc7a1f8d368a3233fc74a7c9c7ab5a6"
    "3fc6f3607e9647163fc69ca43e21f25c3fc64647a2adf19c3fc5f04a76f883f9"
    "3fc59aac88f31d6c3fc5456da9c868353fc4f08dade31fc13fc49c0c6cf5ce2d"
    "3fc447e9c20375d53fc3f4258b6931ae3fc3a0bfaae8d7ee3fc34db805b4ab88"
    "3fc2fb0e847c2a653fc2a8c3137a071a3fc256d5a2835eb73fc2054625183c34"
    "3fc1b41492757d423fc16340e5a82d633fc112cb1da26eb93fc0c2b33d5209ba"
    "3fc072f94bb8bf853fc0239d54067d2a3fbfa93ecb6b222c3fbf0bff29520e1c"
    "3fbe6f7bf29aa54b3fbdd3b56176e88f3fbd38abb9bd91e53fbc9e5f493b740a"
    "3fbc04d0680b10153fbb6bff78f2e2333fbad3ece9caf6333fba3c9933ea6286"
    "3fb9a604dc9d5b193fb9103075a4a0ab3fb87b1c9dbf28523fb7e6ca013eefd6"
    "3fb753395aaa11763fb6c06b73694a4c3fb62e6124854d183fb59d1b577466a4"
    "3fb50c9b06fa2bae3fb47ce1401b22133fb3edef23269a863fb35fc5e4d93e70"
    "3fb2d266cf9b31113fb245d344dd0d913fb1ba0cbe97897d3fb12f14d0f2179d"
    "3fb0a4ed2c1596253fb01b979e30e4973faf262c2b6c6e353fae16d547b25181"
    "3fad092efeadf1623fabfd3e0f282a2c3faaf30790385f703fa9ea90f9295563"
    "3fa8e3e02a68b5ab3fa7defb77af271e3fa6dbe9b398d0643fa5dab23cf2add4"
    "3fa4db5d0e11275d3fa3ddf2ce98eecb3fa2e27ce83df4973fa1e9059f1f6abc"
    "3fa0f1982e9680113f9ff881d718a5c43f9e121adb828c753f9c301983cd091a"
    "3f9a529f4e22ebf83f9879d1b600c10a3f96a5daf40bbf823f94d6eaf2fbb064"
    "3f930d388dab5e133f914903346030123f8f152a4f72dd493f8ba48d274f8fac"
    "3f8841040d8da4783f84eb96421acfe03f81a59229952f923f7ce160f8ec6837"
    "3f769ea8d90cb85d3f708a1f03b0b1fd3f655f9f43c1b0673f54a605b6b9f70f"
)


def _decode_u64(hex_blob: str) -> np.ndarray:
    return np.array([int(hex_blob[i : i + 16], 16) for i in range(0, len(hex_blob), 16)],
                    dtype=np.uint64)


_KI = _decode_u64("".join(_KI_HEX))
_WI = _decode_u64("".join(_WI_HEX)).view(np.float64)
_FI = _decode_u64("".join(_FI_HEX)).view(np.float64)


# --------------------------------------------------------------------------
# SeedSequence: entropy-pool mixing, vectorized over keys
# --------------------------------------------------------------------------
def _hashmix(value: np.ndarray, hash_const: np.ndarray) -> np.ndarray:
    """In-place uint32 hash step; mutates ``hash_const`` like the cython."""
    value = value ^ hash_const
    hash_const *= _MULT_A
    value = value * hash_const
    value ^= value >> _XSHIFT
    return value


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * _MIX_MULT_L - y * _MIX_MULT_R
    result ^= result >> _XSHIFT
    return result


def _seedseq_state(keys: np.ndarray) -> np.ndarray:
    """``SeedSequence(k).generate_state(4, uint64)`` for every key.

    ``keys`` must fit in 32 bits (one entropy word), which the noise-key
    construction guarantees by masking.  Returns shape ``(4, n)`` uint64.
    """
    n = keys.shape[0]
    entropy = keys.astype(np.uint32)
    pool = np.empty((4, n), dtype=np.uint32)
    hash_const = np.full(n, _INIT_A, dtype=np.uint32)
    pool[0] = _hashmix(entropy, hash_const)
    zero = np.zeros(n, dtype=np.uint32)
    for i in range(1, 4):
        pool[i] = _hashmix(zero, hash_const)
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], hash_const))

    hash_const = np.full(n, _INIT_B, dtype=np.uint32)
    words32 = np.empty((8, n), dtype=np.uint32)
    for i_dst in range(8):
        data = pool[i_dst % 4] ^ hash_const
        hash_const *= _MULT_B
        data = data * hash_const
        data ^= data >> _XSHIFT
        words32[i_dst] = data
    return words32[0::2].astype(np.uint64) | (
        words32[1::2].astype(np.uint64) << _U64(32)
    )


# --------------------------------------------------------------------------
# PCG64: 128-bit LCG as (hi, lo) uint64 lanes
# --------------------------------------------------------------------------
def _mul128(ah, al, bh, bl):
    """(ah, al) * (bh, bl) mod 2**128; 32-bit limbs give the exact carry."""
    a0 = al & _MASK32
    a1 = al >> _U64(32)
    b0 = bl & _MASK32
    b1 = bl >> _U64(32)
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid_lo = (p01 & _MASK32) + (p10 & _MASK32) + (p00 >> _U64(32))
    lo = (p00 & _MASK32) | (mid_lo << _U64(32))
    carry = a1 * b1 + (p01 >> _U64(32)) + (p10 >> _U64(32)) + (mid_lo >> _U64(32))
    hi = al * bh + ah * bl + carry
    return hi, lo


def _add128(ah, al, bh, bl):
    lo = al + bl
    hi = ah + bh + (lo < al).astype(np.uint64)
    return hi, lo


class _VecPCG64:
    """Per-lane PCG64 state seeded exactly like ``PCG64(SeedSequence(k))``."""

    __slots__ = ("sh", "sl", "ih", "il")

    def __init__(self, seed_words: np.ndarray):
        initstate_hi, initstate_lo = seed_words[0], seed_words[1]
        initseq_hi, initseq_lo = seed_words[2], seed_words[3]
        # pcg64_srandom: state = 0; inc = (initseq << 1) | 1; step();
        # state += initstate; step().
        self.ih = (initseq_hi << _U64(1)) | (initseq_lo >> _U64(63))
        self.il = (initseq_lo << _U64(1)) | _U64(1)
        self.sh = np.zeros_like(self.ih)
        self.sl = np.zeros_like(self.il)
        self._advance()
        self.sh, self.sl = _add128(self.sh, self.sl, initstate_hi, initstate_lo)
        self._advance()

    def _advance(self) -> None:
        hi, lo = _mul128(self.sh, self.sl, _PCG_MUL_HI, _PCG_MUL_LO)
        self.sh, self.sl = _add128(hi, lo, self.ih, self.il)

    def next_uint64(self) -> np.ndarray:
        """XSL-RR output after advancing every lane."""
        self._advance()
        x = self.sh ^ self.sl
        rot = self.sh >> _U64(58)
        return (x >> rot) | (x << ((-rot) & _U64(63)))


# --------------------------------------------------------------------------
# Ziggurat standard normal: vectorized accept path + exact scalar tail
# --------------------------------------------------------------------------
def _scalar_norm_finish(sh: int, sl: int, ih: int, il: int, first_r: int):
    """Finish one lane's draw after its first uint64 was rejected.

    A direct port of ``random_standard_normal`` (distributions.c) in
    python ints and ``math`` libm calls; returns (value, sh, sl) so the
    lane's generator state stays consistent with numpy's.
    """
    mul = (int(_PCG_MUL_HI) << 64) | int(_PCG_MUL_LO)
    inc = (ih << 64) | il
    state = (sh << 64) | sl

    def next_uint64() -> int:
        nonlocal state
        state = (state * mul + inc) & ((1 << 128) - 1)
        hi = state >> 64
        x = hi ^ (state & 0xFFFFFFFFFFFFFFFF)
        rot = hi >> 58
        return ((x >> rot) | (x << ((-rot) & 63))) & 0xFFFFFFFFFFFFFFFF

    def next_double() -> float:
        return (next_uint64() >> 11) * _TO_DBL

    r = first_r
    while True:
        idx = r & 0xFF
        r >>= 8
        sign = r & 0x1
        rabs = (r >> 1) & 0x000FFFFFFFFFFFFF
        x = rabs * float(_WI[idx])
        if sign:
            x = -x
        if rabs < int(_KI[idx]):
            break
        if idx == 0:
            # Base-strip tail: exponential rejection around x = r.
            while True:
                xx = -_ZIG_INV_R * math.log1p(-next_double())
                yy = -math.log1p(-next_double())
                if yy + yy > xx * xx:
                    x = -(_ZIG_R + xx) if ((rabs >> 8) & 0x1) else _ZIG_R + xx
                    break
            break
        if ((float(_FI[idx - 1]) - float(_FI[idx])) * next_double()
                + float(_FI[idx])) < math.exp(-0.5 * x * x):
            break
        r = next_uint64()
    return x, state >> 64, state & 0xFFFFFFFFFFFFFFFF


def first_standard_normal(keys: np.ndarray) -> np.ndarray:
    """First ``standard_normal()`` draw of ``default_rng(key)`` per key."""
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    rng = _VecPCG64(_seedseq_state(keys))
    r = rng.next_uint64()
    idx = (r & _U64(0xFF)).astype(np.intp)
    r8 = r >> _U64(8)
    rabs = (r8 >> _U64(1)) & _MASK52
    out = rabs.astype(np.float64) * _WI[idx]
    np.negative(out, where=(r8 & _U64(1)).astype(bool), out=out)
    rejected = np.nonzero(rabs >= _KI[idx])[0]
    for lane in rejected:
        out[lane], sh, sl = _scalar_norm_finish(
            int(rng.sh[lane]), int(rng.sl[lane]),
            int(rng.ih[lane]), int(rng.il[lane]), int(r[lane]),
        )
        rng.sh[lane] = _U64(sh)
        rng.sl[lane] = _U64(sl)
    return out


# --------------------------------------------------------------------------
# Self-check and the public noise-factor entry point
# --------------------------------------------------------------------------
# Keys covering every ziggurat code path (verified against numpy 2.x):
# plain accepts, wedge comparisons (15, 61), multi-round rejections
# (257, 367), and base-strip tail draws (755, 1950, 2429, 4769).
_SENTINEL_KEYS = (
    0, 1, 2, 3, 15, 61, 163, 235, 257, 367,
    755, 1950, 2429, 4769, 123456789, 0xFFFFFFFF,
)
_fallback: Optional[bool] = None


def uses_fallback() -> bool:
    """True when this numpy's bits differ and the scalar path is in use."""
    return bool(_self_check_failed())


def _self_check_failed() -> bool:
    """One-time probe: batched sentinel draws vs real ``default_rng``."""
    global _fallback
    if _fallback is None:
        keys = np.array(_SENTINEL_KEYS, dtype=np.uint64)
        try:
            batched = first_standard_normal(keys)
            reference = np.array(
                [np.random.default_rng(int(k)).standard_normal() for k in keys]
            )
            _fallback = not np.array_equal(batched, reference)
        except Exception:  # pragma: no cover - ultra-defensive
            _fallback = True
    return _fallback


def noise_factors(seed: int, indices: Iterable[int], noise: float) -> np.ndarray:
    """Noise multipliers for every index, bit-identical to the scalar path.

    Equivalent to ``[GpuSimulator._noise_factor(seed, i) for i in indices]``
    but with one vectorized draw pipeline instead of a ``Generator`` per
    invocation.  ``np.exp`` on a contiguous float64 array produces the
    same bits per element as on each scalar, so the final transform is
    safe to batch; the guarded part is the keyed normal draw.
    """
    index_arr = np.ascontiguousarray(list(indices), dtype=np.uint64)
    if not noise:
        return np.ones(index_arr.shape[0], dtype=np.float64)
    keys = (_U64(seed) * _U64(0x9E3779B9) + index_arr) & _MASK32
    if _self_check_failed():
        gauss = np.array(
            [np.random.default_rng(int(k)).standard_normal() for k in keys],
            dtype=np.float64,
        )
    else:
        gauss = first_standard_normal(keys)
    return np.exp(gauss * noise - 0.5 * noise**2)
