"""PPT-style analytical timing backend.

:class:`AnalyticalSimulator` implements the same ``simulate_workload`` /
``memo_identity`` surface as :class:`~repro.sim.simulator.GpuSimulator`
but predicts per-invocation cycles in closed form from kernel
descriptors — instruction mix, occupancy, and roofline memory/compute
terms derived from :class:`~repro.hardware.gpu_config.GPUConfig` —
instead of executing traces through the event-driven SM model.  The
structure follows PPT-GPU's analytical tier: the same launch-geometry
and trace-reduction arithmetic as :class:`~repro.sim.trace.TraceGenerator`
(waves, loop extrapolation, resident warps, scaled address space), with
the event loop replaced by three closed-form bounds — issue throughput,
per-warp dependency chain, DRAM bandwidth — combined roofline-style.

The backend is deliberately *wrong in a measurable way*: it is meant to
be calibrated per kernel against the cycle-level oracle on a small probe
set (see :mod:`repro.core.fidelity`), after which the residual
distribution is the fidelity gap that multi-fidelity plans fold into
their reported ε.  Both tiers share :func:`~repro.sim.noise.noise_factors`
with identical ``(seed, index)`` keying, so hardware noise cancels in
calibration ratios instead of inflating the measured gap.

Memoization: ``memo_identity()`` is prefixed ``analytical-v1`` so
:class:`~repro.memo.SimResultCache` contexts never collide with
cycle-level entries — tiers cannot cross-contaminate a shared cache
directory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..analysis import detsan
from ..hardware.gpu_config import GPUConfig
from ..memo.dedup import collapse_draws
from ..memo.sim_cache import RawKernelSim
from ..workloads.kernel import KernelSpec
from ..workloads.workload import Workload
from .noise import noise_factors
from .simulator import _EVENT_FIELDS, KernelSimResult, WorkloadSimResult
from .sm import LatencyTable
from .stats import SimStats

__all__ = ["AnalyticalSimulator", "ANALYTICAL_VERSION"]

#: Bumping this invalidates every cached analytical result; bump whenever
#: the closed-form model below changes numerically.
ANALYTICAL_VERSION = 1


def _reuse(accesses: np.ndarray, footprint: np.ndarray) -> np.ndarray:
    """Fraction of accesses that re-touch an already-seen line.

    The first touch of each distinct line is a compulsory miss; everything
    beyond the footprint is a potential hit.
    """
    return np.clip(1.0 - footprint / np.maximum(accesses, 1.0), 0.0, 1.0)


def _fit(capacity: np.ndarray, footprint: np.ndarray) -> np.ndarray:
    """Probability a re-touched line is still resident in a cache level."""
    return np.clip(capacity / np.maximum(footprint, 1.0), 0.0, 1.0)


class AnalyticalSimulator:
    """Closed-form analytical GPU timing model.

    Drop-in fast tier for :class:`~repro.sim.simulator.GpuSimulator`:
    same constructor shape (minus the knobs that only make sense for an
    event-driven engine), same ``simulate_workload`` /
    ``cycle_counts`` / ``memo_identity`` surface, same deterministic
    per-``(seed, index)`` noise.  Roughly three orders of magnitude
    cheaper per invocation than the cycle-level engine.
    """

    def __init__(
        self,
        config: GPUConfig,
        latencies: Optional[LatencyTable] = None,
        max_instructions_per_warp: int = 192,
        max_resident_warps: int = 24,
        noise: float = 0.02,
        sim_cache=None,
    ):
        self.config = config
        # Same derivation as GpuSimulator so both tiers see one latency
        # table for a given GPUConfig (the DSE varies the config, and the
        # analytical tier must move with it).
        from .simulator import GpuSimulator

        self.latencies = latencies or GpuSimulator._derive_latencies(config)
        self.max_instructions_per_warp = max_instructions_per_warp
        self.max_resident_warps = max_resident_warps
        self.noise = noise
        #: Optional :class:`~repro.memo.SimResultCache`; analytical
        #: entries are keyed by this simulator's distinct
        #: :meth:`memo_identity`, so they can share a cache directory
        #: with cycle-level results without cross-contamination.
        self.sim_cache = sim_cache

    # -- memoization --------------------------------------------------------
    def memo_identity(self) -> str:
        """Cache-key component: model version plus every knob that shapes
        raw analytical results.  The ``analytical-`` prefix keeps these
        contexts disjoint from cycle-level ones by construction."""
        return (
            f"analytical-v{ANALYTICAL_VERSION}"
            f"|{self.latencies!r}"
            f"|mi{self.max_instructions_per_warp}"
            f"|mr{self.max_resident_warps}"
        )

    # -- closed-form model --------------------------------------------------
    def _spec_geometry(self, spec: KernelSpec) -> Tuple[int, int, float, float]:
        """Replicate TraceGenerator's launch-geometry arithmetic exactly.

        Returns ``(blocks_per_sm, resident_warps, waves, warp_factor)``.
        Matching the trace reduction bit-for-bit matters: extrapolation is
        a pure structural factor shared by both tiers, so any fidelity gap
        comes from the wave-cycle model alone, not from disagreeing about
        launch geometry.
        """
        cfg = self.config
        wpb = max(spec.warps_per_block(), 1)
        blocks_per_sm = min(cfg.max_blocks_per_sm, max(1, cfg.max_warps_per_sm // wpb))
        total_blocks = spec.num_blocks()
        blocks_per_sm = min(blocks_per_sm, max(1, -(-total_blocks // cfg.num_sms)))
        resident = min(self.max_resident_warps, blocks_per_sm * spec.warps_per_block())
        resident = min(resident, spec.num_warps())
        blocks_per_wave = max(1, blocks_per_sm * cfg.num_sms)
        waves = max(1.0, total_blocks / blocks_per_wave)
        warp_factor = max(
            1.0,
            min(cfg.max_warps_per_sm, blocks_per_sm * spec.warps_per_block())
            / max(resident, 1),
        )
        return blocks_per_sm, resident, waves, warp_factor

    def _spec_raw(
        self,
        spec: KernelSpec,
        work_scales: np.ndarray,
        localities: np.ndarray,
        efficiencies: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized analytical evaluation of one spec's invocations.

        Returns ``(wave_cycles, extrapolations, stall_cycles, events)``
        with ``events`` shaped ``(n, len(_EVENT_FIELDS))`` — the same raw
        quantities the cycle-level engine produces, feeding the identical
        noise/launch/rounding post-processing in ``simulate_workload``.
        """
        cfg = self.config
        lat = self.latencies
        mix = spec.mix
        total = max(mix.total(), 1)
        _, resident, waves, warp_factor = self._spec_geometry(spec)

        # Trace-reduction factors (identical arithmetic to TraceGenerator).
        scaled_total = np.maximum(1.0, np.round(total * work_scales))
        traced_len = np.minimum(float(self.max_instructions_per_warp), scaled_total)
        loop_factor = scaled_total / traced_len
        extrapolation = waves * loop_factor * warp_factor

        # Per-warp class counts in the traced stream: the interleaver
        # spreads classes at even strides, so a trimmed/tiled stream keeps
        # the mix's proportions to within one instruction per class.
        counts = np.array(
            [
                mix.fp32, mix.fp16, mix.int_alu, mix.sfu,
                mix.shared_ops(), mix.branch,
                mix.load_global, mix.store_global,
            ],
            dtype=np.float64,
        )
        frac = counts / float(total)
        n_class = traced_len[:, None] * frac[None, :]  # (n, 8)
        n_mem = n_class[:, 6] + n_class[:, 7]

        # Scaled address space, replicated from TraceGenerator.generate.
        line = float(cfg.cache_line_bytes)
        ws_lines = np.maximum(64.0, np.round(n_mem) * max(resident, 1))
        working_set = np.maximum(
            np.floor(spec.memory.working_set_bytes * np.minimum(work_scales, 4.0)),
            line * 4.0,
        )
        cache_scale = ws_lines * line / working_set
        l1_lines = np.maximum(2.0, np.floor(cfg.l1_bytes_per_sm * cache_scale) / line)
        l2_lines = np.maximum(4.0, np.floor(cfg.l2_bytes * cache_scale) / line)
        hot_lines = np.maximum(2.0, np.round(ws_lines * 0.01))
        warm_lines = np.maximum(4.0, np.round(ws_lines * 0.2))

        # Address-class probabilities (the trace generator's distribution).
        p_hot = 0.35 * localities
        p_warm = 0.55 * localities + 0.15
        p_cold = np.clip(1.0 - p_hot - p_warm, 0.0, 1.0)
        p_rand = p_cold * spec.memory.random_fraction
        p_stream = p_cold - p_rand

        acc = np.maximum(n_mem * max(resident, 1), 1e-9)  # accesses per wave
        a_hot, a_warm = p_hot * acc, p_warm * acc
        a_rand, a_stream = p_rand * acc, p_stream * acc

        # Per-class hit rates: compulsory-miss share from the footprint,
        # capacity share from how much of the touched region each level
        # holds.  Warm re-touches contend with the hot region too.
        warm_fp = hot_lines + warm_lines
        stream_fp = np.minimum(ws_lines, np.maximum(a_stream, 1.0))
        h1_hot = _reuse(a_hot, hot_lines) * _fit(l1_lines, hot_lines)
        h1_warm = _reuse(a_warm, warm_lines) * _fit(l1_lines, warm_fp)
        h1_rand = _reuse(a_rand, ws_lines) * _fit(l1_lines, ws_lines)
        h1_stream = _reuse(a_stream, stream_fp) * _fit(l1_lines, stream_fp)

        def _l2(a: np.ndarray, reuse_fp: np.ndarray, fit_fp: np.ndarray) -> np.ndarray:
            r = _reuse(a, reuse_fp)
            return r * (1.0 - _fit(l1_lines, fit_fp)) * _fit(l2_lines, fit_fp)

        l1_frac = (
            a_hot * h1_hot + a_warm * h1_warm + a_rand * h1_rand + a_stream * h1_stream
        ) / acc
        l2_frac = (
            a_hot * _l2(a_hot, hot_lines, hot_lines)
            + a_warm * _l2(a_warm, warm_lines, warm_fp)
            + a_rand * _l2(a_rand, ws_lines, ws_lines)
            + a_stream * _l2(a_stream, stream_fp, stream_fp)
        ) / acc
        l1_frac = np.clip(l1_frac, 0.0, 0.995)
        l2_frac = np.clip(l2_frac, 0.0, 1.0 - l1_frac)
        dram_frac = np.clip(1.0 - l1_frac - l2_frac, 0.0, 1.0)

        # -- the three roofline bounds per wave ---------------------------
        # 1) issue throughput: one shared port, 1 instruction/cycle.
        issue = traced_len * resident
        # 2) per-warp dependency chain: exposed compute latency shrinks
        #    with ILP and pipeline efficiency, memory latency with the
        #    blended hit profile.
        eff = np.maximum(efficiencies, 1e-3)
        base = np.array(
            [lat.fp32, lat.fp16, lat.int_alu, lat.sfu, lat.shared, lat.branch],
            dtype=np.float64,
        )
        compute_chain = (n_class[:, :6] @ base) / (lat.ilp * eff)
        mem_latency = (
            l1_frac * lat.l1_hit + l2_frac * lat.l2_hit + dram_frac * lat.dram
        ) / lat.ilp
        chain = compute_chain + n_mem * mem_latency
        # 3) DRAM bandwidth: per-SM slice in bytes per core cycle (the
        #    same derivation as GpuSimulator._make_dram).
        bw = max(cfg.dram_bandwidth_gbps / cfg.num_sms / cfg.clock_ghz, 1e-3)
        dram_accesses = dram_frac * acc
        dram_bw = dram_accesses * line / bw

        t_sum = issue + chain + dram_bw
        t_max = np.maximum(np.maximum(issue, chain), dram_bw)
        # Roofline combine: the dominant bound plus partial exposure of
        # the others (same 0.25 overlap coefficient as TimingModel).
        wave = t_max + 0.25 * (t_sum - t_max)
        stall = np.maximum(0.0, t_max - chain)

        events = np.zeros((len(work_scales), len(_EVENT_FIELDS)), dtype=np.float64)
        events[:, 0] = issue  # instructions
        events[:, 1:9] = n_class * resident  # per-class ops
        events[:, 9] = l1_frac * acc  # l1_hits
        events[:, 10] = (1.0 - l1_frac) * acc  # l1_misses
        events[:, 11] = l2_frac * acc  # l2_hits
        events[:, 12] = (1.0 - l1_frac - l2_frac) * acc  # l2_misses
        events[:, 13] = dram_accesses
        events[:, 14] = dram_accesses * line  # dram_bytes
        return wave, extrapolation, stall, events

    def _raw_invocations(
        self, workload: Workload, indices: List[int], seed: int
    ) -> List[RawKernelSim]:
        """Raw analytical results for ``indices``, in order.

        ``seed`` is unused by the closed-form model (noise is applied in
        post-processing, exactly like the cycle tier) but kept in the
        signature so the two tiers' raw layers line up.
        """
        del seed
        if not indices:
            return []
        idx = np.asarray(indices, dtype=np.int64)
        sids = workload.spec_ids[idx]
        waves = np.empty(len(idx), dtype=np.float64)
        extraps = np.empty(len(idx), dtype=np.float64)
        stalls = np.empty(len(idx), dtype=np.float64)
        events = np.empty((len(idx), len(_EVENT_FIELDS)), dtype=np.float64)
        for sid in np.unique(sids):
            mask = sids == sid
            sel = idx[mask]
            w, e, s, ev = self._spec_raw(
                workload.specs[int(sid)],
                workload.work_scales[sel],
                workload.localities[sel],
                workload.efficiencies[sel],
            )
            waves[mask], extraps[mask], stalls[mask], events[mask] = w, e, s, ev
        rounded = np.round(events).astype(np.int64)
        return [
            RawKernelSim(
                wave_cycles=float(waves[i]),
                extrapolation=float(extraps[i]),
                stall_cycles=float(stalls[i]),
                events=rounded[i].copy(),
            )
            for i in range(len(idx))
        ]

    @staticmethod
    def _stats_from_raw(raw: RawKernelSim) -> SimStats:
        stats = SimStats(stall_cycles=raw.stall_cycles)
        for j, field_name in enumerate(_EVENT_FIELDS):
            setattr(stats, field_name, int(raw.events[j]))
        return stats

    # -- workloads ---------------------------------------------------------
    def simulate_workload(
        self,
        workload: Workload,
        indices: Optional[Iterable[int]] = None,
        seed: int = 0,
        dedup: bool = True,
    ) -> WorkloadSimResult:
        """Analytically evaluate the workload (or the subset ``indices``).

        Mirrors :meth:`GpuSimulator.simulate_workload` end to end: dedup
        of repeated draws, optional ``SimResultCache`` reuse (under this
        tier's own context key), and the identical vectorized noise /
        launch-overhead / extrapolation post-processing — so a cycle and
        an analytical result for the same invocation differ *only* in the
        predicted wave cycles and event counters.
        """
        if indices is None:
            indices = range(len(workload))
        index_list = [int(i) for i in indices]
        n = len(index_list)
        aggregate = SimStats()
        with obs.span(
            "sim.analytical.workload", workload=workload.name
        ) as sp:
            if dedup:
                draws = collapse_draws(index_list)
                unique_list = [int(i) for i in draws.unique]
                raw_by_index = {}
                missing = unique_list
                context = None
                if self.sim_cache is not None and unique_list:
                    context = self.sim_cache.context_for(
                        workload, self.config, seed, self.memo_identity()
                    )
                    raw_by_index, missing = self.sim_cache.load(context, unique_list)
                for index, raw in zip(
                    missing, self._raw_invocations(workload, missing, seed)
                ):
                    raw_by_index[index] = raw
                if self.sim_cache is not None and missing:
                    self.sim_cache.store(context, unique_list, raw_by_index)
                executed = len(missing)
                raws = [raw_by_index[index] for index in index_list]
            else:
                raws = self._raw_invocations(workload, index_list, seed)
                executed = n

            stats_list = [self._stats_from_raw(raw) for raw in raws]
            noise_arr = noise_factors(seed, index_list, self.noise)
            sp.attrs["kernels"] = n
            sp.attrs["kernels_evaluated"] = executed

            if n:
                waves = np.array([raw.wave_cycles for raw in raws], dtype=np.float64)
                extraps = np.array(
                    [raw.extrapolation for raw in raws], dtype=np.float64
                )
                launch = self.config.launch_overhead_us * self.config.cycles_per_us()
                cycles = (waves * extraps + launch) * noise_arr
                events = np.array(
                    [[getattr(s, f) for f in _EVENT_FIELDS] for s in stats_list],
                    dtype=np.float64,
                )
                scaled = np.round(events * extraps[:, None]).astype(np.int64)
            else:
                waves = extraps = cycles = np.empty(0, dtype=np.float64)
                scaled = np.empty((0, len(_EVENT_FIELDS)), dtype=np.int64)

            results: List[KernelSimResult] = []
            for i, (index, stats) in enumerate(zip(index_list, stats_list)):
                for j, field_name in enumerate(_EVENT_FIELDS):
                    setattr(stats, field_name, int(scaled[i, j]))
                stats.stall_cycles *= float(extraps[i]) if n else 1.0
                kernel_cycles = float(cycles[i])
                stats.cycles = kernel_cycles
                results.append(
                    KernelSimResult(
                        invocation_index=index,
                        cycles=kernel_cycles,
                        wave_cycles=float(waves[i]),
                        extrapolation=float(extraps[i]),
                        stats=stats,
                    )
                )
            obs.inc("sim.fidelity.analytical_kernels", executed)

        if n:
            totals = scaled.sum(axis=0)
            for j, field_name in enumerate(_EVENT_FIELDS):
                setattr(aggregate, field_name, int(totals[j]))
            aggregate.stall_cycles = float(sum(s.stall_cycles for s in stats_list))
        aggregate.cycles = float(sum(r.cycles for r in results))
        if detsan.is_enabled():
            # Same sync point as the cycle engine, under this tier's own
            # "analytical" family tag: the two engines legitimately
            # disagree with each other, but each must agree with itself
            # across cold/warm cache and repeated evaluation.
            tag = (
                f"sim.analytical|{workload.name}|seed={seed}"
                f"|idx={detsan.index_digest(index_list)}"
            )
            detsan.record(tag + "|cycles", cycles)
            detsan.record(tag + "|events", scaled)
        return WorkloadSimResult(
            workload_name=workload.name,
            kernel_results=results,
            aggregate=aggregate,
        )

    def cycle_counts(self, workload: Workload, seed: int = 0) -> np.ndarray:
        """Per-invocation analytical cycle predictions."""
        result = self.simulate_workload(workload, seed=seed)
        return np.array([r.cycles for r in result.kernel_results], dtype=np.float64)
