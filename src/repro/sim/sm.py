"""Streaming-multiprocessor model: event-driven warp execution.

One SM executes one *wave* of resident warps from a kernel trace.  The
model is event-driven over instruction issues rather than stepping every
cycle: warps become ready when their previous instruction's latency
expires, a single issue port serializes issues (1 instruction/cycle), and
a greedy-then-oldest pick order approximates a GTO scheduler.  Memory
instructions traverse L1 -> L2 slice -> DRAM with bandwidth queueing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Tuple

from .cache import Cache
from .memory import DramModel
from .stats import SimStats
from .trace import KernelTrace, Op

__all__ = ["LatencyTable", "StreamingMultiprocessor"]

#: Op code -> SimStats counter attribute, in opcode order.
_COUNTER_FIELDS = (
    "fp32_ops",
    "fp16_ops",
    "int_ops",
    "sfu_ops",
    "shared_ops",
    "branches",
    "global_loads",
    "global_stores",
)


@dataclass(frozen=True)
class LatencyTable:
    """Instruction latencies in cycles."""

    fp32: float = 4.0
    fp16: float = 2.0
    int_alu: float = 4.0
    sfu: float = 16.0
    shared: float = 24.0
    branch: float = 6.0
    l1_hit: float = 32.0
    l2_hit: float = 190.0
    #: DRAM access latency on top of the bandwidth queue.
    dram: float = 560.0
    #: Independent instructions in flight per warp: exposed dependent
    #: latency is divided by this.
    ilp: float = 2.0


class StreamingMultiprocessor:
    """Executes kernel-trace waves against a cache hierarchy."""

    def __init__(
        self,
        latencies: LatencyTable,
        l1: Cache,
        l2: Cache,
        dram: DramModel,
    ):
        self.latencies = latencies
        self.l1 = l1
        self.l2 = l2
        self.dram = dram
        # Base compute latency by opcode, fixed for the simulator's
        # lifetime; indexed by kind in ``_compute_latency`` instead of
        # rebuilding a dict on every issued instruction.
        self._base_latency = (
            latencies.fp32,
            latencies.fp16,
            latencies.int_alu,
            latencies.sfu,
            latencies.shared,
            latencies.branch,
        )

    def _compute_latency(self, kind: int, efficiency: float) -> float:
        # Poor pipeline utilization (layout/alignment stalls) shows up as
        # longer exposed latency on the compute side.
        lat = self.latencies
        return self._base_latency[kind] / (lat.ilp * max(efficiency, 1e-3))

    def _memory_latency(self, address: int, now: float, stats: SimStats) -> float:
        """L1 -> L2 -> DRAM lookup; returns the exposed latency."""
        lat = self.latencies
        if self.l1.access(address):
            stats.l1_hits += 1
            return lat.l1_hit / lat.ilp
        stats.l1_misses += 1
        if self.l2.access(address):
            stats.l2_hits += 1
            return lat.l2_hit / lat.ilp
        stats.l2_misses += 1
        completion = self.dram.request(now)
        stats.dram_accesses += 1
        stats.dram_bytes += self.dram.line_bytes
        return (completion - now) + lat.dram / lat.ilp

    def execute_wave(self, trace: KernelTrace) -> Tuple[float, SimStats]:
        """Run one wave of resident warps; returns (cycles, stats)."""
        stats = SimStats()
        efficiency = trace.invocation.context.efficiency
        counters = _COUNTER_FIELDS
        # Efficiency is constant across a wave, so each opcode's exposed
        # compute latency is too: resolve all six divisions once up front
        # (identical floats to calling ``_compute_latency`` per issue).
        compute_latency = tuple(
            self._compute_latency(kind, efficiency) for kind in range(Op.BRANCH + 1)
        )

        # Per-warp state: program counter and memory-address cursor.
        pcs = [0] * len(trace.warps)
        mem_cursor = [0] * len(trace.warps)
        # Ready heap entries: (ready_cycle, warp_index).
        heap = [(0.0, w) for w in range(len(trace.warps))]
        heapq.heapify(heap)
        issue_free_at = 0.0
        last_completion = 0.0

        while heap:
            ready, w = heapq.heappop(heap)
            warp = trace.warps[w]
            if pcs[w] >= len(warp.kinds):
                continue
            issue_at = max(ready, issue_free_at)
            stats.stall_cycles += max(0.0, issue_at - ready)
            issue_free_at = issue_at + 1.0

            kind = int(warp.kinds[pcs[w]])
            pcs[w] += 1
            stats.instructions += 1
            setattr(stats, counters[kind], getattr(stats, counters[kind]) + 1)

            if kind in (Op.LOAD, Op.STORE):
                address = int(warp.addresses[mem_cursor[w]])
                mem_cursor[w] += 1
                latency = self._memory_latency(address, issue_at, stats)
            else:
                latency = compute_latency[kind]
            completion = issue_at + latency
            last_completion = max(last_completion, completion)
            if pcs[w] < len(warp.kinds):
                heapq.heappush(heap, (completion, w))

        stats.cycles = last_completion
        return last_completion, stats
