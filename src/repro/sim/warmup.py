"""Cache-warmup strategies for sampled cycle-level simulation (Sec. 6.2).

The paper's discussion names hardware-state warmup as the main open
problem of sampled GPU simulation, and suggests that "lightweight warmup
strategies, such as inserting warmup instructions or short warmup
kernels, may offer practical benefits with minimal simulator
modifications".  This module implements exactly those strategies for the
cycle-level simulator:

* :class:`NoWarmup` — cold caches at kernel start (the simulator's
  default; equivalent to the paper's extreme L2-flush experiment);
* :class:`ProportionalWarmup` — pre-touch a fraction of the kernel's hot
  and warm reuse regions before timing begins, modeling state left behind
  by earlier kernels and by untraced loop iterations;
* :class:`WarmupKernel` — replay a prefix of the kernel's own access
  stream untimed (a "short warmup kernel") before the measured wave.

The warmup study experiment (``benchmarks/bench_warmup_study.py``)
quantifies what the paper's Sec. 6.2 reports: the impact on sampling
error is small because most cache reuse happens within kernels.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .cache import Cache
from .trace import KernelTrace

__all__ = ["WarmupStrategy", "NoWarmup", "ProportionalWarmup", "WarmupKernel"]


class WarmupStrategy(Protocol):
    """Prepares cache state before a kernel wave is timed."""

    name: str

    def apply(self, trace: KernelTrace, l1: Cache, l2: Cache) -> int:
        """Warm the caches for ``trace``; returns lines touched."""
        ...


class NoWarmup:
    """Cold start — the conservative default."""

    name = "cold"

    def apply(self, trace: KernelTrace, l1: Cache, l2: Cache) -> int:
        return 0


class ProportionalWarmup:
    """Pre-touch a fraction of the kernel's reuse regions.

    ``fraction`` of the distinct lines the wave will access are loaded
    into L2 (and the hottest subset into L1) before timing, approximating
    the residency a predecessor kernel sharing data would leave behind.
    """

    name = "proportional"

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        self.fraction = fraction

    def apply(self, trace: KernelTrace, l1: Cache, l2: Cache) -> int:
        addresses = np.unique(
            np.concatenate([w.addresses for w in trace.warps])
            if trace.warps
            else np.empty(0, dtype=np.int64)
        )
        count = int(round(len(addresses) * self.fraction))
        touched = 0
        for address in addresses[:count]:
            l2.access(int(address))
            touched += 1
        # The hottest lines (lowest addresses: the hot region sits at the
        # bottom of the scaled space) also reach L1.
        for address in addresses[: max(1, count // 8)]:
            l1.access(int(address))
        return touched


class WarmupKernel:
    """Replay an untimed prefix of each warp's access stream.

    Models launching a short warmup kernel with the same access pattern
    immediately before the measured one.
    """

    name = "warmup-kernel"

    def __init__(self, prefix_fraction: float = 0.25):
        if not 0.0 < prefix_fraction <= 1.0:
            raise ValueError("prefix_fraction must be in (0, 1]")
        self.prefix_fraction = prefix_fraction

    def apply(self, trace: KernelTrace, l1: Cache, l2: Cache) -> int:
        touched = 0
        for warp in trace.warps:
            prefix = int(round(len(warp.addresses) * self.prefix_fraction))
            for address in warp.addresses[:prefix]:
                if not l1.access(int(address)):
                    l2.access(int(address))
                touched += 1
        return touched
