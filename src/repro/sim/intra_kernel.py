"""Intra-kernel (wave-level) sampling (paper Sec. 7.3).

Kernel-level sampling is orthogonal to sampling *within* a kernel: for
long-running kernels with many thread-block waves, TBPoint/PKA/Photon
detect when per-wave behaviour stabilizes and skip the rest.  This
module implements that idea on the cycle-level simulator:

:class:`AdaptiveWaveSimulator` simulates a kernel's waves one at a time
(each wave re-seeds its address stream, so waves differ like real
thread-block batches do) and stops once the running mean of per-wave
cycles is stable — the relative half-width of its CLT confidence
interval drops under ``stability_threshold`` — then extrapolates across
the remaining waves.  The paper notes kernel-level sampling "can be
combined with cases of few kernel calls or long-running kernels"; the
combination example lives in the bench target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hardware.gpu_config import GPUConfig
from ..workloads.kernel import KernelInvocation
from ..workloads.workload import Workload
from .simulator import GpuSimulator

__all__ = ["WaveSampleResult", "AdaptiveWaveSimulator"]


@dataclass(frozen=True)
class WaveSampleResult:
    """Outcome of adaptively simulating one kernel's waves."""

    invocation_index: int
    total_waves: float
    simulated_waves: int
    estimated_cycles: float
    #: Cycles had every wave been simulated (only when computed).
    full_cycles: Optional[float] = None

    @property
    def wave_fraction(self) -> float:
        return self.simulated_waves / max(self.total_waves, 1.0)

    @property
    def error_percent(self) -> Optional[float]:
        if self.full_cycles is None or self.full_cycles == 0:
            return None
        return abs(self.estimated_cycles - self.full_cycles) / self.full_cycles * 100


class AdaptiveWaveSimulator:
    """Simulates waves until the per-wave cycle estimate stabilizes."""

    def __init__(
        self,
        config: GPUConfig,
        stability_threshold: float = 0.05,
        min_waves: int = 3,
        max_waves: int = 64,
        z: float = 1.96,
    ):
        if stability_threshold <= 0:
            raise ValueError("stability_threshold must be positive")
        if min_waves < 2:
            raise ValueError("min_waves must be at least 2")
        if max_waves < min_waves:
            raise ValueError("max_waves must be >= min_waves")
        self.config = config
        self.stability_threshold = stability_threshold
        self.min_waves = min_waves
        self.max_waves = max_waves
        self.z = z
        self._simulator = GpuSimulator(config, noise=0.0)

    def _wave_cycles(self, invocation: KernelInvocation, wave_seed: int) -> float:
        """Detailed cycles of one wave (address streams vary per wave)."""
        trace = self._simulator.tracer.generate(invocation, seed=wave_seed)
        result = self._simulator.simulate_trace(trace, seed=wave_seed)
        return result.wave_cycles

    def total_waves(self, invocation: KernelInvocation) -> float:
        trace = self._simulator.tracer.generate(invocation, seed=0)
        return max(1.0, trace.extrapolation)

    def simulate(
        self,
        workload: Workload,
        index: int,
        seed: int = 0,
        compute_full: bool = False,
    ) -> WaveSampleResult:
        """Adaptively simulate the waves of one kernel invocation."""
        invocation = workload.invocation(index)
        waves_total = self.total_waves(invocation)
        budget = int(min(self.max_waves, np.ceil(waves_total)))

        cycles: list = []
        for wave in range(budget):
            cycles.append(self._wave_cycles(invocation, seed * 7919 + wave))
            if wave + 1 >= self.min_waves:
                arr = np.asarray(cycles)
                mean = arr.mean()
                if mean > 0:
                    half_width = self.z * arr.std(ddof=1) / np.sqrt(len(arr)) / mean
                    if half_width < self.stability_threshold:
                        break

        arr = np.asarray(cycles)
        launch_cycles = (
            self.config.launch_overhead_us * self.config.cycles_per_us()
        )
        estimated = float(arr.mean() * waves_total + launch_cycles)

        full = None
        if compute_full:
            all_cycles = [
                self._wave_cycles(invocation, seed * 7919 + wave)
                for wave in range(int(np.ceil(waves_total)))
            ]
            # Fractional last wave contributes proportionally.
            whole = np.asarray(all_cycles)
            weights = np.ones(len(whole))
            weights[-1] = waves_total - (len(whole) - 1)
            full = float(np.dot(whole, weights) + launch_cycles)

        return WaveSampleResult(
            invocation_index=index,
            total_waves=waves_total,
            simulated_waves=len(cycles),
            estimated_cycles=estimated,
            full_cycles=full,
        )
