"""Simulation statistics: per-kernel and aggregated counters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Microarchitectural counters produced by the cycle simulator."""

    cycles: float = 0.0
    instructions: int = 0
    fp32_ops: int = 0
    fp16_ops: int = 0
    int_ops: int = 0
    sfu_ops: int = 0
    shared_ops: int = 0
    branches: int = 0
    global_loads: int = 0
    global_stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    dram_bytes: int = 0
    stall_cycles: float = 0.0

    def merge(self, other: "SimStats") -> None:
        """Accumulate another kernel's counters into this aggregate."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {name: float(getattr(self, name)) for name in self.__dataclass_fields__}
        out["l1_hit_rate"] = self.l1_hit_rate
        out["l2_hit_rate"] = self.l2_hit_rate
        out["ipc"] = self.ipc
        return out
