"""DRAM model: fixed latency plus bandwidth-queueing delay."""

from __future__ import annotations

__all__ = ["DramModel"]


class DramModel:
    """A single-channel abstraction of the GPU memory system.

    Each access occupies the channel for ``service_cycles`` (derived from
    line size over bandwidth); a request arriving while the channel is
    busy queues behind it.  Returned latency = queueing + fixed access
    latency.  This reproduces the first-order behaviours sampling cares
    about: memory-bound kernels see latencies that *grow with contention*,
    and halving bandwidth stretches them.
    """

    def __init__(
        self,
        latency_cycles: float,
        bandwidth_bytes_per_cycle: float,
        line_bytes: int = 128,
    ):
        if latency_cycles < 0 or bandwidth_bytes_per_cycle <= 0:
            raise ValueError("invalid DRAM parameters")
        self.latency_cycles = latency_cycles
        self.service_cycles = line_bytes / bandwidth_bytes_per_cycle
        self._busy_until = 0.0
        self.accesses = 0
        self.bytes_transferred = 0
        self.line_bytes = line_bytes

    def request(self, now: float) -> float:
        """Issue one line fill at time ``now``; returns completion time."""
        start = max(now, self._busy_until)
        self._busy_until = start + self.service_cycles
        self.accesses += 1
        self.bytes_transferred += self.line_bytes
        return start + self.service_cycles + self.latency_cycles

    def reset(self) -> None:
        self._busy_until = 0.0
        self.accesses = 0
        self.bytes_transferred = 0
