"""GPU simulators: the cycle-level MacSim substitute plus the PPT-style
analytical fast tier (:mod:`repro.sim.analytical`)."""

from .analytical import ANALYTICAL_VERSION, AnalyticalSimulator
from .batch import BatchExecReport, BatchPolicy, execute_wave_batch
from .cache import Cache, CacheStats
from .energy import EnergyBreakdown, EnergyModel
from .intra_kernel import AdaptiveWaveSimulator, WaveSampleResult
from .memory import DramModel
from .multi_sm import MultiSmSimulator
from .noise import noise_factors
from .sm import LatencyTable, StreamingMultiprocessor
from .simulator import GpuSimulator, KernelSimResult, WorkloadSimResult
from .stats import SimStats
from .trace import KernelTrace, Op, TraceGenerator, WarpTrace
from .warmup import NoWarmup, ProportionalWarmup, WarmupKernel, WarmupStrategy

__all__ = [
    "ANALYTICAL_VERSION",
    "AnalyticalSimulator",
    "BatchExecReport",
    "BatchPolicy",
    "execute_wave_batch",
    "noise_factors",
    "Cache",
    "EnergyModel",
    "EnergyBreakdown",
    "AdaptiveWaveSimulator",
    "WaveSampleResult",
    "CacheStats",
    "DramModel",
    "MultiSmSimulator",
    "LatencyTable",
    "StreamingMultiprocessor",
    "SimStats",
    "Op",
    "WarpTrace",
    "KernelTrace",
    "TraceGenerator",
    "GpuSimulator",
    "WarmupStrategy",
    "NoWarmup",
    "ProportionalWarmup",
    "WarmupKernel",
    "KernelSimResult",
    "WorkloadSimResult",
]
