"""Top-level cycle-level GPU simulator.

The reproduction's MacSim stand-in for the design-space-exploration
experiments (Table 4, Figure 12).  One representative SM is simulated in
detail per kernel wave and the result extrapolated across waves — a
standard reduction whose consistency between "full" and "sampled" runs is
what the sampling-error comparison requires.

Hardware sensitivity enters exactly where the paper's DSE varies it:

* **SM count** — more SMs mean fewer waves (compute side speeds up) but a
  thinner per-SM slice of L2 capacity and DRAM bandwidth (memory-bound
  kernels do not);
* **cache size** — the simulated L1 and the per-SM L2 slice grow or
  shrink, moving hit rates and hence memory latencies.

Caches cold-start at every kernel launch — the paper's extreme-case
L2-flush scenario, which its Sec. 6.2 study found costs well under 1%
accuracy because most reuse happens within kernels rather than across
them.  Cross-kernel L2 persistence is out of scope for the reduced-trace
design (the scaled address space differs per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .cache import Cache
from .memory import DramModel
from .sm import LatencyTable, StreamingMultiprocessor
from .stats import SimStats
from .trace import KernelTrace, TraceGenerator

__all__ = ["KernelSimResult", "WorkloadSimResult", "GpuSimulator"]


@dataclass(frozen=True)
class KernelSimResult:
    """Outcome of simulating one kernel invocation."""

    invocation_index: int
    cycles: float
    wave_cycles: float
    extrapolation: float
    stats: SimStats


@dataclass
class WorkloadSimResult:
    """Outcome of simulating a (subset of a) workload."""

    workload_name: str
    kernel_results: List[KernelSimResult]
    aggregate: SimStats

    @property
    def total_cycles(self) -> float:
        return float(sum(r.cycles for r in self.kernel_results))

    def cycles_by_index(self) -> dict:
        return {r.invocation_index: r.cycles for r in self.kernel_results}


class GpuSimulator:
    """Trace-driven cycle-level GPU simulator."""

    def __init__(
        self,
        config: GPUConfig,
        latencies: Optional[LatencyTable] = None,
        max_instructions_per_warp: int = 192,
        max_resident_warps: int = 24,
        noise: float = 0.02,
        warmup=None,
        fault_injector=None,
    ):
        self.config = config
        self.latencies = latencies or self._derive_latencies(config)
        self.tracer = TraceGenerator(
            num_sms=config.num_sms,
            max_blocks_per_sm=config.max_blocks_per_sm,
            max_warps_per_sm=config.max_warps_per_sm,
            max_instructions_per_warp=max_instructions_per_warp,
            max_resident_warps=max_resident_warps,
            line_bytes=config.cache_line_bytes,
        )
        self.noise = noise
        #: Optional cache-warmup strategy (see :mod:`repro.sim.warmup`).
        self.warmup = warmup
        #: Optional :class:`~repro.resilience.faults.FaultInjector`; when
        #: set, :meth:`simulate_invocation` consults it and raises
        #: :class:`~repro.errors.SimulationFailure` for invocations the
        #: fault plan dooms — the hook the resilient executor retries
        #: around.  ``None`` (the default) costs nothing.
        self.fault_injector = fault_injector

    @staticmethod
    def _derive_latencies(config: GPUConfig) -> LatencyTable:
        cycles_per_ns = config.clock_ghz
        return LatencyTable(
            l2_hit=max(20.0, config.l2_latency_ns * cycles_per_ns),
            dram=max(100.0, config.dram_latency_ns * cycles_per_ns),
        )

    def _make_dram(self) -> DramModel:
        # Per-SM share of DRAM bandwidth, in bytes per core cycle.
        per_sm_gbps = self.config.dram_bandwidth_gbps / self.config.num_sms
        bytes_per_cycle = per_sm_gbps / self.config.clock_ghz
        return DramModel(
            latency_cycles=0.0,  # fixed latency lives in LatencyTable.dram
            bandwidth_bytes_per_cycle=max(bytes_per_cycle, 1e-3),
            line_bytes=self.config.cache_line_bytes,
        )

    # -- single kernels -----------------------------------------------------
    def simulate_trace(self, trace: KernelTrace, seed: int = 0) -> KernelSimResult:
        # Cache capacities are scaled into the trace's reduced address
        # space so footprint-to-capacity ratios match the full kernel.
        scale = trace.cache_scale
        line = self.config.cache_line_bytes
        l1 = Cache(
            max(line * 2, int(self.config.l1_bytes_per_sm * scale)),
            line_bytes=line,
            associativity=8,
        )
        l2 = Cache(
            max(line * 4, int(self.config.l2_bytes * scale)),
            line_bytes=line,
            associativity=16,
        )
        if self.warmup is not None:
            self.warmup.apply(trace, l1, l2)
            l1.reset_stats()
            l2.reset_stats()
        dram = self._make_dram()
        sm = StreamingMultiprocessor(self.latencies, l1, l2, dram)
        wave_cycles, stats = sm.execute_wave(trace)

        index = trace.invocation.index
        rng = np.random.default_rng((seed * 0x9E3779B9 + index) & 0xFFFFFFFF)
        noise = (
            float(np.exp(rng.standard_normal() * self.noise - 0.5 * self.noise**2))
            if self.noise
            else 1.0
        )
        launch_cycles = self.config.launch_overhead_us * self.config.cycles_per_us()
        cycles = (wave_cycles * trace.extrapolation + launch_cycles) * noise
        stats.l1_hits = l1.stats.hits
        stats.l1_misses = l1.stats.misses
        # Event counters cover the traced wave; scale them by the same
        # extrapolation as the cycles so stats describe the whole kernel.
        factor = trace.extrapolation
        for field_name in (
            "instructions", "fp32_ops", "fp16_ops", "int_ops", "sfu_ops",
            "shared_ops", "branches", "global_loads", "global_stores",
            "l1_hits", "l1_misses", "l2_hits", "l2_misses",
            "dram_accesses", "dram_bytes",
        ):
            setattr(stats, field_name, int(round(getattr(stats, field_name) * factor)))
        stats.stall_cycles *= factor
        stats.cycles = cycles
        obs.inc("sim.kernels_executed")
        obs.observe("sim.kernel_cycles", cycles)
        return KernelSimResult(
            invocation_index=index,
            cycles=cycles,
            wave_cycles=wave_cycles,
            extrapolation=trace.extrapolation,
            stats=stats,
        )

    def simulate_invocation(
        self,
        workload: Workload,
        index: int,
        seed: int = 0,
        attempt: int = 1,
    ) -> KernelSimResult:
        if self.fault_injector is not None:
            self.fault_injector.check_simulation(int(index), attempt)
        trace = self.tracer.generate(workload.invocation(index), seed=seed)
        return self.simulate_trace(trace, seed=seed)

    # -- workloads ---------------------------------------------------------
    def simulate_workload(
        self,
        workload: Workload,
        indices: Optional[Iterable[int]] = None,
        seed: int = 0,
    ) -> WorkloadSimResult:
        """Simulate the workload (or the subset ``indices``), in order."""
        if indices is None:
            indices = range(len(workload))
        results: List[KernelSimResult] = []
        aggregate = SimStats()
        with obs.span("sim.workload", workload=workload.name) as sp:
            for index in indices:
                result = self.simulate_invocation(workload, int(index), seed=seed)
                results.append(result)
                aggregate.merge(result.stats)
            sp.attrs["kernels"] = len(results)
        aggregate.cycles = float(sum(r.cycles for r in results))
        return WorkloadSimResult(
            workload_name=workload.name,
            kernel_results=results,
            aggregate=aggregate,
        )

    def cycle_counts(
        self, workload: Workload, seed: int = 0
    ) -> np.ndarray:
        """Per-invocation cycle counts of a full simulation."""
        result = self.simulate_workload(workload, seed=seed)
        return np.array([r.cycles for r in result.kernel_results], dtype=np.float64)
