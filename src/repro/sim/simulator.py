"""Top-level cycle-level GPU simulator.

The reproduction's MacSim stand-in for the design-space-exploration
experiments (Table 4, Figure 12).  One representative SM is simulated in
detail per kernel wave and the result extrapolated across waves — a
standard reduction whose consistency between "full" and "sampled" runs is
what the sampling-error comparison requires.

Hardware sensitivity enters exactly where the paper's DSE varies it:

* **SM count** — more SMs mean fewer waves (compute side speeds up) but a
  thinner per-SM slice of L2 capacity and DRAM bandwidth (memory-bound
  kernels do not);
* **cache size** — the simulated L1 and the per-SM L2 slice grow or
  shrink, moving hit rates and hence memory latencies.

Caches cold-start at every kernel launch — the paper's extreme-case
L2-flush scenario, which its Sec. 6.2 study found costs well under 1%
accuracy because most reuse happens within kernels rather than across
them.  Cross-kernel L2 persistence is out of scope for the reduced-trace
design (the scaled address space differs per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .cache import Cache
from .memory import DramModel
from .sm import LatencyTable, StreamingMultiprocessor
from .stats import SimStats
from .trace import KernelTrace, TraceGenerator

__all__ = ["KernelSimResult", "WorkloadSimResult", "GpuSimulator"]

#: Event counters scaled by wave extrapolation (everything but the float
#: ``cycles``/``stall_cycles``), in a fixed order so batch simulation can
#: round and aggregate them as one matrix.
_EVENT_FIELDS = (
    "instructions", "fp32_ops", "fp16_ops", "int_ops", "sfu_ops",
    "shared_ops", "branches", "global_loads", "global_stores",
    "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "dram_accesses", "dram_bytes",
)


@dataclass(frozen=True)
class KernelSimResult:
    """Outcome of simulating one kernel invocation."""

    invocation_index: int
    cycles: float
    wave_cycles: float
    extrapolation: float
    stats: SimStats


@dataclass
class WorkloadSimResult:
    """Outcome of simulating a (subset of a) workload."""

    workload_name: str
    kernel_results: List[KernelSimResult]
    aggregate: SimStats

    def __post_init__(self) -> None:
        self._total_cycles: Optional[float] = None
        self._cycles_by_index: Optional[dict] = None

    @property
    def total_cycles(self) -> float:
        # Cached: estimators query this repeatedly per plan evaluation.
        if self._total_cycles is None:
            self._total_cycles = float(sum(r.cycles for r in self.kernel_results))
        return self._total_cycles

    def cycles_by_index(self) -> dict:
        if self._cycles_by_index is None:
            self._cycles_by_index = {
                r.invocation_index: r.cycles for r in self.kernel_results
            }
        return self._cycles_by_index


class GpuSimulator:
    """Trace-driven cycle-level GPU simulator."""

    def __init__(
        self,
        config: GPUConfig,
        latencies: Optional[LatencyTable] = None,
        max_instructions_per_warp: int = 192,
        max_resident_warps: int = 24,
        noise: float = 0.02,
        warmup=None,
        fault_injector=None,
    ):
        self.config = config
        self.latencies = latencies or self._derive_latencies(config)
        self.tracer = TraceGenerator(
            num_sms=config.num_sms,
            max_blocks_per_sm=config.max_blocks_per_sm,
            max_warps_per_sm=config.max_warps_per_sm,
            max_instructions_per_warp=max_instructions_per_warp,
            max_resident_warps=max_resident_warps,
            line_bytes=config.cache_line_bytes,
        )
        self.noise = noise
        #: Optional cache-warmup strategy (see :mod:`repro.sim.warmup`).
        self.warmup = warmup
        #: Optional :class:`~repro.resilience.faults.FaultInjector`; when
        #: set, :meth:`simulate_invocation` consults it and raises
        #: :class:`~repro.errors.SimulationFailure` for invocations the
        #: fault plan dooms — the hook the resilient executor retries
        #: around.  ``None`` (the default) costs nothing.
        self.fault_injector = fault_injector

    @staticmethod
    def _derive_latencies(config: GPUConfig) -> LatencyTable:
        cycles_per_ns = config.clock_ghz
        return LatencyTable(
            l2_hit=max(20.0, config.l2_latency_ns * cycles_per_ns),
            dram=max(100.0, config.dram_latency_ns * cycles_per_ns),
        )

    def _make_dram(self) -> DramModel:
        # Per-SM share of DRAM bandwidth, in bytes per core cycle.
        per_sm_gbps = self.config.dram_bandwidth_gbps / self.config.num_sms
        bytes_per_cycle = per_sm_gbps / self.config.clock_ghz
        return DramModel(
            latency_cycles=0.0,  # fixed latency lives in LatencyTable.dram
            bandwidth_bytes_per_cycle=max(bytes_per_cycle, 1e-3),
            line_bytes=self.config.cache_line_bytes,
        )

    # -- single kernels -----------------------------------------------------
    def _execute_trace(self, trace: KernelTrace) -> Tuple[float, SimStats]:
        """Run the event-driven wave simulation for one trace.

        The irreducibly sequential core: cache setup, optional warmup and
        the SM wave loop.  Returns the raw (unscaled) wave cycles and
        stats, with L1 counters already folded in.
        """
        # Cache capacities are scaled into the trace's reduced address
        # space so footprint-to-capacity ratios match the full kernel.
        scale = trace.cache_scale
        line = self.config.cache_line_bytes
        l1 = Cache(
            max(line * 2, int(self.config.l1_bytes_per_sm * scale)),
            line_bytes=line,
            associativity=8,
        )
        l2 = Cache(
            max(line * 4, int(self.config.l2_bytes * scale)),
            line_bytes=line,
            associativity=16,
        )
        if self.warmup is not None:
            self.warmup.apply(trace, l1, l2)
            l1.reset_stats()
            l2.reset_stats()
        dram = self._make_dram()
        sm = StreamingMultiprocessor(self.latencies, l1, l2, dram)
        wave_cycles, stats = sm.execute_wave(trace)
        stats.l1_hits = l1.stats.hits
        stats.l1_misses = l1.stats.misses
        return wave_cycles, stats

    def _noise_factor(self, seed: int, index: int) -> float:
        """Per-invocation hardware-noise multiplier (log-normal, mean 1)."""
        if not self.noise:
            return 1.0
        rng = np.random.default_rng((seed * 0x9E3779B9 + index) & 0xFFFFFFFF)
        return float(np.exp(rng.standard_normal() * self.noise - 0.5 * self.noise**2))

    def simulate_trace(self, trace: KernelTrace, seed: int = 0) -> KernelSimResult:
        wave_cycles, stats = self._execute_trace(trace)

        index = trace.invocation.index
        noise = self._noise_factor(seed, index)
        launch_cycles = self.config.launch_overhead_us * self.config.cycles_per_us()
        cycles = (wave_cycles * trace.extrapolation + launch_cycles) * noise
        # Event counters cover the traced wave; scale them by the same
        # extrapolation as the cycles so stats describe the whole kernel.
        factor = trace.extrapolation
        for field_name in _EVENT_FIELDS:
            setattr(stats, field_name, int(round(getattr(stats, field_name) * factor)))
        stats.stall_cycles *= factor
        stats.cycles = cycles
        obs.inc("sim.kernels_executed")
        obs.observe("sim.kernel_cycles", cycles)
        return KernelSimResult(
            invocation_index=index,
            cycles=cycles,
            wave_cycles=wave_cycles,
            extrapolation=trace.extrapolation,
            stats=stats,
        )

    def simulate_invocation(
        self,
        workload: Workload,
        index: int,
        seed: int = 0,
        attempt: int = 1,
    ) -> KernelSimResult:
        if self.fault_injector is not None:
            self.fault_injector.check_simulation(int(index), attempt)
        trace = self.tracer.generate(workload.invocation(index), seed=seed)
        return self.simulate_trace(trace, seed=seed)

    # -- workloads ---------------------------------------------------------
    def simulate_workload(
        self,
        workload: Workload,
        indices: Optional[Iterable[int]] = None,
        seed: int = 0,
    ) -> WorkloadSimResult:
        """Simulate the workload (or the subset ``indices``), in order.

        Batched: the event-driven wave simulation still runs per trace
        (it is inherently sequential), but noise, launch overhead,
        extrapolation scaling, counter rounding and aggregation are
        single array operations over all invocations.  Results are
        bit-identical to calling :meth:`simulate_invocation` per index —
        the arithmetic is the same IEEE ops, applied elementwise.
        """
        if indices is None:
            indices = range(len(workload))
        index_list = [int(i) for i in indices]
        n = len(index_list)
        aggregate = SimStats()
        with obs.span("sim.workload", workload=workload.name) as sp:
            wave_list: List[float] = []
            extrap_list: List[float] = []
            stats_list: List[SimStats] = []
            noise_list: List[float] = []
            for index in index_list:
                if self.fault_injector is not None:
                    self.fault_injector.check_simulation(index, 1)
                trace = self.tracer.generate(workload.invocation(index), seed=seed)
                wave_cycles, stats = self._execute_trace(trace)
                wave_list.append(wave_cycles)
                extrap_list.append(trace.extrapolation)
                stats_list.append(stats)
                noise_list.append(self._noise_factor(seed, index))
            sp.attrs["kernels"] = n

            if n:
                waves = np.asarray(wave_list, dtype=np.float64)
                extraps = np.asarray(extrap_list, dtype=np.float64)
                noises = np.asarray(noise_list, dtype=np.float64)
                launch = (
                    self.config.launch_overhead_us * self.config.cycles_per_us()
                )
                cycles = (waves * extraps + launch) * noises
                events = np.array(
                    [[getattr(s, f) for f in _EVENT_FIELDS] for s in stats_list],
                    dtype=np.float64,
                )
                # np.round is half-to-even, exactly like the scalar path's
                # ``int(round(...))``.
                scaled = np.round(events * extraps[:, None]).astype(np.int64)
            else:
                cycles = np.empty(0, dtype=np.float64)
                scaled = np.empty((0, len(_EVENT_FIELDS)), dtype=np.int64)

            results: List[KernelSimResult] = []
            for i, (index, stats) in enumerate(zip(index_list, stats_list)):
                for j, field_name in enumerate(_EVENT_FIELDS):
                    setattr(stats, field_name, int(scaled[i, j]))
                stats.stall_cycles *= extrap_list[i]
                kernel_cycles = float(cycles[i])
                stats.cycles = kernel_cycles
                results.append(
                    KernelSimResult(
                        invocation_index=index,
                        cycles=kernel_cycles,
                        wave_cycles=wave_list[i],
                        extrapolation=extrap_list[i],
                        stats=stats,
                    )
                )
            obs.inc("sim.kernels_executed", n)
            if obs.is_enabled():
                for kernel_cycles in cycles:
                    obs.observe("sim.kernel_cycles", float(kernel_cycles))

        if n:
            totals = scaled.sum(axis=0)
            for j, field_name in enumerate(_EVENT_FIELDS):
                setattr(aggregate, field_name, int(totals[j]))
            aggregate.stall_cycles = float(sum(s.stall_cycles for s in stats_list))
        aggregate.cycles = float(sum(r.cycles for r in results))
        return WorkloadSimResult(
            workload_name=workload.name,
            kernel_results=results,
            aggregate=aggregate,
        )

    def cycle_counts(
        self, workload: Workload, seed: int = 0
    ) -> np.ndarray:
        """Per-invocation cycle counts of a full simulation."""
        result = self.simulate_workload(workload, seed=seed)
        return np.array([r.cycles for r in result.kernel_results], dtype=np.float64)
