"""Top-level cycle-level GPU simulator.

The reproduction's MacSim stand-in for the design-space-exploration
experiments (Table 4, Figure 12).  One representative SM is simulated in
detail per kernel wave and the result extrapolated across waves — a
standard reduction whose consistency between "full" and "sampled" runs is
what the sampling-error comparison requires.

Hardware sensitivity enters exactly where the paper's DSE varies it:

* **SM count** — more SMs mean fewer waves (compute side speeds up) but a
  thinner per-SM slice of L2 capacity and DRAM bandwidth (memory-bound
  kernels do not);
* **cache size** — the simulated L1 and the per-SM L2 slice grow or
  shrink, moving hit rates and hence memory latencies.

Caches cold-start at every kernel launch — the paper's extreme-case
L2-flush scenario, which its Sec. 6.2 study found costs well under 1%
accuracy because most reuse happens within kernels rather than across
them.  Cross-kernel L2 persistence is out of scope for the reduced-trace
design (the scaled address space differs per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..analysis import detsan
from ..hardware.gpu_config import GPUConfig
from ..memo.dedup import collapse_draws
from ..memo.sim_cache import RawKernelSim
from ..workloads.workload import Workload
from .batch import BatchPolicy, execute_wave_batch
from .cache import Cache
from .memory import DramModel
from .noise import noise_factors
from .sm import LatencyTable, StreamingMultiprocessor
from .stats import SimStats
from .trace import KernelTrace, TraceGenerator

__all__ = ["KernelSimResult", "WorkloadSimResult", "GpuSimulator"]

#: Event counters scaled by wave extrapolation (everything but the float
#: ``cycles``/``stall_cycles``), in a fixed order so batch simulation can
#: round and aggregate them as one matrix.
_EVENT_FIELDS = (
    "instructions", "fp32_ops", "fp16_ops", "int_ops", "sfu_ops",
    "shared_ops", "branches", "global_loads", "global_stores",
    "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "dram_accesses", "dram_bytes",
)


@dataclass(frozen=True)
class KernelSimResult:
    """Outcome of simulating one kernel invocation."""

    invocation_index: int
    cycles: float
    wave_cycles: float
    extrapolation: float
    stats: SimStats


@dataclass
class WorkloadSimResult:
    """Outcome of simulating a (subset of a) workload."""

    workload_name: str
    kernel_results: List[KernelSimResult]
    aggregate: SimStats

    def __post_init__(self) -> None:
        self._total_cycles: Optional[float] = None
        self._cycles_by_index: Optional[dict] = None

    @property
    def total_cycles(self) -> float:
        # Cached: estimators query this repeatedly per plan evaluation.
        if self._total_cycles is None:
            self._total_cycles = float(sum(r.cycles for r in self.kernel_results))
        return self._total_cycles

    def cycles_by_index(self) -> dict:
        if self._cycles_by_index is None:
            self._cycles_by_index = {
                r.invocation_index: r.cycles for r in self.kernel_results
            }
        return self._cycles_by_index


class GpuSimulator:
    """Trace-driven cycle-level GPU simulator."""

    def __init__(
        self,
        config: GPUConfig,
        latencies: Optional[LatencyTable] = None,
        max_instructions_per_warp: int = 192,
        max_resident_warps: int = 24,
        noise: float = 0.02,
        warmup=None,
        fault_injector=None,
        sim_cache=None,
        batch_policy: Optional[BatchPolicy] = None,
    ):
        self.config = config
        self.latencies = latencies or self._derive_latencies(config)
        self.tracer = TraceGenerator(
            num_sms=config.num_sms,
            max_blocks_per_sm=config.max_blocks_per_sm,
            max_warps_per_sm=config.max_warps_per_sm,
            max_instructions_per_warp=max_instructions_per_warp,
            max_resident_warps=max_resident_warps,
            line_bytes=config.cache_line_bytes,
        )
        self.noise = noise
        #: Optional cache-warmup strategy (see :mod:`repro.sim.warmup`).
        self.warmup = warmup
        #: Optional :class:`~repro.resilience.faults.FaultInjector`; when
        #: set, :meth:`simulate_invocation` consults it and raises
        #: :class:`~repro.errors.SimulationFailure` for invocations the
        #: fault plan dooms — the hook the resilient executor retries
        #: around.  ``None`` (the default) costs nothing.
        self.fault_injector = fault_injector
        #: Optional :class:`~repro.memo.SimResultCache`; when set,
        #: :meth:`simulate_workload` reuses raw per-invocation results
        #: across calls, repetitions and runs instead of re-simulating.
        self.sim_cache = sim_cache
        #: Structure-of-arrays batching policy for multi-invocation
        #: simulation (see :mod:`repro.sim.batch`).  Pure performance
        #: knobs: results are bit-identical at any setting, so the
        #: policy deliberately contributes nothing to
        #: :meth:`memo_identity`.
        self.batch_policy = batch_policy or BatchPolicy()

    @staticmethod
    def _derive_latencies(config: GPUConfig) -> LatencyTable:
        cycles_per_ns = config.clock_ghz
        return LatencyTable(
            l2_hit=max(20.0, config.l2_latency_ns * cycles_per_ns),
            dram=max(100.0, config.dram_latency_ns * cycles_per_ns),
        )

    def _make_dram(self) -> DramModel:
        # Per-SM share of DRAM bandwidth, in bytes per core cycle.
        per_sm_gbps = self.config.dram_bandwidth_gbps / self.config.num_sms
        bytes_per_cycle = per_sm_gbps / self.config.clock_ghz
        return DramModel(
            latency_cycles=0.0,  # fixed latency lives in LatencyTable.dram
            bandwidth_bytes_per_cycle=max(bytes_per_cycle, 1e-3),
            line_bytes=self.config.cache_line_bytes,
        )

    # -- single kernels -----------------------------------------------------
    def _execute_trace(self, trace: KernelTrace) -> Tuple[float, SimStats]:
        """Run the event-driven wave simulation for one trace.

        The irreducibly sequential core: cache setup, optional warmup and
        the SM wave loop.  Returns the raw (unscaled) wave cycles and
        stats, with L1 counters already folded in.
        """
        # Cache capacities are scaled into the trace's reduced address
        # space so footprint-to-capacity ratios match the full kernel.
        scale = trace.cache_scale
        line = self.config.cache_line_bytes
        l1 = Cache(
            max(line * 2, int(self.config.l1_bytes_per_sm * scale)),
            line_bytes=line,
            associativity=8,
        )
        l2 = Cache(
            max(line * 4, int(self.config.l2_bytes * scale)),
            line_bytes=line,
            associativity=16,
        )
        if self.warmup is not None:
            self.warmup.apply(trace, l1, l2)
            l1.reset_stats()
            l2.reset_stats()
        dram = self._make_dram()
        sm = StreamingMultiprocessor(self.latencies, l1, l2, dram)
        wave_cycles, stats = sm.execute_wave(trace)
        stats.l1_hits = l1.stats.hits
        stats.l1_misses = l1.stats.misses
        return wave_cycles, stats

    def _noise_factor(self, seed: int, index: int) -> float:
        """Per-invocation hardware-noise multiplier (log-normal, mean 1)."""
        if not self.noise:
            return 1.0
        rng = np.random.default_rng((seed * 0x9E3779B9 + index) & 0xFFFFFFFF)
        return float(np.exp(rng.standard_normal() * self.noise - 0.5 * self.noise**2))

    def simulate_trace(self, trace: KernelTrace, seed: int = 0) -> KernelSimResult:
        wave_cycles, stats = self._execute_trace(trace)

        index = trace.invocation.index
        noise = self._noise_factor(seed, index)
        launch_cycles = self.config.launch_overhead_us * self.config.cycles_per_us()
        cycles = (wave_cycles * trace.extrapolation + launch_cycles) * noise
        # Event counters cover the traced wave; scale them by the same
        # extrapolation as the cycles so stats describe the whole kernel.
        factor = trace.extrapolation
        for field_name in _EVENT_FIELDS:
            setattr(stats, field_name, int(round(getattr(stats, field_name) * factor)))
        stats.stall_cycles *= factor
        stats.cycles = cycles
        obs.inc("sim.kernels_executed")
        obs.observe("sim.kernel_cycles", cycles)
        return KernelSimResult(
            invocation_index=index,
            cycles=cycles,
            wave_cycles=wave_cycles,
            extrapolation=trace.extrapolation,
            stats=stats,
        )

    def simulate_invocation(
        self,
        workload: Workload,
        index: int,
        seed: int = 0,
        attempt: int = 1,
    ) -> KernelSimResult:
        if self.fault_injector is not None:
            self.fault_injector.check_simulation(int(index), attempt)
        trace = self.tracer.generate(workload.invocation(index), seed=seed)
        return self.simulate_trace(trace, seed=seed)

    # -- memoization --------------------------------------------------------
    def memo_identity(self) -> str:
        """Everything beyond (workload, GPU, seed) that shapes raw results.

        Part of the simulation-cache context key: the latency table and
        trace-reduction knobs change raw wave cycles, and a warmup
        strategy changes cache hit counters.  A warmup object without a
        stable ``repr`` keys on its object identity, which degrades to
        per-process caching — never to a stale hit.
        """
        return (
            f"{self.latencies!r}"
            f"|mi{self.tracer.max_instructions_per_warp}"
            f"|mr{self.tracer.max_resident_warps}"
            f"|warmup={self.warmup!r}"
        )

    def _raw_invocation(self, workload: Workload, index: int, seed: int) -> RawKernelSim:
        """Raw (unscaled) simulation of one invocation — the pure core."""
        trace = self.tracer.generate(workload.invocation(index), seed=seed)
        wave_cycles, stats = self._execute_trace(trace)
        return RawKernelSim(
            wave_cycles=float(wave_cycles),
            extrapolation=float(trace.extrapolation),
            stall_cycles=float(stats.stall_cycles),
            events=np.array(
                [getattr(stats, f) for f in _EVENT_FIELDS], dtype=np.int64
            ),
        )

    def _raw_invocations(
        self, workload: Workload, indices: List[int], seed: int
    ) -> List[RawKernelSim]:
        """Raw simulations for ``indices``, in order.

        Multi-invocation requests run through the batched
        structure-of-arrays engine (:func:`execute_wave_batch`) when the
        policy allows; results are bit-identical to the scalar
        per-invocation loop, which remains both the fallback (single
        index, warmup attached, batching disabled) and the oracle the
        parity suite checks against.
        """
        policy = self.batch_policy
        if not (policy.enabled and self.warmup is None and len(indices) > 1):
            return [
                self._raw_invocation(workload, index, seed) for index in indices
            ]
        traces = [
            self.tracer.generate(workload.invocation(index), seed=seed)
            for index in indices
        ]
        pairs, report = execute_wave_batch(
            traces, self.latencies, self.config, policy
        )
        if obs.is_enabled():
            obs.inc("sim.batch.calls")
            obs.inc("sim.batch.lanes", report.batched_lanes)
            obs.inc("sim.batch.scalar_lanes", report.scalar_lanes)
            obs.inc("sim.batch.chunks", report.chunks)
            obs.observe("sim.batch.width", float(report.batched_lanes))
            obs.observe("sim.batch.fill_ratio", float(report.fill_ratio))
        return [
            RawKernelSim(
                wave_cycles=float(wave_cycles),
                extrapolation=float(trace.extrapolation),
                stall_cycles=float(stats.stall_cycles),
                events=np.array(
                    [getattr(stats, f) for f in _EVENT_FIELDS], dtype=np.int64
                ),
            )
            for trace, (wave_cycles, stats) in zip(traces, pairs)
        ]

    @staticmethod
    def _stats_from_raw(raw: RawKernelSim) -> SimStats:
        """Fresh mutable stats per result slot (post-processing mutates)."""
        stats = SimStats(stall_cycles=raw.stall_cycles)
        for j, field_name in enumerate(_EVENT_FIELDS):
            setattr(stats, field_name, int(raw.events[j]))
        return stats

    # -- workloads ---------------------------------------------------------
    def simulate_workload(
        self,
        workload: Workload,
        indices: Optional[Iterable[int]] = None,
        seed: int = 0,
        dedup: bool = True,
    ) -> WorkloadSimResult:
        """Simulate the workload (or the subset ``indices``), in order.

        Batched end to end: wave simulation of the not-yet-cached
        invocations runs through the structure-of-arrays lock-step
        engine (:mod:`repro.sim.batch`), and noise, launch overhead,
        extrapolation scaling, counter rounding and aggregation are
        single array operations over all invocations.  Results are
        bit-identical to calling :meth:`simulate_invocation` per index —
        each lock-step lane performs the same IEEE ops in the same order
        as the scalar event loop, and the post-processing is the same
        arithmetic applied elementwise.

        With ``dedup=True`` (the default) repeated indices — routine for
        with-replacement sampling plans — are simulated once and their
        raw results gathered back per slot; when a
        :class:`~repro.memo.SimResultCache` is attached, unique
        invocations already simulated by an earlier call, process or run
        are reused from the cache.  Both reuse paths feed the identical
        vectorized post-processing below, so every result and aggregate
        stays bit-for-bit equal to ``dedup=False``.
        """
        if indices is None:
            indices = range(len(workload))
        index_list = [int(i) for i in indices]
        n = len(index_list)
        aggregate = SimStats()
        with obs.span("sim.workload", workload=workload.name) as sp:
            # Fault decisions are pure functions of (plan seed, index,
            # attempt), so checking every index upfront raises the same
            # first failure as the interleaved loop — without paying for
            # the simulations ahead of it.
            if self.fault_injector is not None:
                for index in index_list:
                    self.fault_injector.check_simulation(index, 1)

            if dedup:
                draws = collapse_draws(index_list)
                unique_list = [int(i) for i in draws.unique]
                obs.inc("memo.dedup.draws", draws.num_draws)
                obs.inc("memo.dedup.collapsed", draws.collapsed)
                raw_by_index = {}
                missing = unique_list
                context = None
                if self.sim_cache is not None and unique_list:
                    context = self.sim_cache.context_for(
                        workload, self.config, seed, self.memo_identity()
                    )
                    raw_by_index, missing = self.sim_cache.load(context, unique_list)
                for index, raw in zip(
                    missing, self._raw_invocations(workload, missing, seed)
                ):
                    raw_by_index[index] = raw
                if self.sim_cache is not None and missing:
                    self.sim_cache.store(context, unique_list, raw_by_index)
                executed = len(missing)
                raws = [raw_by_index[index] for index in index_list]
            else:
                raws = self._raw_invocations(workload, index_list, seed)
                executed = n

            wave_list: List[float] = [raw.wave_cycles for raw in raws]
            extrap_list: List[float] = [raw.extrapolation for raw in raws]
            stats_list: List[SimStats] = [self._stats_from_raw(raw) for raw in raws]
            # Vectorized replication of the per-index keyed generators;
            # bit-identical to calling ``_noise_factor`` per slot (see
            # :mod:`repro.sim.noise`).
            noise_arr = noise_factors(seed, index_list, self.noise)
            sp.attrs["kernels"] = n
            sp.attrs["kernels_simulated"] = executed

            if n:
                waves = np.asarray(wave_list, dtype=np.float64)
                extraps = np.asarray(extrap_list, dtype=np.float64)
                noises = noise_arr
                launch = (
                    self.config.launch_overhead_us * self.config.cycles_per_us()
                )
                cycles = (waves * extraps + launch) * noises
                events = np.array(
                    [[getattr(s, f) for f in _EVENT_FIELDS] for s in stats_list],
                    dtype=np.float64,
                )
                # np.round is half-to-even, exactly like the scalar path's
                # ``int(round(...))``.
                scaled = np.round(events * extraps[:, None]).astype(np.int64)
            else:
                cycles = np.empty(0, dtype=np.float64)
                scaled = np.empty((0, len(_EVENT_FIELDS)), dtype=np.int64)

            results: List[KernelSimResult] = []
            for i, (index, stats) in enumerate(zip(index_list, stats_list)):
                for j, field_name in enumerate(_EVENT_FIELDS):
                    setattr(stats, field_name, int(scaled[i, j]))
                stats.stall_cycles *= extrap_list[i]
                kernel_cycles = float(cycles[i])
                stats.cycles = kernel_cycles
                results.append(
                    KernelSimResult(
                        invocation_index=index,
                        cycles=kernel_cycles,
                        wave_cycles=wave_list[i],
                        extrapolation=extrap_list[i],
                        stats=stats,
                    )
                )
            # Counts wave simulations actually run (deduped/cached reuse
            # is free); per-slot cycles still land in the histogram below.
            obs.inc("sim.kernels_executed", executed)
            if obs.is_enabled():
                for kernel_cycles in cycles:
                    obs.observe("sim.kernel_cycles", float(kernel_cycles))

        if n:
            totals = scaled.sum(axis=0)
            for j, field_name in enumerate(_EVENT_FIELDS):
                setattr(aggregate, field_name, int(totals[j]))
            aggregate.stall_cycles = float(sum(s.stall_cycles for s in stats_list))
        aggregate.cycles = float(sum(r.cycles for r in results))
        if detsan.is_enabled():
            # Sync point: per-invocation cycles and scaled counters must
            # be bit-identical across engine configs (scalar vs batch,
            # cold vs warm cache, dedup on/off).  The key is engine-
            # invariant; the "cycle" family tag keeps these recordings
            # disjoint from the analytical tier's.
            tag = (
                f"sim.cycle|{workload.name}|seed={seed}"
                f"|idx={detsan.index_digest(index_list)}"
            )
            detsan.record(tag + "|cycles", cycles)
            detsan.record(tag + "|events", scaled)
        return WorkloadSimResult(
            workload_name=workload.name,
            kernel_results=results,
            aggregate=aggregate,
        )

    def cycle_counts(
        self, workload: Workload, seed: int = 0
    ) -> np.ndarray:
        """Per-invocation cycle counts of a full simulation."""
        result = self.simulate_workload(workload, seed=seed)
        return np.array([r.cycles for r in result.kernel_results], dtype=np.float64)
