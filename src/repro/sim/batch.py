"""Batched structure-of-arrays wave simulation: many traces in lock-step.

The event-driven :class:`~repro.sim.sm.StreamingMultiprocessor` loop is
inherently sequential *within* one trace — the single issue port orders
every instruction — but kernel invocations are independent of each other:
each gets its own L1/L2/DRAM state.  That makes "many invocations" a free
SIMD axis.  This module converts a set of :class:`KernelTrace`s into
structure-of-arrays form (per-warp program counters, ready times, op
latencies and pre-resolved cache-line numbers padded to the widest trace)
and advances *all* waves in lock-step, one instruction per trace per
step:

* ready-warp selection is a row-wise ``argmin`` (ties resolve to the
  lowest warp index, exactly like the scalar ``(ready, w)`` heap);
* the per-trace issue port serializes issues through a ``port`` array;
* L1/L2/DRAM lookups run as array gathers against timestamp-LRU caches
  that reproduce the scalar list-LRU decision for decision.

Bit-identity with the scalar path is a structural property, not a
numerical accident: step *t* of lane *b* performs the same IEEE float
operations, in the same order, on the same values as iteration *t* of
the scalar event loop for trace *b*.  The parity suite
(``tests/test_simbatch.py``) asserts this across every bundled workload,
and the scalar path stays available as the oracle.

Performance shape: one lock-step iteration costs a fixed number of numpy
calls regardless of batch width, so throughput grows with width while
the scalar path grows with width x trace length.  Below
``BatchPolicy.min_width`` lanes the fixed per-step overhead loses to the
plain Python loop, which is why the policy keeps a floor.

Traces are sorted by total instruction count (descending) so finished
lanes form a suffix: the active set is always a zero-copy prefix slice.
Lanes whose scaled cache would need a pathologically large dense tag
array run through the scalar oracle instead (see
``BatchPolicy.max_lane_cache_bytes``); results are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .cache import Cache
from .memory import DramModel
from .sm import LatencyTable, StreamingMultiprocessor
from .stats import SimStats
from .trace import KernelTrace, Op

__all__ = ["BatchPolicy", "BatchExecReport", "execute_wave_batch"]

#: Sentinel "never ready" time for finished warps.  Deliberately a huge
#: *finite* float rather than ``inf``: finite arithmetic keeps every
#: masked lane's numbers well-defined (``inf - inf`` would poison NaN
#: into adjacent where-expressions) while still losing every ``argmin``
#: against any real ready time.
_BIG = 1.0e300

#: Stamp value larger than any step index, used to mask ways beyond a
#: lane's associativity out of the LRU victim argmin.
_IBIG = np.int64(2**62)

_MEM_KINDS = (Op.LOAD, Op.STORE)


@dataclass(frozen=True)
class BatchPolicy:
    """Tuning knobs for the batched engine.

    Every knob here is pure performance policy: any setting produces
    bit-identical results (the parity suite pins this), so none of these
    fields may enter ``memo_identity()`` — cached results computed at any
    width must keep hitting.  ``repro lint``'s cache-key pass enforces
    exactly that via the ``[[tool.repro.lint.cache-key]]`` spec in
    pyproject.toml.
    """

    #: Master switch; ``False`` forces the scalar oracle everywhere.
    enabled: bool = True
    #: Fewest pending traces worth batching.  One lock-step iteration
    #: costs a fixed ~30 numpy calls however wide the batch is, so very
    #: narrow batches lose to the plain Python loop (measured breakeven
    #: is near 16 lanes on CPython 3.11; see docs/performance.md).
    min_width: int = 16
    #: Widest single lock-step chunk; wider batches run as consecutive
    #: chunks (lanes are independent, so chunk boundaries cannot change
    #: results — they only bound peak memory).
    max_width: int = 512
    #: A lane whose scaled L1+L2 would need a dense tag/stamp array
    #: bigger than this runs through the scalar oracle instead (its
    #: dict-backed cache is sparse).  Keeps degenerate cache_scale
    #: values from allocating gigabytes.
    max_lane_cache_bytes: int = 8 << 20
    #: Ceiling for one chunk's dense cache arrays; chunks close early
    #: when the running (width x widest-geometry) product would pass it.
    max_chunk_cache_bytes: int = 256 << 20

    def memo_identity(self) -> str:
        """Contribution to the simulation-cache key: always empty.

        Batched and scalar execution are bit-identical, so no batch knob
        may invalidate cached raw results.  Changing this to return
        anything non-constant requires evidence that results changed —
        which would be a bug in the engine, not a cache-key concern.
        """
        return ""


@dataclass
class BatchExecReport:
    """What one ``execute_wave_batch`` call did (feeds ``sim.batch.*``)."""

    #: Traces simulated in lock-step (excludes scalar-oracle lanes).
    batched_lanes: int = 0
    #: Traces routed through the scalar oracle (oversized caches).
    scalar_lanes: int = 0
    #: Number of lock-step chunks run.
    chunks: int = 0
    #: Useful-work fraction of the padded step grid: sum of per-lane
    #: steps over (width x longest lane), averaged over chunks weighted
    #: by their step counts.  1.0 means no padding waste.
    fill_ratio: float = 1.0


class _LaneCaches:
    """Timestamp-LRU set-associative caches for a chunk of lanes.

    Reproduces :class:`repro.sim.cache.Cache` exactly: tags live in a
    dense, flat ``[lane * set, way]`` array, recency is a monotone
    per-step stamp, the victim on a full-set miss is the stamped-oldest
    way (``== ways.pop(0)``), and fills below associativity append in
    fill order (``== ways.append``).  Stamps within one lane are
    distinct — a lane makes at most one access per cache per step — so
    the victim argmin never ties among real ways; ways beyond a lane's
    associativity are pre-stamped with a sentinel larger than any step,
    so they lose every argmin and need no masking in the hot path.

    Only hits are counted: every memory slot is accessed exactly once,
    so misses (and the DRAM traffic behind L2) follow statically from
    the per-lane access totals.
    """

    __slots__ = ("nsets", "assoc", "tags", "stamps", "tags_flat",
                 "stamps_flat", "fill", "hits", "assoc_per_set", "n_ways",
                 "n_sets_max")

    def __init__(self, size_bytes: np.ndarray, line_bytes: int, associativity: int):
        num_lines = np.maximum(1, size_bytes // line_bytes)
        assoc = np.minimum(associativity, num_lines)
        self.nsets = np.maximum(1, num_lines // assoc)
        self.assoc = assoc
        lanes = len(size_bytes)
        n_sets = int(self.nsets.max())
        n_ways = int(assoc.max())
        self.n_ways = n_ways
        self.n_sets_max = n_sets
        self.tags = np.full((lanes * n_sets, n_ways), -1, dtype=np.int64)
        stamps = np.zeros((lanes, n_sets, n_ways), dtype=np.int64)
        pad_ways = np.arange(n_ways)[None, :] >= assoc[:, None]  # [lanes, ways]
        stamps += np.where(pad_ways, _IBIG, np.int64(0))[:, None, :]
        self.stamps = stamps.reshape(lanes * n_sets, n_ways)
        # Flat 1-D views over the same memory: scatters through a single
        # flat index are markedly cheaper than multi-axis fancy indexing.
        self.tags_flat = self.tags.reshape(-1)
        self.stamps_flat = self.stamps.reshape(-1)
        self.fill = np.zeros(lanes * n_sets, dtype=np.int64)
        self.hits = np.zeros(lanes, dtype=np.int64)
        # Per-(lane, set) associativity, for one-gather clamping.
        self.assoc_per_set = np.repeat(assoc, n_sets)

    @staticmethod
    def dense_bytes(size_bytes: np.ndarray, line_bytes: int, associativity: int) -> np.ndarray:
        """Per-lane dense tag+stamp footprint of the given geometry."""
        num_lines = np.maximum(1, size_bytes // line_bytes)
        assoc = np.minimum(associativity, num_lines)
        nsets = np.maximum(1, num_lines // assoc)
        return nsets * assoc * 16  # int64 tags + int64 stamps

    def access(self, lanes: np.ndarray, lines: np.ndarray, stamp: int) -> np.ndarray:
        """Access one line per lane; returns the hit mask.

        ``lanes`` must be unique (one access per lane per step), which
        makes the fancy-indexed updates race-free.
        """
        flat_set = lanes * self.n_sets_max + lines % self.nsets.take(lanes)
        ways = self.tags.take(flat_set, axis=0)
        match = ways == lines[:, None]
        hit = match.any(axis=1)
        self.hits[lanes] += hit
        # Touched way per row: the (unique) matching way on a hit — the
        # argmax is computed for every row but only believed where ``hit``
        # is set — and the fill/LRU victim on a miss.
        flat_way = flat_set * self.n_ways + match.argmax(axis=1)
        miss = (~hit).nonzero()[0]
        if len(miss):
            flat_miss = flat_set.take(miss)
            filled = self.fill.take(flat_miss)
            assoc = self.assoc_per_set.take(flat_miss)
            full = filled >= assoc
            victim = np.where(
                full, self.stamps.take(flat_miss, axis=0).argmin(axis=1), filled
            )
            flat_miss_way = flat_miss * self.n_ways + victim
            flat_way[miss] = flat_miss_way
            self.tags_flat[flat_miss_way] = lines.take(miss)
            self.fill[flat_miss] = np.minimum(filled + 1, assoc)
        # One recency-stamp scatter covers hits and misses alike.
        self.stamps_flat[flat_way] = stamp
        return hit


class _Chunk:
    """Structure-of-arrays state for one lock-step chunk."""

    __slots__ = (
        "traces", "steps", "ready", "pcs", "warp_len", "lat", "memidx",
        "addr_lines", "l1", "l2", "busy", "events", "instructions",
    )

    def __init__(self, traces: Sequence[KernelTrace], latencies: LatencyTable, config):
        self.traces = traces
        lanes = len(traces)
        n_warps = max(len(t.warps) for t in traces)
        n_instr = max(max(len(w.kinds) for w in t.warps) for t in traces)
        n_mem = max(max(len(w.addresses) for w in t.warps) for t in traces)

        kinds = np.zeros((lanes, n_warps, n_instr), dtype=np.int8)
        self.warp_len = np.zeros((lanes, n_warps), dtype=np.int64)
        self.addr_lines = np.zeros((lanes, n_warps, max(n_mem, 1)), dtype=np.int64)
        self.ready = np.full((lanes, n_warps), _BIG, dtype=np.float64)
        line_bytes = config.cache_line_bytes
        for b, trace in enumerate(traces):
            for w, warp in enumerate(trace.warps):
                k = len(warp.kinds)
                kinds[b, w, :k] = warp.kinds
                self.warp_len[b, w] = k
                m = len(warp.addresses)
                self.addr_lines[b, w, :m] = warp.addresses // line_bytes
                self.ready[b, w] = 0.0
        self.pcs = np.zeros((lanes, n_warps), dtype=np.int64)
        self.steps = self.warp_len.sum(axis=1)

        # Latency per slot: compute kinds resolve now; memory kinds get
        # NaN so the step loop can detect them with one isnan.  The
        # division mirrors ``_compute_latency`` bit for bit.
        lat = latencies
        base = np.array(
            [lat.fp32, lat.fp16, lat.int_alu, lat.sfu, lat.shared, lat.branch,
             np.nan, np.nan],
            dtype=np.float64,
        )
        efficiency = np.array(
            [t.invocation.context.efficiency for t in traces], dtype=np.float64
        )
        denom = lat.ilp * np.maximum(efficiency, 1e-3)
        self.lat = base[kinds] / denom[:, None, None]

        is_mem = (kinds == Op.LOAD) | (kinds == Op.STORE)
        self.memidx = np.cumsum(is_mem, axis=2, dtype=np.int64) - is_mem

        scales = np.array([t.cache_scale for t in traces], dtype=np.float64)
        l1_bytes = np.maximum(
            line_bytes * 2, (config.l1_bytes_per_sm * scales).astype(np.int64)
        )
        l2_bytes = np.maximum(
            line_bytes * 4, (config.l2_bytes * scales).astype(np.int64)
        )
        self.l1 = _LaneCaches(l1_bytes, line_bytes, 8)
        self.l2 = _LaneCaches(l2_bytes, line_bytes, 16)
        self.busy = np.zeros(lanes, dtype=np.float64)

        # Static event counts: every traced instruction issues exactly
        # once, so per-kind totals never depend on timing.
        self.events = np.zeros((lanes, 8), dtype=np.int64)
        valid = np.arange(n_instr)[None, None, :] < self.warp_len[:, :, None]
        lane_ids = np.broadcast_to(np.arange(lanes)[:, None, None], kinds.shape)[valid]
        np.add.at(self.events, (lane_ids, kinds[valid].astype(np.int64)), 1)
        self.instructions = self.steps.copy()


def _dram_service_cycles(config) -> float:
    """Exactly ``GpuSimulator._make_dram()``'s service time in cycles."""
    per_sm_gbps = config.dram_bandwidth_gbps / config.num_sms
    bytes_per_cycle = per_sm_gbps / config.clock_ghz
    return config.cache_line_bytes / max(bytes_per_cycle, 1e-3)


def _run_chunk(
    chunk: _Chunk, latencies: LatencyTable, config
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance every lane of the chunk to completion.

    Returns (wave_cycles[lanes], stall_cycles[lanes]); hit counters
    accumulate inside the chunk's cache state.  Lanes must be ordered by
    descending step count so the active set stays a prefix — the lane
    ids inside the loop are then just ``arange(active)``, and every
    per-lane array is addressed by zero-copy prefix slices.

    The loop body works on *flat* views with single-axis ``take``/fancy
    scatters: multi-axis fancy indexing costs 2-3x as much per call, and
    at a fixed ~30 numpy calls per lock-step iteration the constant
    factor is the whole game.
    """
    lanes = len(chunk.traces)
    steps = chunk.steps
    total = int(steps.max()) if lanes else 0
    n_warps = chunk.ready.shape[1]
    n_instr = chunk.lat.shape[2]
    n_mem = chunk.addr_lines.shape[2]

    # Active-lane count per step, precomputed: lanes are sorted by
    # descending step count, so the count still running at step t is a
    # searchsorted on the reversed (ascending) array.
    active_at = lanes - np.searchsorted(steps[::-1], np.arange(total), side="right")

    ready = chunk.ready            # [lanes, W] — argmin runs on 2-D rows
    ready_flat = ready.reshape(-1)
    pcs_flat = chunk.pcs.reshape(-1)
    lat_flat = chunk.lat.reshape(-1)
    memidx_flat = chunk.memidx.reshape(-1)
    addr_flat = chunk.addr_lines.reshape(-1)
    warp_len_flat = chunk.warp_len.reshape(-1)
    l1, l2 = chunk.l1, chunk.l2
    busy = chunk.busy

    port = np.zeros(lanes, dtype=np.float64)
    stall = np.zeros(lanes, dtype=np.float64)
    last_completion = np.zeros(lanes, dtype=np.float64)
    lane_range = np.arange(lanes)

    lat_tbl = latencies
    l1_latency = lat_tbl.l1_hit / lat_tbl.ilp
    l2_latency = lat_tbl.l2_hit / lat_tbl.ilp
    dram_latency = lat_tbl.dram / lat_tbl.ilp
    service = _dram_service_cycles(config)

    for t in range(total):
        active = int(active_at[t])
        row_base = lane_range[:active] * n_warps
        w = ready[:active].argmin(axis=1)
        flat_w = row_base + w
        ready_w = ready_flat.take(flat_w)
        port_a = port[:active]
        issue = np.maximum(ready_w, port_a)
        stall[:active] += issue - ready_w
        np.add(issue, 1.0, out=port_a)

        pc = pcs_flat.take(flat_w)
        flat_pc = flat_w * n_instr + pc
        lat = lat_flat.take(flat_pc)
        mem = np.isnan(lat)
        m = mem.nonzero()[0]  # == lane ids: the active set is a prefix
        if len(m):
            flat_w_m = flat_w.take(m)
            lines = addr_flat.take(
                flat_w_m * n_mem + memidx_flat.take(flat_pc.take(m))
            )
            now = issue.take(m)
            mem_lat = np.empty(len(m), dtype=np.float64)
            hit1 = l1.access(m, lines, t)
            mem_lat[hit1] = l1_latency
            pos1 = (~hit1).nonzero()[0]
            if len(pos1):
                hit2 = l2.access(m.take(pos1), lines.take(pos1), t)
                mem_lat[pos1.compress(hit2)] = l2_latency
                pos2 = pos1.compress(~hit2)
                if len(pos2):
                    m_dram = m.take(pos2)
                    now_dram = now.take(pos2)
                    start = np.maximum(now_dram, busy.take(m_dram))
                    dram_done = start + service
                    busy[m_dram] = dram_done
                    # DramModel adds latency_cycles == 0.0 into the
                    # completion; x + 0.0 is bit-identical for the
                    # positive times here, so the term is elided.
                    mem_lat[pos2] = (dram_done - now_dram) + dram_latency
            lat[m] = mem_lat
        completion = issue + lat
        new_pc = pc + 1
        pcs_flat[flat_w] = new_pc
        finished = new_pc >= warp_len_flat.take(flat_w)
        ready_flat[flat_w] = np.where(finished, _BIG, completion)
        np.maximum(last_completion[:active], completion, out=last_completion[:active])

    return last_completion, stall


def _stats_for_lane(
    chunk: _Chunk, lane: int, wave_cycles: float, stall: float, line_bytes: int
) -> SimStats:
    """Assemble the SimStats exactly as ``execute_wave`` + caller do.

    Misses are not counted in the hot loop: every memory slot is
    accessed exactly once, so ``l1_misses = accesses - l1_hits``, L2
    sees exactly the L1 misses, and every L2 miss is one DRAM line.
    """
    kind_counts = chunk.events[lane]
    loads = int(kind_counts[Op.LOAD])
    stores = int(kind_counts[Op.STORE])
    l1_hits = int(chunk.l1.hits[lane])
    l1_misses = loads + stores - l1_hits
    l2_hits = int(chunk.l2.hits[lane])
    l2_misses = l1_misses - l2_hits
    stats = SimStats(
        instructions=int(chunk.instructions[lane]),
        fp32_ops=int(kind_counts[Op.FP32]),
        fp16_ops=int(kind_counts[Op.FP16]),
        int_ops=int(kind_counts[Op.INT]),
        sfu_ops=int(kind_counts[Op.SFU]),
        shared_ops=int(kind_counts[Op.SHARED]),
        branches=int(kind_counts[Op.BRANCH]),
        global_loads=loads,
        global_stores=stores,
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
        dram_accesses=l2_misses,
        dram_bytes=l2_misses * line_bytes,
        stall_cycles=float(stall),
    )
    stats.cycles = float(wave_cycles)
    return stats


def _execute_scalar(trace: KernelTrace, latencies: LatencyTable, config) -> Tuple[float, SimStats]:
    """The oracle: per-trace scalar execution, as ``_execute_trace`` runs it."""
    scale = trace.cache_scale
    line = config.cache_line_bytes
    l1 = Cache(
        max(line * 2, int(config.l1_bytes_per_sm * scale)),
        line_bytes=line,
        associativity=8,
    )
    l2 = Cache(
        max(line * 4, int(config.l2_bytes * scale)),
        line_bytes=line,
        associativity=16,
    )
    per_sm_gbps = config.dram_bandwidth_gbps / config.num_sms
    dram = DramModel(
        latency_cycles=0.0,
        bandwidth_bytes_per_cycle=max(per_sm_gbps / config.clock_ghz, 1e-3),
        line_bytes=line,
    )
    sm = StreamingMultiprocessor(latencies, l1, l2, dram)
    wave_cycles, stats = sm.execute_wave(trace)
    stats.l1_hits = l1.stats.hits
    stats.l1_misses = l1.stats.misses
    return wave_cycles, stats


def execute_wave_batch(
    traces: Sequence[KernelTrace],
    latencies: LatencyTable,
    config,
    policy: Optional[BatchPolicy] = None,
) -> Tuple[List[Tuple[float, SimStats]], BatchExecReport]:
    """Execute every trace's wave; returns per-trace (cycles, stats).

    Results are returned in input order and are bit-identical to calling
    the scalar ``_execute_trace`` per trace.  The report carries the
    batching shape for ``sim.batch.*`` observability.
    """
    policy = policy or BatchPolicy()
    report = BatchExecReport()
    results: List[Optional[Tuple[float, SimStats]]] = [None] * len(traces)
    if not traces:
        return [], report

    line_bytes = config.cache_line_bytes
    scales = np.array([t.cache_scale for t in traces], dtype=np.float64)
    l1_sizes = np.maximum(
        line_bytes * 2, (config.l1_bytes_per_sm * scales).astype(np.int64)
    )
    l2_sizes = np.maximum(
        line_bytes * 4, (config.l2_bytes * scales).astype(np.int64)
    )
    lane_cost = (
        _LaneCaches.dense_bytes(l1_sizes, line_bytes, 8)
        + _LaneCaches.dense_bytes(l2_sizes, line_bytes, 16)
    )

    batchable: List[int] = []
    for i, cost in enumerate(lane_cost):
        if policy.enabled and int(cost) <= policy.max_lane_cache_bytes:
            batchable.append(i)
        else:
            results[i] = _execute_scalar(traces[i], latencies, config)
            report.scalar_lanes += 1

    if len(batchable) < max(2, policy.min_width):
        for i in batchable:
            results[i] = _execute_scalar(traces[i], latencies, config)
            report.scalar_lanes += 1
        return [r for r in results], report  # type: ignore[misc]

    # Sort by total instruction count, descending, so finished lanes are
    # always a suffix of each chunk (active set = prefix slice).
    steps = np.array(
        [sum(len(w.kinds) for w in traces[i].warps) for i in batchable], dtype=np.int64
    )
    order = sorted(range(len(batchable)), key=lambda j: (-int(steps[j]), j))

    # Greedy chunking under the width and dense-cache-memory ceilings.
    chunks: List[List[int]] = []
    current: List[int] = []
    current_max_cost = 0
    for j in order:
        idx = batchable[j]
        cost = int(lane_cost[idx])
        new_max = max(current_max_cost, cost)
        if current and (
            len(current) >= policy.max_width
            or (len(current) + 1) * new_max > policy.max_chunk_cache_bytes
        ):
            chunks.append(current)
            current = []
            new_max = cost
        current.append(idx)
        current_max_cost = new_max
    if current:
        chunks.append(current)

    padded_steps = 0
    useful_steps = 0
    for chunk_indices in chunks:
        chunk_traces = [traces[i] for i in chunk_indices]
        chunk = _Chunk(chunk_traces, latencies, config)
        wave_cycles, stall = _run_chunk(chunk, latencies, config)
        for lane, idx in enumerate(chunk_indices):
            stats = _stats_for_lane(
                chunk, lane, float(wave_cycles[lane]), float(stall[lane]), line_bytes
            )
            results[idx] = (float(wave_cycles[lane]), stats)
        report.batched_lanes += len(chunk_indices)
        report.chunks += 1
        longest = int(chunk.steps.max())
        padded_steps += longest * len(chunk_indices)
        useful_steps += int(chunk.steps.sum())

    if padded_steps:
        report.fill_ratio = useful_steps / padded_steps
    return [r for r in results], report  # type: ignore[misc]
