"""Profiling-overhead accounting (Table 5).

Collects, for each sampling method's profiler, the modeled wall-clock
overhead factor on a workload relative to its uninstrumented wall time,
plus Photon's separate BBV-comparison processing cost with its quadratic
upper bound.  A workload whose projected profiling time exceeds
``INFEASIBLE_DAYS`` is reported as infeasible (the paper's "N/A" entries,
estimated at up to 78.68 days for HuggingFace workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.gpu_config import GPUConfig
from ..hardware.timing_model import TimingModel
from ..workloads.workload import Workload
from .base import ProfilerCost
from .bbv import BBV_COST
from .ncu import NCU_COST
from .nsys import NSYS_COST
from .nvbit import NVBIT_COST

__all__ = ["OverheadEstimate", "OverheadModel", "INFEASIBLE_DAYS"]

#: Beyond this projected profiling time, a method is declared infeasible.
INFEASIBLE_DAYS = 30.0

#: Seconds per (vector element) BBV comparison operation on the host.
_BBV_COMPARE_SECONDS_PER_ELEMENT = 5e-9


@dataclass(frozen=True)
class OverheadEstimate:
    """Modeled profiling cost of one method on one workload."""

    method: str
    workload: str
    base_wall_seconds: float
    profiling_wall_seconds: float
    num_kernels: int = 0
    kernel_cap: float = float("inf")

    @property
    def overhead_factor(self) -> float:
        return self.profiling_wall_seconds / self.base_wall_seconds

    @property
    def profiling_days(self) -> float:
        return self.profiling_wall_seconds / 86400.0

    @property
    def feasible(self) -> bool:
        """Feasible when the projected time is tolerable AND the kernel
        count is within the method's practical limit (the same caps the
        samplers enforce — at paper scale these correspond to the
        months-of-profiling "N/A" entries of Tables 3 and 5)."""
        return (
            self.profiling_days <= INFEASIBLE_DAYS
            and self.num_kernels <= self.kernel_cap
        )


class OverheadModel:
    """Estimates each profiler's collection cost for a workload."""

    #: profiler cost models per sampling method.
    METHOD_COSTS: Dict[str, ProfilerCost] = {
        "stem": NSYS_COST,
        "pka": NCU_COST,
        "sieve": NVBIT_COST,
        "photon": BBV_COST,
    }

    #: Kernel-count feasibility caps, aligned with the samplers' limits.
    METHOD_KERNEL_CAPS: Dict[str, float] = {
        "stem": float("inf"),
        "pka": 200_000,
        "sieve": 300_000,
        "photon": 500_000,
    }

    def __init__(self, config: GPUConfig):
        self.config = config
        self._timing = TimingModel(config)

    def base_wall_seconds(self, workload: Workload, seed: int = 0) -> float:
        """Uninstrumented wall time of the workload on this GPU."""
        return self._timing.total_time_us(workload, seed=seed) / 1e6

    def photon_processing_seconds(
        self, workload: Workload, num_representatives: Optional[int] = None
    ) -> float:
        """Photon's BBV-comparison cost.

        With a known representative count ``S`` the cost is ``O(N*S*d)``;
        without one we take the paper's pessimistic ``O(N^2*d)`` bound for
        scale estimation.
        """
        n = len(workload)
        d = sum(spec.num_basic_blocks for spec in workload.specs)
        comparisons = n * (num_representatives if num_representatives else n)
        return comparisons * d * _BBV_COMPARE_SECONDS_PER_ELEMENT

    def estimate(
        self,
        method: str,
        workload: Workload,
        seed: int = 0,
        num_representatives: Optional[int] = None,
    ) -> OverheadEstimate:
        """Overhead estimate for one method on one workload."""
        try:
            cost = self.METHOD_COSTS[method]
        except KeyError:
            raise KeyError(
                f"unknown method {method!r}; available: {sorted(self.METHOD_COSTS)}"
            ) from None
        base = self.base_wall_seconds(workload, seed=seed)
        wall = cost.wall_seconds(base, len(workload))
        if method == "photon":
            wall += self.photon_processing_seconds(workload, num_representatives)
        return OverheadEstimate(
            method=method,
            workload=workload.name,
            base_wall_seconds=base,
            profiling_wall_seconds=wall,
            num_kernels=len(workload),
            kernel_cap=self.METHOD_KERNEL_CAPS[method],
        )

    def estimate_all(
        self, workload: Workload, seed: int = 0
    ) -> Dict[str, OverheadEstimate]:
        """Overhead estimates of every method on one workload."""
        return {
            method: self.estimate(method, workload, seed=seed)
            for method in self.METHOD_COSTS
        }
