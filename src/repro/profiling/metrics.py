"""Microarchitectural metric model (the 13 metrics of Figure 14).

Section 5.5 of the paper validates that a STEM-sampled workload reproduces
the full workload's microarchitectural behaviour across four categories:

1. shared/global memory access counts,
2. L1/L2 cache accesses and the L2 read hit rate,
3. 16/32-bit floating-point operation counts,
4. warp execution and branch efficiencies.

This module computes those metrics per invocation, analytically, from the
kernel spec and launch context (the real counterpart would come from NCU
on the full and sampled workloads).  Count metrics are extensive
(aggregate = sum); rate metrics are intensive (aggregate = weighted mean).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload

__all__ = [
    "MICROARCH_METRICS",
    "COUNT_METRICS",
    "RATE_METRICS",
    "MicroarchModel",
    "aggregate_metrics",
]

#: Extensive metrics: totals over the workload.
COUNT_METRICS: List[str] = [
    "shared_loads",
    "shared_stores",
    "global_loads",
    "global_stores",
    "l1_accesses",
    "l2_read_accesses",
    "dram_bytes_read",
    "fp16_ops",
    "fp32_ops",
]

#: Intensive metrics: invocation-weighted means over the workload.
RATE_METRICS: List[str] = [
    "l2_read_hit_rate",
    "warp_execution_efficiency",
    "branch_efficiency",
    "achieved_occupancy",
]

#: All 13 metrics of the Figure 14 comparison.
MICROARCH_METRICS: List[str] = COUNT_METRICS + RATE_METRICS


class MicroarchModel:
    """Per-invocation microarchitectural metrics on a given GPU."""

    def __init__(self, config: GPUConfig):
        self.config = config

    def evaluate(self, workload: Workload, seed: int = 0) -> Dict[str, np.ndarray]:
        """Compute all 13 metrics for every invocation (vectorized)."""
        rng = np.random.default_rng(seed)
        n = len(workload)
        out = {name: np.empty(n, dtype=np.float64) for name in MICROARCH_METRICS}
        resident_capacity = self.config.num_sms * self.config.max_warps_per_sm

        for sid, spec in enumerate(workload.specs):
            mask = workload.spec_ids == sid
            count = int(mask.sum())
            if not count:
                continue
            threads = spec.num_threads()
            mix = spec.mix
            s = workload.work_scales[mask]
            locality = workload.localities[mask]

            out["shared_loads"][mask] = mix.load_shared * threads * s
            out["shared_stores"][mask] = mix.store_shared * threads * s
            out["global_loads"][mask] = mix.load_global * threads * s
            out["global_stores"][mask] = mix.store_global * threads * s
            out["fp16_ops"][mask] = mix.fp16 * threads * s
            out["fp32_ops"][mask] = mix.fp32 * threads * s

            # Global accesses reach L1 as warp-level transactions.
            transactions = (
                mix.memory_ops() * spec.num_warps() * s / spec.memory.coalescing_factor()
            )
            out["l1_accesses"][mask] = transactions
            # L1 captures short-stride reuse; random access defeats it.
            l1_hit = np.clip(
                0.35 * locality * (1.0 - spec.memory.random_fraction), 0.0, 0.9
            )
            l2_reads = transactions * (1.0 - l1_hit)
            out["l2_read_accesses"][mask] = l2_reads
            fit = min(1.0, (self.config.l2_bytes / spec.memory.working_set_bytes) ** 0.5)
            l2_hit = np.clip(locality * fit, 0.0, 0.98)
            # Measurement noise correlated with the run (counter sampling).
            l2_hit = np.clip(l2_hit * (1.0 + 0.01 * rng.standard_normal(count)), 0.0, 1.0)
            out["l2_read_hit_rate"][mask] = l2_hit
            out["dram_bytes_read"][mask] = (
                l2_reads * (1.0 - l2_hit) * self.config.cache_line_bytes
            )

            divergence = min(0.6, 0.04 * mix.branch + 0.3 * spec.memory.random_fraction)
            out["warp_execution_efficiency"][mask] = np.clip(
                1.0 - divergence * (1.1 - locality), 0.2, 1.0
            )
            out["branch_efficiency"][mask] = np.clip(
                1.0 - 0.7 * divergence, 0.3, 1.0
            )
            out["achieved_occupancy"][mask] = min(
                1.0, spec.num_warps() / resident_capacity
            )
        return out


def aggregate_metrics(
    per_invocation: Dict[str, np.ndarray],
    weights: np.ndarray = None,
) -> Dict[str, float]:
    """Aggregate per-invocation metrics to workload-level values.

    ``weights`` assigns each invocation a multiplicity (1.0 for a full
    workload; the sampler's representation weights for a sampled one).
    Count metrics sum; rate metrics take the weighted mean — the "weighted
    sum over the sampled kernels" prediction scheme of Sec. 5.5.
    """
    any_column = next(iter(per_invocation.values()))
    if weights is None:
        weights = np.ones(len(any_column))
    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("weights must have positive total")
    aggregated: Dict[str, float] = {}
    for name, values in per_invocation.items():
        if name in COUNT_METRICS:
            aggregated[name] = float(np.dot(weights, values))
        else:
            aggregated[name] = float(np.dot(weights, values) / total_weight)
    return aggregated
