"""Nsight-Compute-style per-kernel metric profiler (PKA's input).

PKA clusters kernels over 12 instruction-level metrics collected with NCU.
NCU collects them by *replaying* every kernel several times with hardware
counters multiplexed across passes — the reason its overhead explodes with
kernel count (Table 5: 35× on Rodinia, 3704× on CASIO, infeasible on
HuggingFace-scale workloads).

The 12 metrics here mirror PKA's feature classes: instruction counts per
class, memory traffic, occupancy/efficiency, and cache hit rates.  They
are deterministic functions of the kernel spec and the invocation's
*work scale* — dynamic counters see how much work ran, but a handful of
averaged counters cannot expose the latency variability that locality and
memory contention induce, which is the blindness Figure 10 illustrates.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .base import ProfileResult, ProfilerCost

__all__ = ["NcuProfiler", "NCU_COST", "PKA_METRICS"]

#: Counter multiplexing forces ~3 replay passes at ~8x slowdown each, plus
#: a large fixed replay/attribution cost per kernel.
NCU_COST = ProfilerCost(slowdown_factor=8.0, per_kernel_seconds=0.01)

#: The 12 instruction-level metrics PKA consumes (Table 1: "12 instr.
#: level metrics" — launch geometry and instruction-class counts; cache
#: behaviour is deliberately absent, which is the blindness Sec. 5.2
#: demonstrates).
PKA_METRICS: List[str] = [
    "inst_fp32",
    "inst_fp16",
    "inst_int",
    "inst_sfu",
    "inst_global_loads",
    "inst_global_stores",
    "inst_shared",
    "inst_control",
    "inst_total",
    "inst_per_warp",
    "num_warps",
    "achieved_occupancy",
]


class NcuProfiler:
    """Collects PKA's 12 per-kernel metrics by (modeled) kernel replay."""

    name = "ncu"

    def __init__(self, config: GPUConfig, cost: ProfilerCost = NCU_COST):
        self.config = config
        self.cost = cost

    def profile(self, workload: Workload, seed: int = 0) -> ProfileResult:
        n = len(workload)
        scales = workload.work_scales
        cols = {name: np.empty(n, dtype=np.float64) for name in PKA_METRICS}
        resident_capacity = self.config.num_sms * self.config.max_warps_per_sm

        for sid, spec in enumerate(workload.specs):
            mask = workload.spec_ids == sid
            if not mask.any():
                continue
            threads = spec.num_threads()
            s = scales[mask]
            mix = spec.mix
            cols["inst_fp32"][mask] = mix.fp32 * threads * s
            cols["inst_fp16"][mask] = mix.fp16 * threads * s
            cols["inst_int"][mask] = mix.int_alu * threads * s
            cols["inst_sfu"][mask] = mix.sfu * threads * s
            cols["inst_global_loads"][mask] = mix.load_global * threads * s
            cols["inst_global_stores"][mask] = mix.store_global * threads * s
            cols["inst_shared"][mask] = mix.shared_ops() * threads * s
            cols["inst_control"][mask] = mix.branch * threads * s
            total = mix.total() * threads * s
            cols["inst_total"][mask] = total
            cols["inst_per_warp"][mask] = total / max(spec.num_warps(), 1)
            cols["num_warps"][mask] = spec.num_warps()
            cols["achieved_occupancy"][mask] = min(
                1.0, spec.num_warps() / resident_capacity
            )
        return ProfileResult(
            workload=workload, profiler=self.name, columns=cols, cost=self.cost
        )

    def feature_matrix(self, workload: Workload, seed: int = 0) -> np.ndarray:
        """(n, 12) matrix in :data:`PKA_METRICS` order."""
        return self.profile(workload, seed=seed).matrix(PKA_METRICS)
