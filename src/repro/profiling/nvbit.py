"""NVBit-style dynamic instrumentation profiler (Sieve's input).

Sieve's signature is the dynamic instruction count per kernel launch,
collected by binary instrumentation that increments per-warp counters with
atomics — hence a large multiplicative slowdown (Table 5: ~94× Rodinia,
~294× CASIO) even though the per-kernel fixed cost is small.
"""

from __future__ import annotations

import numpy as np

from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .base import ProfileResult, ProfilerCost

__all__ = ["NvbitProfiler", "NVBIT_COST"]

#: Per-instruction atomic counting: heavy multiplicative slowdown.
NVBIT_COST = ProfilerCost(slowdown_factor=89.0, per_kernel_seconds=3e-4)


class NvbitProfiler:
    """Collects dynamic instruction counts (total and per warp)."""

    name = "nvbit"

    def __init__(self, config: GPUConfig, cost: ProfilerCost = NVBIT_COST):
        self.config = config
        self.cost = cost

    def profile(self, workload: Workload, seed: int = 0) -> ProfileResult:
        instructions = workload.dynamic_instruction_counts().astype(np.float64)
        warps = workload.spec_column(lambda sp: sp.num_warps())
        cta_sizes = workload.spec_column(lambda sp: sp.threads_per_block())
        return ProfileResult(
            workload=workload,
            profiler=self.name,
            columns={
                "instructions": instructions,
                "instructions_per_warp": instructions / np.maximum(warps, 1),
                "num_warps": warps,
                "cta_size": cta_sizes,
            },
            cost=self.cost,
        )
