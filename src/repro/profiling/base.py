"""Common profiling types.

A profiler turns a workload + GPU into a per-invocation data table and an
accounting of how much wall-clock time collecting that table would cost on
real hardware.  The cost side is what Table 5 of the paper compares: the
whole argument for execution-time signatures is that a kernel-level
timeline (Nsight Systems) is orders of magnitude cheaper to collect than
per-warp instruction statistics (NCU/NVBit) or basic-block vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..workloads.workload import Workload

__all__ = ["ProfilerCost", "ProfileResult"]


@dataclass(frozen=True)
class ProfilerCost:
    """Wall-clock cost model of one profiler.

    The modeled profiling wall time for a workload with ``n`` kernel
    launches and uninstrumented wall time ``w`` seconds is::

        w * slowdown_factor + n * per_kernel_seconds + processing_seconds

    and the Table 5 "overhead" is that divided by ``w``.
    """

    #: Multiplicative slowdown of the instrumented run.
    slowdown_factor: float
    #: Fixed cost per kernel launch (replays, attribution, flushes).
    per_kernel_seconds: float = 0.0
    #: One-off post-processing cost (e.g. Photon's BBV comparisons).
    processing_seconds: float = 0.0

    def wall_seconds(self, base_wall_seconds: float, num_kernels: int) -> float:
        return (
            base_wall_seconds * self.slowdown_factor
            + num_kernels * self.per_kernel_seconds
            + self.processing_seconds
        )

    def overhead_factor(self, base_wall_seconds: float, num_kernels: int) -> float:
        if base_wall_seconds <= 0:
            raise ValueError("base_wall_seconds must be positive")
        return self.wall_seconds(base_wall_seconds, num_kernels) / base_wall_seconds


@dataclass
class ProfileResult:
    """Output of one profiling run.

    ``columns`` maps metric names to per-invocation arrays, all of length
    ``len(workload)``.  ``cost`` is the modeled collection cost.
    """

    workload: Workload
    profiler: str
    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    cost: Optional[ProfilerCost] = None

    def __post_init__(self) -> None:
        n = len(self.workload)
        for name, arr in self.columns.items():
            if len(arr) != n:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {n}"
                )

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"profiler {self.profiler!r} produced no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from None

    def matrix(self, names) -> np.ndarray:
        """Stack the named columns into an (n_invocations, n_features) array."""
        return np.column_stack([self.column(n) for n in names])
