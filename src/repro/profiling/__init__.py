"""Profiler models: execution-time, instruction-level, and BBV collection."""

from .base import ProfileResult, ProfilerCost
from .bbv import BBV_COST, BbvProfiler, BbvTable
from .metrics import (
    COUNT_METRICS,
    MICROARCH_METRICS,
    RATE_METRICS,
    MicroarchModel,
    aggregate_metrics,
)
from .ncu import NCU_COST, PKA_METRICS, NcuProfiler
from .nsys import NSYS_COST, NsysProfiler
from .nvbit import NVBIT_COST, NvbitProfiler
from .overhead import INFEASIBLE_DAYS, OverheadEstimate, OverheadModel

__all__ = [
    "ProfileResult",
    "ProfilerCost",
    "NsysProfiler",
    "NSYS_COST",
    "NcuProfiler",
    "NCU_COST",
    "PKA_METRICS",
    "NvbitProfiler",
    "NVBIT_COST",
    "BbvProfiler",
    "BbvTable",
    "BBV_COST",
    "MicroarchModel",
    "MICROARCH_METRICS",
    "COUNT_METRICS",
    "RATE_METRICS",
    "aggregate_metrics",
    "OverheadModel",
    "OverheadEstimate",
    "INFEASIBLE_DAYS",
]
