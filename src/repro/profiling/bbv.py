"""GPU Basic-Block-Vector profiler (Photon's input).

Photon identifies representative kernels by comparing per-launch Basic
Block Vectors: the execution counts of each static basic block.  The
collection cost is moderate (NVBit-based block counters), but the
*comparison* cost grows between ``O(N*S*d)`` and ``O(N^2*d)`` with kernel
count ``N``, representative count ``S`` and BBV dimensionality ``d`` —
which is what makes Photon infeasible at HuggingFace scale (Sec. 5.6).

BBVs are modeled per the static control-flow profile of each spec
(:meth:`KernelSpec.base_bbv`), scaled by the invocation's dynamic work and
perturbed by a small counting noise.  Different kernels occupy disjoint
block-index subspaces, as distinct functions do in a real binary.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..hardware.gpu_config import GPUConfig
from ..workloads.workload import Workload
from .base import ProfileResult, ProfilerCost

__all__ = ["BbvProfiler", "BBV_COST", "BbvTable"]

#: Block counters via binary instrumentation: ~12x slowdown, small
#: per-kernel flush cost.  Comparison cost is accounted separately.
BBV_COST = ProfilerCost(slowdown_factor=12.0, per_kernel_seconds=1e-4)


class BbvTable:
    """Dense (n_invocations, d) BBV matrix plus block-space layout."""

    def __init__(self, vectors: np.ndarray, spec_slices: List[Tuple[int, int]]):
        self.vectors = vectors
        #: Per-spec (start, stop) column ranges in the global block space.
        self.spec_slices = spec_slices

    @property
    def dimensionality(self) -> int:
        return self.vectors.shape[1]

    def normalized(self) -> np.ndarray:
        """Row-normalized (L1) vectors, as Photon compares profiles."""
        totals = np.maximum(self.vectors.sum(axis=1, keepdims=True), 1e-12)
        return self.vectors / totals


class BbvProfiler:
    """Collects one BBV per kernel launch."""

    name = "bbv"

    def __init__(self, config: GPUConfig, cost: ProfilerCost = BBV_COST, noise: float = 0.01):
        self.config = config
        self.cost = cost
        self.noise = noise

    def _layout(self, workload: Workload) -> List[Tuple[int, int]]:
        slices: List[Tuple[int, int]] = []
        offset = 0
        for spec in workload.specs:
            slices.append((offset, offset + spec.num_basic_blocks))
            offset += spec.num_basic_blocks
        return slices

    def collect(self, workload: Workload, seed: int = 0) -> BbvTable:
        """Build the full BBV table for a workload."""
        rng = np.random.default_rng(seed)
        slices = self._layout(workload)
        d = slices[-1][1] if slices else 0
        vectors = np.zeros((len(workload), d), dtype=np.float32)
        for sid, spec in enumerate(workload.specs):
            mask = workload.spec_ids == sid
            count = int(mask.sum())
            if not count:
                continue
            start, stop = slices[sid]
            base = spec.base_bbv().astype(np.float32)
            scales = workload.work_scales[mask].astype(np.float32)
            block = np.outer(scales, base)
            if self.noise:
                block *= 1.0 + self.noise * rng.standard_normal(block.shape).astype(
                    np.float32
                )
                np.maximum(block, 0.0, out=block)
            vectors[mask, start:stop] = block
        return BbvTable(vectors, slices)

    def profile(self, workload: Workload, seed: int = 0) -> ProfileResult:
        """ProfileResult view: scalar per-invocation summaries only.

        The dense table (for Photon's matcher) comes from :meth:`collect`;
        the result columns carry totals so generic tooling can reason about
        collection scale.
        """
        table = self.collect(workload, seed=seed)
        warps = workload.spec_column(lambda sp: sp.num_warps())
        return ProfileResult(
            workload=workload,
            profiler=self.name,
            columns={
                "bbv_total": table.vectors.sum(axis=1).astype(np.float64),
                "num_warps": warps,
            },
            cost=self.cost,
        )
