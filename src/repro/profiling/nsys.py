"""Nsight-Systems-style kernel timeline profiler (STEM's input).

The only data STEM+ROOT consumes is the per-invocation execution time —
exactly what ``nsys`` emits from a single uninstrumented-speed pass over
the workload.  Its cost model therefore has a slowdown factor close to 1
and a sub-millisecond per-kernel attribution cost, which is what makes
Table 5's STEM row one to three orders of magnitude cheaper than the
instruction-level profilers.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..hardware.gpu_config import GPUConfig
from ..hardware.timing_model import TimingModel
from ..workloads.workload import Workload
from .base import ProfileResult, ProfilerCost

__all__ = ["NsysProfiler", "NSYS_COST"]

#: Timeline collection: ~1.2x run slowdown plus a tiny per-kernel
#: attribution cost (scaled to this model's microsecond-class kernels).
NSYS_COST = ProfilerCost(slowdown_factor=1.25, per_kernel_seconds=5e-6)


class NsysProfiler:
    """Collects one execution time per kernel launch."""

    name = "nsys"

    def __init__(self, config: GPUConfig, cost: ProfilerCost = NSYS_COST):
        self.config = config
        self.cost = cost
        self._timing = TimingModel(config)

    def profile(self, workload: Workload, seed: int = 0) -> ProfileResult:
        """Run the workload once and record each kernel's duration (us)."""
        with obs.span(
            "profile.nsys", workload=workload.name, invocations=len(workload)
        ):
            times = self._timing.execution_times(workload, seed=seed)
        obs.inc("profile.runs")
        obs.inc("profile.kernels_profiled", len(workload))
        return ProfileResult(
            workload=workload,
            profiler=self.name,
            columns={"time_us": times},
            cost=self.cost,
        )

    def execution_times(self, workload: Workload, seed: int = 0) -> np.ndarray:
        """Shorthand for ``profile(...).column("time_us")``."""
        return self.profile(workload, seed=seed).column("time_us")
