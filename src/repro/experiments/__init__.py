"""Experiment modules, one per paper table/figure (see DESIGN.md index)."""

from . import (
    cross_gpu,
    dse,
    error_bound_sweep,
    export,
    figure1,
    identical_kernels,
    microarch_metrics,
    profiling_overhead,
    scalability,
    speedup_error,
    table2,
    warmup_study,
)
from .runner import METHODS, ExperimentConfig, ResultRow, run_suite, run_workload

__all__ = [
    "METHODS",
    "ExperimentConfig",
    "ResultRow",
    "run_workload",
    "run_suite",
    "speedup_error",
    "error_bound_sweep",
    "identical_kernels",
    "microarch_metrics",
    "cross_gpu",
    "profiling_overhead",
    "figure1",
    "dse",
    "table2",
    "warmup_study",
    "scalability",
    "export",
]
