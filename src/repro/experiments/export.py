"""CSV export of experiment results.

The paper's artifact ships per-figure CSV files; this module provides the
same convenience for every experiment's flat result rows so plots can be
regenerated outside Python.
"""

from __future__ import annotations

import csv
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, List, Mapping, Union

__all__ = ["rows_to_dicts", "save_rows_csv", "load_rows_csv"]


def rows_to_dicts(rows: Iterable[object]) -> List[dict]:
    """Normalize result rows (dataclasses or mappings) to dictionaries."""
    out: List[dict] = []
    for row in rows:
        if is_dataclass(row) and not isinstance(row, type):
            out.append(asdict(row))
        elif isinstance(row, Mapping):
            out.append(dict(row))
        elif hasattr(row, "as_dict"):
            out.append(dict(row.as_dict()))
        else:
            raise TypeError(f"cannot convert {type(row).__name__} to a CSV row")
    return out


def save_rows_csv(rows: Iterable[object], path: Union[str, Path]) -> int:
    """Write rows to CSV; returns the number of data rows written.

    The header is the union of keys across rows, in first-seen order, so
    heterogeneous row types can share a file.
    """
    dicts = rows_to_dicts(rows)
    if not dicts:
        raise ValueError("no rows to write")
    fields: List[str] = []
    for row in dicts:
        for key in row:
            if key not in fields:
                fields.append(key)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        for row in dicts:
            writer.writerow(row)
    return len(dicts)


def load_rows_csv(path: Union[str, Path]) -> List[dict]:
    """Read a CSV written by :func:`save_rows_csv` (values stay strings)."""
    path = Path(path)
    with path.open(newline="") as fh:
        return [dict(row) for row in csv.DictReader(fh)]
