"""Microarchitectural-metric validation (Figure 14).

Compares full-workload aggregates of the 13 microarchitectural metrics
against the weighted-sum estimate from a STEM-sampled workload, on
``bert_infer`` (CASIO) at eps = 5%.  The paper observes near-zero
differences across all metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


from ..baselines import ProfileStore
from ..core import StemRootSampler, estimate_metrics, metric_error_percents
from ..hardware import RTX_2080, GPUConfig
from ..profiling.metrics import MICROARCH_METRICS, MicroarchModel, aggregate_metrics
from ..workloads import load_workload

__all__ = ["MetricComparison", "run_microarch_validation"]


@dataclass(frozen=True)
class MetricComparison:
    """Full-vs-sampled comparison of one metric."""

    metric: str
    full_value: float
    estimated_value: float
    error_percent: float


def run_microarch_validation(
    workload_name: str = "bert_infer",
    suite: str = "casio",
    gpu: Optional[GPUConfig] = None,
    epsilon: float = 0.05,
    repetitions: int = 5,
    seed: int = 0,
    workload_scale: float = 1.0,
) -> List[MetricComparison]:
    """Average full-vs-sampled metric comparison over repetitions."""
    gpu = gpu or RTX_2080
    workload = load_workload(suite, workload_name, scale=workload_scale, seed=seed)
    model = MicroarchModel(gpu)

    sums_full: Dict[str, float] = {m: 0.0 for m in MICROARCH_METRICS}
    sums_est: Dict[str, float] = {m: 0.0 for m in MICROARCH_METRICS}
    sums_err: Dict[str, float] = {m: 0.0 for m in MICROARCH_METRICS}
    for rep in range(repetitions):
        rep_seed = seed + rep * 1013 + 1
        store = ProfileStore(workload, gpu, seed=rep_seed)
        times = store.execution_times()
        per_invocation = model.evaluate(workload, seed=rep_seed)
        full = aggregate_metrics(per_invocation)

        sampler = StemRootSampler(epsilon=epsilon)
        plan = sampler.build_plan(workload, times, seed=rep_seed)
        estimated = estimate_metrics(plan, per_invocation)
        errors = metric_error_percents(full, estimated)
        for metric in MICROARCH_METRICS:
            sums_full[metric] += full[metric]
            sums_est[metric] += estimated[metric]
            sums_err[metric] += errors[metric]

    return [
        MetricComparison(
            metric=metric,
            full_value=sums_full[metric] / repetitions,
            estimated_value=sums_est[metric] / repetitions,
            error_percent=sums_err[metric] / repetitions,
        )
        for metric in MICROARCH_METRICS
    ]
