"""Speedup and sampling-error evaluation (Table 3, Figures 7, 8 and 9).

Runs the five sampling methods over the Rodinia, CASIO and HuggingFace
suites and aggregates per the paper's conventions.  On HuggingFace only
STEM and uniform random sampling are feasible — PKA/Sieve/Photon rows
come back as N/A, exactly as in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.metrics import harmonic_mean
from .runner import METHODS, ExperimentConfig, ResultRow, run_suite

__all__ = [
    "SuiteSummary",
    "summarize",
    "per_workload_summary",
    "run_table3",
    "run_figure7_8",
    "run_figure9",
    "PAPER_TABLE3",
]

#: Paper Table 3 values for side-by-side comparison:
#: {suite: {method: (speedup, error%)}}.
PAPER_TABLE3: Dict[str, Dict[str, Tuple[float, float]]] = {
    "rodinia": {
        "random": (7.09, 26.67),
        "pka": (8.35, 34.85),
        "sieve": (2.62, 6.63),
        "photon": (2.84, 2.71),
        "stem": (3.00, 0.93),
    },
    "casio": {
        "random": (984.87, 28.39),
        "pka": (1425.01, 29.26),
        "sieve": (391.09, 23.75),
        "photon": (168.61, 9.85),
        "stem": (109.595, 0.36),
    },
    "huggingface": {
        "random": (1004.97, 2.40),
        "stem": (31719.057, 0.57),
    },
}


@dataclass
class SuiteSummary:
    """Per-method aggregate over one suite (a Table 3 cell pair)."""

    suite: str
    method: str
    speedup: float
    error_percent: float
    feasible: bool = True


def summarize(rows: List[ResultRow]) -> List[SuiteSummary]:
    """Aggregate flat rows into per-(suite, method) summaries.

    Per the paper: per-workload results are averaged across repetitions
    first, then suite-level speedup uses the harmonic mean over workloads
    and suite-level error the arithmetic mean.
    """
    grouped: Dict[Tuple[str, str, str], List[ResultRow]] = {}
    for row in rows:
        grouped.setdefault((row.suite, row.method, row.workload), []).append(row)

    per_workload: Dict[Tuple[str, str], List[Tuple[float, float, bool]]] = {}
    for (suite, method, _workload), reps in grouped.items():
        feasible = all(r.feasible for r in reps)
        if feasible:
            err = float(np.mean([r.error_percent for r in reps]))
            spd = harmonic_mean([r.speedup for r in reps])
        else:
            err, spd = float("nan"), float("nan")
        per_workload.setdefault((suite, method), []).append((spd, err, feasible))

    summaries: List[SuiteSummary] = []
    for (suite, method), entries in sorted(per_workload.items()):
        if all(not feasible for _, _, feasible in entries):
            summaries.append(
                SuiteSummary(suite, method, float("nan"), float("nan"), feasible=False)
            )
            continue
        speeds = [s for s, _, f in entries if f]
        errors = [e for _, e, f in entries if f]
        summaries.append(
            SuiteSummary(
                suite=suite,
                method=method,
                speedup=harmonic_mean(speeds),
                error_percent=float(np.mean(errors)),
            )
        )
    return summaries


def per_workload_summary(
    rows: List[ResultRow],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """{workload: {method: {"speedup", "error_percent"}}} (Figures 7/8)."""
    grouped: Dict[Tuple[str, str], List[ResultRow]] = {}
    for row in rows:
        grouped.setdefault((row.workload, row.method), []).append(row)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (workload, method), reps in sorted(grouped.items()):
        entry = out.setdefault(workload, {})
        if all(not r.feasible for r in reps):
            entry[method] = {"speedup": float("nan"), "error_percent": float("nan")}
        else:
            entry[method] = {
                "speedup": harmonic_mean([r.speedup for r in reps if r.feasible]),
                "error_percent": float(
                    np.mean([r.error_percent for r in reps if r.feasible])
                ),
            }
    return out


def run_table3(
    config: Optional[ExperimentConfig] = None,
    suites: Optional[List[str]] = None,
    jobs: Optional[int] = 1,
    profile_cache=None,
) -> Tuple[List[ResultRow], List[SuiteSummary]]:
    """Full Table 3: all methods on all three suites.

    ``jobs``/``profile_cache`` pass through to :func:`run_suite` — the
    grid parallelizes per (workload, repetition) with bit-identical rows.
    """
    if config is None:
        config = ExperimentConfig()
    rows: List[ResultRow] = []
    for suite in suites or ["rodinia", "casio", "huggingface"]:
        methods = METHODS if suite != "huggingface" else ["random", "pka", "sieve", "photon", "stem"]
        rows.extend(
            run_suite(
                suite,
                config=config,
                methods=methods,
                jobs=jobs,
                profile_cache=profile_cache,
            )
        )
    return rows, summarize(rows)


def run_figure7_8(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-workload speedups and errors on Rodinia + CASIO."""
    if config is None:
        config = ExperimentConfig()
    rows: List[ResultRow] = []
    for suite in ("rodinia", "casio"):
        rows.extend(run_suite(suite, config=config))
    return per_workload_summary(rows)


def run_figure9(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Scatter data: per-workload (speedup, error) on CASIO + HuggingFace."""
    if config is None:
        config = ExperimentConfig()
    rows: List[ResultRow] = []
    rows.extend(run_suite("casio", config=config))
    rows.extend(run_suite("huggingface", config=config, methods=["random", "stem"]))
    return per_workload_summary(rows)
