"""Design-space exploration on the cycle-level simulator (Table 4, Fig. 12).

Follows the paper's Sec. 5.4 methodology:

1. take reduced-size Rodinia and HuggingFace workloads (small enough to
   simulate fully);
2. build each method's sampling plan ONCE, from execution-time profiles
   collected on the *baseline* hardware — sampling information is never
   recomputed for the hardware variants;
3. fully simulate every workload on each microarchitectural variant
   (baseline, cache x2, cache x1/2, SMs x2, SMs x1/2) with the
   cycle-level simulator;
4. score each plan's weighted-sum cycle estimate against the full
   simulation's cycle count per variant.

The paper's expectation: STEM's error stays low and flat across variants
(~2%) while PKA/Sieve sit at ~17-28% and Photon ~5-6%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import ProfileStore
from ..core import evaluate_plan
from ..errors import InfeasibleProfilingError
from ..hardware import RTX_2080, GPUConfig, dse_variants
from ..sim import GpuSimulator
from ..workloads import load_workload
from .runner import ExperimentConfig

__all__ = [
    "DseResult",
    "DseWorkloadSpec",
    "default_dse_workloads",
    "run_dse",
    "PAPER_TABLE4",
]

#: Paper Table 4: {variant: {method: error%}}.
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "baseline": {"pka": 20.06, "sieve": 24.40, "photon": 5.96, "stem": 2.03},
    "cache_x2": {"pka": 22.66, "sieve": 25.67, "photon": 5.44, "stem": 1.93},
    "cache_x0.5": {"pka": 16.65, "sieve": 22.61, "photon": 5.33, "stem": 1.96},
    "sm_x2": {"pka": 17.90, "sieve": 28.18, "photon": 6.49, "stem": 2.28},
    "sm_x0.5": {"pka": 23.68, "sieve": 23.08, "photon": 5.14, "stem": 2.30},
}

VARIANT_LABELS = ["baseline", "cache_x2", "cache_x0.5", "sm_x2", "sm_x0.5"]


@dataclass(frozen=True)
class DseWorkloadSpec:
    """A reduced workload used for full cycle-level simulation."""

    suite: str
    name: str
    scale: float
    max_invocations: int


def default_dse_workloads(max_invocations: int = 200) -> List[DseWorkloadSpec]:
    """11 Rodinia + 6 HuggingFace workloads, reduced (paper Sec. 5.4)."""
    rodinia = [
        "backprop", "bfs", "btree", "cfd", "gaussian", "heartwall",
        "hotspot", "kmeans", "lud", "nw", "pf_naive",
    ]
    huggingface = ["bert", "bloom", "deit", "gemma", "gpt2", "resnet50"]
    specs = [
        DseWorkloadSpec("rodinia", name, 0.1, max_invocations) for name in rodinia
    ]
    specs += [
        DseWorkloadSpec("huggingface", name, 0.002, max_invocations)
        for name in huggingface
    ]
    return specs


@dataclass(frozen=True)
class DseResult:
    """One (workload, variant, method) evaluation."""

    workload: str
    variant: str
    method: str
    error_percent: float
    estimated_cycles: float
    full_cycles: float


@dataclass(frozen=True)
class _DseSpecTask:
    """Picklable payload: one workload spec's slice of the DSE grid."""

    spec: DseWorkloadSpec
    baseline: GPUConfig
    methods: Tuple[str, ...]
    repetitions: int
    seed: int
    epsilon: float
    cache_root: Optional[str] = None
    sim_cache_root: Optional[str] = None


def _dse_spec_worker(task: _DseSpecTask) -> List[DseResult]:
    """Evaluate one workload spec on every variant (worker-safe).

    Self-contained per spec — nothing is shared across specs but the
    config values in the payload — so the DSE grid parallelizes across
    specs with results identical to the sequential loop.
    """
    spec = task.spec
    baseline = task.baseline
    seed = task.seed
    variants: List[Tuple[str, GPUConfig]] = list(
        zip(VARIANT_LABELS, dse_variants(baseline))
    )
    config = ExperimentConfig(gpu=baseline, epsilon=task.epsilon)
    cache = None
    if task.cache_root:
        from ..parallel import ProfileCache

        cache = ProfileCache(task.cache_root)
    sim_cache = None
    if task.sim_cache_root:
        from .error_bound_sweep import _sim_cache_for

        sim_cache = _sim_cache_for(task.sim_cache_root)

    workload = load_workload(spec.suite, spec.name, scale=spec.scale, seed=seed)
    if len(workload) > spec.max_invocations:
        # Strided reduction keeps every kernel type and launch phase
        # represented (a head() slice would keep only the first ones).
        picks = np.linspace(0, len(workload) - 1, spec.max_invocations)
        workload = workload.subset(np.unique(picks.astype(np.int64)), name=spec.name)

    # Full cycle-level simulation per variant (deterministic per seed —
    # and therefore cacheable: re-runs and shared-variant grids reuse the
    # raw results instead of re-simulating every invocation).
    variant_cycles: Dict[str, np.ndarray] = {}
    for label, gpu in variants:
        simulator = GpuSimulator(gpu, sim_cache=sim_cache)
        variant_cycles[label] = simulator.cycle_counts(workload, seed=seed)

    # Plans from baseline profiles, evaluated against every variant.
    error_sums: Dict[Tuple[str, str], List[float]] = {}
    estimate_sums: Dict[Tuple[str, str], List[float]] = {}
    for rep in range(task.repetitions):
        rep_seed = seed + rep * 1009 + 1
        store = ProfileStore(workload, baseline, seed=rep_seed, cache=cache)
        for method in task.methods:
            sampler = config.sampler_for(method, workload)
            try:
                if hasattr(sampler, "build_plan_from_store"):
                    plan = sampler.build_plan_from_store(store, seed=rep_seed)
                else:
                    plan = sampler.build_plan(store, seed=rep_seed)
            except InfeasibleProfilingError:
                continue
            for label, _gpu in variants:
                outcome = evaluate_plan(plan, variant_cycles[label])
                error_sums.setdefault((method, label), []).append(
                    outcome.error_percent
                )
                estimate_sums.setdefault((method, label), []).append(
                    outcome.estimated_total
                )

    results: List[DseResult] = []
    for (method, label), errors in sorted(error_sums.items()):
        results.append(
            DseResult(
                workload=spec.name,
                variant=label,
                method=method,
                error_percent=float(np.mean(errors)),
                estimated_cycles=float(np.mean(estimate_sums[(method, label)])),
                full_cycles=float(variant_cycles[label].sum()),
            )
        )
    return results


def run_dse(
    workloads: Optional[List[DseWorkloadSpec]] = None,
    baseline_gpu: Optional[GPUConfig] = None,
    methods: Optional[List[str]] = None,
    repetitions: int = 3,
    seed: int = 0,
    epsilon: float = 0.05,
    jobs: Optional[int] = 1,
    profile_cache=None,
    sim_cache=None,
) -> List[DseResult]:
    """Full DSE grid; returns flat per-(workload, variant, method) rows.

    Sampling plans are built from baseline-hardware profiles and held
    fixed across variants; repetitions re-draw the random parts of each
    plan and average the resulting errors.

    ``jobs`` fans workload specs across processes (``1``/``None`` =
    sequential, ``0`` = all cores) with results identical to the
    sequential loop; specs share
    nothing but the payload config.  ``profile_cache`` (a
    :class:`repro.parallel.ProfileCache`) reuses baseline profiles across
    runs; ``sim_cache`` (a :class:`repro.memo.SimResultCache` or a cache
    directory path) does the same for the full per-variant cycle
    simulations — the dominant cost of a warm DSE re-run.
    """
    from ..parallel import run_tasks

    baseline = baseline_gpu or RTX_2080
    sim_cache_root = None
    if sim_cache is not None:
        from .error_bound_sweep import _SIM_CACHES
        from ..memo import SimResultCache

        if isinstance(sim_cache, SimResultCache):
            _SIM_CACHES[sim_cache.root] = sim_cache
            sim_cache_root = sim_cache.root
        else:
            sim_cache_root = str(sim_cache)
    tasks = [
        _DseSpecTask(
            spec=spec,
            baseline=baseline,
            methods=tuple(methods or ["pka", "sieve", "photon", "stem"]),
            repetitions=repetitions,
            seed=seed,
            epsilon=epsilon,
            cache_root=(
                profile_cache.root if profile_cache is not None else None
            ),
            sim_cache_root=sim_cache_root,
        )
        for spec in (workloads or default_dse_workloads())
    ]
    per_spec = run_tasks(
        _dse_spec_worker, tasks, jobs=(1 if jobs is None else jobs), label="dse"
    )
    results: List[DseResult] = []
    for spec_rows in per_spec:
        results.extend(spec_rows)
    return results


def table4_summary(results: List[DseResult]) -> Dict[str, Dict[str, float]]:
    """{variant: {method: mean error%}} — the Table 4 grid."""
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for row in results:
        grouped.setdefault((row.variant, row.method), []).append(row.error_percent)
    table: Dict[str, Dict[str, float]] = {}
    for (variant, method), errors in grouped.items():
        table.setdefault(variant, {})[method] = float(np.mean(errors))
    return table


__all__.append("table4_summary")
