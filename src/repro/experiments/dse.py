"""Design-space exploration on the cycle-level simulator (Table 4, Fig. 12).

Follows the paper's Sec. 5.4 methodology:

1. take reduced-size Rodinia and HuggingFace workloads (small enough to
   simulate fully);
2. build each method's sampling plan ONCE, from execution-time profiles
   collected on the *baseline* hardware — sampling information is never
   recomputed for the hardware variants;
3. fully simulate every workload on each microarchitectural variant
   (baseline, cache x2, cache x1/2, SMs x2, SMs x1/2) with the
   cycle-level simulator;
4. score each plan's weighted-sum cycle estimate against the full
   simulation's cycle count per variant.

The paper's expectation: STEM's error stays low and flat across variants
(~2%) while PKA/Sieve sit at ~17-28% and Photon ~5-6%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..baselines import ProfileStore
from ..core import (
    FidelityPolicy,
    FidelityTimes,
    combine_fidelity_bound,
    evaluate_plan,
    fidelity_cycle_counts,
)
from ..errors import (
    InfeasibleProfilingError,
    ProfileValidationError,
    SimulationFailure,
)
from ..hardware import RTX_2080, GPUConfig, dse_variants
from ..resilience.faults import FaultPlan
from ..sim import GpuSimulator
from ..workloads import load_workload
from .runner import ExperimentConfig

__all__ = [
    "DseResult",
    "DseWorkloadSpec",
    "default_dse_workloads",
    "run_dse",
    "PAPER_TABLE4",
]

#: Paper Table 4: {variant: {method: error%}}.
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "baseline": {"pka": 20.06, "sieve": 24.40, "photon": 5.96, "stem": 2.03},
    "cache_x2": {"pka": 22.66, "sieve": 25.67, "photon": 5.44, "stem": 1.93},
    "cache_x0.5": {"pka": 16.65, "sieve": 22.61, "photon": 5.33, "stem": 1.96},
    "sm_x2": {"pka": 17.90, "sieve": 28.18, "photon": 6.49, "stem": 2.28},
    "sm_x0.5": {"pka": 23.68, "sieve": 23.08, "photon": 5.14, "stem": 2.30},
}

VARIANT_LABELS = ["baseline", "cache_x2", "cache_x0.5", "sm_x2", "sm_x0.5"]


@dataclass(frozen=True)
class DseWorkloadSpec:
    """A reduced workload used for full cycle-level simulation."""

    suite: str
    name: str
    scale: float
    max_invocations: int


def default_dse_workloads(max_invocations: int = 200) -> List[DseWorkloadSpec]:
    """11 Rodinia + 6 HuggingFace workloads, reduced (paper Sec. 5.4)."""
    rodinia = [
        "backprop", "bfs", "btree", "cfd", "gaussian", "heartwall",
        "hotspot", "kmeans", "lud", "nw", "pf_naive",
    ]
    huggingface = ["bert", "bloom", "deit", "gemma", "gpt2", "resnet50"]
    specs = [
        DseWorkloadSpec("rodinia", name, 0.1, max_invocations) for name in rodinia
    ]
    specs += [
        DseWorkloadSpec("huggingface", name, 0.002, max_invocations)
        for name in huggingface
    ]
    return specs


@dataclass(frozen=True)
class DseResult:
    """One (workload, variant, method) evaluation.

    ``full_cycles`` is the *tier-relative* ground-truth total the row
    was scored against: the exact cycle-level total when ``fidelity`` is
    ``"cycle"``, otherwise the screened (calibrated-analytical +
    probes/escalations) total, which may differ from cycle-level truth
    by up to ``fidelity_gap``.  ``cycle_tier_cycles`` is the portion of
    that total that *is* known cycle-level truth (probes + escalations;
    equal to ``full_cycles`` on cycle rows), so downstream consumers can
    tell how much of the denominator is exact.

    The fidelity fields default to the legacy cycle-level values so
    existing callers (and serialized rows) are unaffected:
    ``fidelity`` names the tier that produced the per-variant ground
    truth, ``fidelity_gap`` is that tier's measured effective gap, and
    ``error_bound_percent`` the honest combined (ε + gap) bound a
    bound-carrying method's error is held to — ``ε(1+g)+g``, which
    reduces to plain ε·100 on cycle-level rows where ``g == 0``.
    """

    workload: str
    variant: str
    method: str
    error_percent: float
    estimated_cycles: float
    full_cycles: float
    fidelity: str = "cycle"
    fidelity_gap: float = 0.0
    error_bound_percent: float = 0.0
    cycle_tier_cycles: float = 0.0


@dataclass(frozen=True)
class _DseSpecTask:
    """Picklable payload: one workload spec's slice of the DSE grid."""

    spec: DseWorkloadSpec
    baseline: GPUConfig
    methods: Tuple[str, ...]
    repetitions: int
    seed: int
    epsilon: float
    cache_root: Optional[str] = None
    sim_cache_root: Optional[str] = None
    #: ``None`` keeps the legacy pure cycle-level path bit-identical.
    fidelity_policy: Optional[FidelityPolicy] = None
    #: Optional chaos-testing fault plan (profile corruption degrades
    #: poisoned cells to skipped rows instead of failing the grid).
    fault_plan: Optional[FaultPlan] = None


def _dse_spec_worker(task: _DseSpecTask) -> List[DseResult]:
    """Evaluate one workload spec on every variant (worker-safe).

    Self-contained per spec — nothing is shared across specs but the
    config values in the payload — so the DSE grid parallelizes across
    specs with results identical to the sequential loop.
    """
    spec = task.spec
    baseline = task.baseline
    seed = task.seed
    policy = task.fidelity_policy
    faulty = task.fault_plan is not None and task.fault_plan.enabled
    variants: List[Tuple[str, GPUConfig]] = list(
        zip(VARIANT_LABELS, dse_variants(baseline))
    )
    config = ExperimentConfig(
        gpu=baseline, epsilon=task.epsilon, fault_plan=task.fault_plan
    )
    cache = None
    if task.cache_root:
        from ..parallel import ProfileCache

        cache = ProfileCache(task.cache_root)
    sim_cache = None
    if task.sim_cache_root:
        from .error_bound_sweep import _sim_cache_for

        sim_cache = _sim_cache_for(task.sim_cache_root)

    workload = load_workload(spec.suite, spec.name, scale=spec.scale, seed=seed)
    if len(workload) > spec.max_invocations:
        # Strided reduction keeps every kernel type and launch phase
        # represented (a head() slice would keep only the first ones).
        picks = np.linspace(0, len(workload) - 1, spec.max_invocations)
        workload = workload.subset(np.unique(picks.astype(np.int64)), name=spec.name)

    # Per-variant ground truth.  The legacy path — full cycle-level
    # simulation — is kept verbatim when no fidelity policy is set (or
    # the policy asks for pure cycle), so `fidelity=cycle` results stay
    # bit-identical.  Otherwise each variant is analytically screened,
    # calibrated against cycle-level probes and selectively escalated
    # (see :mod:`repro.core.fidelity`); probes/escalations share the
    # cycle tier's sim-cache identity, so they warm future full runs.
    variant_cycles: Dict[str, np.ndarray] = {}
    variant_times: Dict[str, object] = {}
    max_gap = 0.0
    for label, gpu in variants:
        if policy is None or policy.mode == "cycle":
            simulator = GpuSimulator(gpu, sim_cache=sim_cache)
            variant_cycles[label] = simulator.cycle_counts(workload, seed=seed)
            variant_times[label] = variant_cycles[label]
        else:
            times = fidelity_cycle_counts(
                workload, gpu, seed=seed, policy=policy, sim_cache=sim_cache
            )
            # Label the ground truth so evaluate_plan files each
            # variant's fidelity provenance under its own key instead of
            # the last variant overwriting the plan's single slot.
            times.label = label
            variant_cycles[label] = times.values
            variant_times[label] = times
            max_gap = max(max_gap, times.effective_gap)

    # Plans from baseline profiles, evaluated against every variant.
    error_sums: Dict[Tuple[str, str], List[float]] = {}
    estimate_sums: Dict[Tuple[str, str], List[float]] = {}
    for rep in range(task.repetitions):
        rep_seed = seed + rep * 1009 + 1
        if faulty:
            store = config.store_for(workload, rep_seed, cache=cache)
        else:
            store = ProfileStore(workload, baseline, seed=rep_seed, cache=cache)
        for method in task.methods:
            sampler = config.sampler_for(method, workload)
            if max_gap and hasattr(sampler, "fidelity_gap"):
                # Fold the worst per-variant gap into the sampler's
                # reported predicted_error so the plan's own bound is
                # honest against cycle-level truth for every variant.
                sampler.fidelity_gap = max_gap
            try:
                if hasattr(sampler, "build_plan_from_store"):
                    plan = sampler.build_plan_from_store(store, seed=rep_seed)
                else:
                    plan = sampler.build_plan(store, seed=rep_seed)
            except InfeasibleProfilingError:
                continue
            except (ProfileValidationError, SimulationFailure):
                # Matches the grid runner's degradation rule: only an
                # active fault plan may turn these into skipped cells.
                if not faulty:
                    raise
                obs.log_event(
                    "resilience.dse_cell_failed",
                    workload=spec.name,
                    method=method,
                    repetition=rep,
                )
                continue
            for label, _gpu in variants:
                outcome = evaluate_plan(plan, variant_times[label])
                error_sums.setdefault((method, label), []).append(
                    outcome.error_percent
                )
                estimate_sums.setdefault((method, label), []).append(
                    outcome.estimated_total
                )

    results: List[DseResult] = []
    for (method, label), errors in sorted(error_sums.items()):
        times = variant_times[label]
        total = float(variant_cycles[label].sum())
        if isinstance(times, FidelityTimes):
            fidelity = times.mode
            gap = times.effective_gap
            cycle_tier = float(times.values[times.cycle_mask].sum())
        else:
            fidelity, gap = "cycle", 0.0
            cycle_tier = total
        bound_pct = combine_fidelity_bound(task.epsilon, gap) * 100.0
        results.append(
            DseResult(
                workload=spec.name,
                variant=label,
                method=method,
                error_percent=float(np.mean(errors)),
                estimated_cycles=float(np.mean(estimate_sums[(method, label)])),
                full_cycles=total,
                fidelity=fidelity,
                fidelity_gap=gap,
                error_bound_percent=bound_pct,
                cycle_tier_cycles=cycle_tier,
            )
        )
    return results


def run_dse(
    workloads: Optional[List[DseWorkloadSpec]] = None,
    baseline_gpu: Optional[GPUConfig] = None,
    methods: Optional[List[str]] = None,
    repetitions: int = 3,
    seed: int = 0,
    epsilon: float = 0.05,
    jobs: Optional[int] = 1,
    profile_cache=None,
    sim_cache=None,
    fidelity: str = "cycle",
    escalation_budget: Optional[float] = None,
    fidelity_policy: Optional[FidelityPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> List[DseResult]:
    """Full DSE grid; returns flat per-(workload, variant, method) rows.

    Sampling plans are built from baseline-hardware profiles and held
    fixed across variants; repetitions re-draw the random parts of each
    plan and average the resulting errors.

    ``jobs`` fans workload specs across processes (``1``/``None`` =
    sequential, ``0`` = all cores) with results identical to the
    sequential loop; specs share
    nothing but the payload config.  ``profile_cache`` (a
    :class:`repro.parallel.ProfileCache`) reuses baseline profiles across
    runs; ``sim_cache`` (a :class:`repro.memo.SimResultCache` or a cache
    directory path) does the same for the full per-variant cycle
    simulations — the dominant cost of a warm DSE re-run.

    ``fidelity`` selects the ground-truth tier per variant: ``cycle``
    (the default — bit-identical to the legacy path), ``analytical``
    (calibrated screening only) or ``hybrid`` (screening plus cycle-level
    escalation of the top-``escalation_budget`` share of invocations).
    ``fidelity_policy`` overrides both with a full
    :class:`~repro.core.FidelityPolicy`.  ``fault_plan`` chaos-tests the
    grid: profile corruption degrades poisoned cells instead of failing
    the run, and worker-kill rates exercise the supervised pool.
    """
    from ..parallel import run_tasks

    if fidelity not in ("cycle", "analytical", "hybrid"):
        raise ValueError(
            f"fidelity must be 'cycle', 'analytical' or 'hybrid', got {fidelity!r}"
        )
    if fidelity_policy is None and fidelity != "cycle":
        kwargs = {"mode": fidelity}
        if escalation_budget is not None:
            kwargs["escalation_budget"] = escalation_budget
        fidelity_policy = FidelityPolicy(**kwargs)

    baseline = baseline_gpu or RTX_2080
    sim_cache_root = None
    if sim_cache is not None:
        from .error_bound_sweep import _SIM_CACHES
        from ..memo import SimResultCache

        if isinstance(sim_cache, SimResultCache):
            _SIM_CACHES[sim_cache.root] = sim_cache
            sim_cache_root = sim_cache.root
        else:
            sim_cache_root = str(sim_cache)
    tasks = [
        _DseSpecTask(
            spec=spec,
            baseline=baseline,
            methods=tuple(methods or ["pka", "sieve", "photon", "stem"]),
            repetitions=repetitions,
            seed=seed,
            epsilon=epsilon,
            cache_root=(
                profile_cache.root if profile_cache is not None else None
            ),
            sim_cache_root=sim_cache_root,
            fidelity_policy=fidelity_policy,
            fault_plan=fault_plan,
        )
        for spec in (workloads or default_dse_workloads())
    ]
    per_spec = run_tasks(
        _dse_spec_worker,
        tasks,
        jobs=(1 if jobs is None else jobs),
        label="dse",
        fault_plan=(
            fault_plan
            if fault_plan is not None and fault_plan.faults_workers
            else None
        ),
    )
    results: List[DseResult] = []
    for spec_rows in per_spec:
        results.extend(spec_rows)
    return results


def table4_summary(results: List[DseResult]) -> Dict[str, Dict[str, float]]:
    """{variant: {method: mean error%}} — the Table 4 grid."""
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for row in results:
        grouped.setdefault((row.variant, row.method), []).append(row.error_percent)
    table: Dict[str, Dict[str, float]] = {}
    for (variant, method), errors in grouped.items():
        table.setdefault(variant, {})[method] = float(np.mean(errors))
    return table


__all__.append("table4_summary")
