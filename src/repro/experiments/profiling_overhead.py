"""Profiling-overhead comparison (Table 5).

Estimates each method's profiling wall-time overhead (relative to the
uninstrumented run) on every workload of every suite, using the cost
models in :mod:`repro.profiling`.  Photon's entry additionally charges its
BBV-comparison processing, using the representative count from an actual
Photon run when the workload is small enough and the quadratic upper
bound otherwise.

Paper reference (Table 5): PKA 35.57x / 3704.23x, Sieve 94.14x / 293.58x,
Photon 12.81x / 38.58x, STEM 1.54x / 5.53x on Rodinia / CASIO, with all
prior methods N/A on HuggingFace (up to 78.68 projected days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines import PhotonSampler, ProfileStore
from ..hardware import RTX_2080, GPUConfig
from ..profiling.overhead import INFEASIBLE_DAYS, OverheadModel
from ..workloads import load_suite

__all__ = ["OverheadRow", "run_profiling_overhead", "PAPER_TABLE5"]

#: Paper Table 5: {method: {suite: overhead factor}} (None = N/A).
PAPER_TABLE5: Dict[str, Dict[str, Optional[float]]] = {
    "pka": {"rodinia": 35.57, "casio": 3704.23, "huggingface": None},
    "sieve": {"rodinia": 94.14, "casio": 293.58, "huggingface": None},
    "photon": {"rodinia": 12.81, "casio": 38.58, "huggingface": None},
    "stem": {"rodinia": 1.54, "casio": 5.53, "huggingface": 1.33},
}


@dataclass(frozen=True)
class OverheadRow:
    """One method's mean overhead over one suite."""

    method: str
    suite: str
    overhead_factor: float
    projected_days: float
    feasible: bool


def run_profiling_overhead(
    suites: Optional[List[str]] = None,
    gpu: Optional[GPUConfig] = None,
    seed: int = 0,
    workload_scale: float = 1.0,
    photon_exact_limit: int = 200_000,
) -> List[OverheadRow]:
    """Mean overhead factor of each method per suite."""
    gpu = gpu or RTX_2080
    model = OverheadModel(gpu)
    rows: List[OverheadRow] = []
    for suite in suites or ["rodinia", "casio", "huggingface"]:
        workloads = load_suite(suite, scale=workload_scale, seed=seed)
        per_method: Dict[str, List[float]] = {m: [] for m in model.METHOD_COSTS}
        per_method_days: Dict[str, List[float]] = {m: [] for m in model.METHOD_COSTS}
        per_method_feasible: Dict[str, bool] = {m: True for m in model.METHOD_COSTS}
        for workload in workloads:
            reps = None
            if len(workload) <= photon_exact_limit:
                # Run Photon for its true representative count.
                store = ProfileStore(workload, gpu, seed=seed)
                plan = PhotonSampler(max_kernels=photon_exact_limit).build_plan(
                    store, seed=seed
                )
                reps = plan.num_clusters
            for method in model.METHOD_COSTS:
                estimate = model.estimate(
                    method,
                    workload,
                    seed=seed,
                    num_representatives=reps if method == "photon" else None,
                )
                per_method[method].append(estimate.overhead_factor)
                per_method_days[method].append(estimate.profiling_days)
                per_method_feasible[method] &= estimate.feasible
        for method in model.METHOD_COSTS:
            days = float(np.mean(per_method_days[method]))
            rows.append(
                OverheadRow(
                    method=method,
                    suite=suite,
                    overhead_factor=float(np.mean(per_method[method])),
                    projected_days=days,
                    feasible=per_method_feasible[method] and days <= INFEASIBLE_DAYS,
                )
            )
    return rows
