"""Cross-GPU portability of sampling information (Figure 13).

Builds STEM sampling plans from kernel profiles collected on the H100 and
scores them against execution times measured on the H200 — a newer part
whose main upgrades are memory capacity and bandwidth.  The paper reports
an average error of 5.46%, with the memory-intensive ``dlrm`` workload
worst because the H200's memory-subsystem upgrade shifts exactly the
kernels whose behaviour the H100 profile captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..baselines import ProfileStore
from ..core import StemRootSampler, evaluate_plan
from ..hardware import H100, H200, GPUConfig, TimingModel
from ..workloads import load_suite

__all__ = ["CrossGpuResult", "run_cross_gpu", "PAPER_FIGURE13_MEAN_ERROR"]

#: The paper's average H100->H200 sampling error.
PAPER_FIGURE13_MEAN_ERROR = 5.46


@dataclass(frozen=True)
class CrossGpuResult:
    """Per-workload error when H100-derived sampling runs on the H200."""

    workload: str
    error_percent: float
    same_gpu_error_percent: float
    speedup: float


def run_cross_gpu(
    suite: str = "casio",
    source_gpu: Optional[GPUConfig] = None,
    target_gpu: Optional[GPUConfig] = None,
    epsilon: float = 0.05,
    repetitions: int = 5,
    seed: int = 0,
    workload_scale: float = 1.0,
) -> List[CrossGpuResult]:
    """Profile on ``source_gpu``, evaluate on ``target_gpu``.

    Returns per-workload mean errors across repetitions, alongside the
    same-GPU error for reference.
    """
    source = source_gpu or H100
    target = target_gpu or H200
    workloads = load_suite(suite, scale=workload_scale, seed=seed)
    results: List[CrossGpuResult] = []
    for workload in workloads:
        cross_errors, same_errors, speedups = [], [], []
        for rep in range(repetitions):
            rep_seed = seed + rep * 1013 + 1
            store = ProfileStore(workload, source, seed=rep_seed)
            source_times = store.execution_times()
            # Same workload on the target GPU, independent hardware noise.
            target_times = TimingModel(target).execution_times(
                workload, seed=rep_seed + 7_777
            )
            sampler = StemRootSampler(epsilon=epsilon)
            plan = sampler.build_plan(workload, source_times, seed=rep_seed)
            cross = evaluate_plan(plan, target_times)
            same = evaluate_plan(plan, source_times)
            cross_errors.append(cross.error_percent)
            same_errors.append(same.error_percent)
            speedups.append(cross.speedup)
        results.append(
            CrossGpuResult(
                workload=workload.name,
                error_percent=float(np.mean(cross_errors)),
                same_gpu_error_percent=float(np.mean(same_errors)),
                speedup=float(np.mean(speedups)),
            )
        )
    return results
