"""Error-bound sensitivity sweep (Figure 11).

Varies STEM's error bound epsilon over the CASIO suite at a fixed 95%
confidence level and records the speedup/error tradeoff.  The paper's
reference points: eps=3% gave 0.18% error at 76.46x speedup; eps=25% gave
2.00% error at 228.53x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.metrics import harmonic_mean
from .runner import ExperimentConfig, run_suite

__all__ = ["SweepPoint", "run_error_bound_sweep", "PAPER_FIGURE11", "DEFAULT_EPSILONS"]

DEFAULT_EPSILONS = (0.03, 0.05, 0.10, 0.25)

#: Paper reference points: {epsilon: (speedup, error%)}.
PAPER_FIGURE11 = {0.03: (76.46, 0.18), 0.25: (228.53, 2.00)}


@dataclass(frozen=True)
class SweepPoint:
    """Aggregate outcome of one epsilon setting."""

    epsilon: float
    speedup: float
    error_percent: float
    mean_samples: float


def run_error_bound_sweep(
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    config: Optional[ExperimentConfig] = None,
    suite: str = "casio",
    jobs: Optional[int] = 1,
    profile_cache=None,
) -> List[SweepPoint]:
    """STEM-only sweep of the error bound over one suite.

    ``jobs``/``profile_cache`` pass straight through to
    :func:`~repro.experiments.runner.run_suite`; the cache pays off
    especially here, since every epsilon re-profiles the same
    (workload, seed) cells.
    """
    if config is None:
        config = ExperimentConfig()
    points: List[SweepPoint] = []
    for epsilon in epsilons:
        cfg = ExperimentConfig(
            gpu=config.gpu,
            repetitions=config.repetitions,
            base_seed=config.base_seed,
            epsilon=epsilon,
            workload_scale=config.workload_scale,
        )
        rows = run_suite(
            suite, config=cfg, methods=["stem"], jobs=jobs, profile_cache=profile_cache
        )
        # Average per workload first, then across workloads.
        by_workload: Dict[str, List] = {}
        for row in rows:
            by_workload.setdefault(row.workload, []).append(row)
        speeds, errors, samples = [], [], []
        for reps in by_workload.values():
            speeds.append(harmonic_mean([r.speedup for r in reps]))
            errors.append(float(np.mean([r.error_percent for r in reps])))
            samples.append(float(np.mean([r.num_samples for r in reps])))
        points.append(
            SweepPoint(
                epsilon=epsilon,
                speedup=harmonic_mean(speeds),
                error_percent=float(np.mean(errors)),
                mean_samples=float(np.mean(samples)),
            )
        )
    return points
