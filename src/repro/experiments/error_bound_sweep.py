"""Error-bound sensitivity sweep (Figure 11).

Varies STEM's error bound epsilon over the CASIO suite at a fixed 95%
confidence level and records the speedup/error tradeoff.  The paper's
reference points: eps=3% gave 0.18% error at 76.46x speedup; eps=25% gave
2.00% error at 228.53x.

Memoization: every epsilon point re-profiles, re-clusters and (in
simulator-scored mode) re-simulates the *same* (workload, repetition)
cells — only the acceptance test and sample allocation actually depend
on epsilon.  Sequential sweeps therefore share one
:class:`~repro.memo.SplitTreeCache` across points automatically
(clustering each (workload, seed) once), and ``sim_cache`` +
``ground_truth="sim"`` reuse raw simulation results across points, runs
and processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.metrics import harmonic_mean
from ..memo import SimResultCache, SplitTreeCache
from .runner import ExperimentConfig, run_suite

__all__ = [
    "SweepPoint",
    "SimGroundTruth",
    "run_error_bound_sweep",
    "PAPER_FIGURE11",
    "DEFAULT_EPSILONS",
]

DEFAULT_EPSILONS = (0.03, 0.05, 0.10, 0.25)

#: Paper reference points: {epsilon: (speedup, error%)}.
PAPER_FIGURE11 = {0.03: (76.46, 0.18), 0.25: (228.53, 2.00)}

#: Per-process registry so every scorer (and re-run) sharing a cache root
#: also shares one in-memory layer and one set of hit/miss counters.
_SIM_CACHES: Dict[str, SimResultCache] = {}


def _sim_cache_for(root: str) -> SimResultCache:
    cache = _SIM_CACHES.get(root)
    if cache is None:
        cache = SimResultCache(root)
        # Result-neutral: memoizes the *handle* to a content-addressed
        # store keyed only by its root path; hits/misses change timing,
        # never any returned number.
        _SIM_CACHES[root] = cache  # repro-lint: disable=pool-safety
    return cache


@dataclass(frozen=True)
class SimGroundTruth:
    """Score plans against the cycle simulator instead of the profile.

    A picklable ``ground_truth`` hook for :func:`run_suite`: the truth
    becomes ``GpuSimulator.cycle_counts`` on the store's GPU at the
    repetition seed.  With ``sim_cache_root`` set, raw per-invocation
    results are cached on disk — every epsilon point and every re-run
    reuses the same full-workload simulation instead of repeating it.

    ``fidelity`` swaps the truth tier: ``"cycle"`` (default, the
    bit-identical legacy path) or ``"analytical"``/``"hybrid"`` screened
    truth from :func:`~repro.core.fidelity.fidelity_cycle_counts` with
    the given probe/escalation knobs.  The callable still returns a plain
    per-invocation array, so :func:`run_suite` is unaffected.
    """

    sim_cache_root: Optional[str] = None
    fidelity: str = "cycle"
    probe_count: int = 8
    escalation_budget: float = 0.05

    def __call__(self, store, seed: int) -> np.ndarray:
        from ..sim import GpuSimulator  # lazy: keeps import graph light

        cache = (
            _sim_cache_for(self.sim_cache_root)
            if self.sim_cache_root is not None
            else None
        )
        if self.fidelity != "cycle":
            from ..core.fidelity import FidelityPolicy, fidelity_cycle_counts

            times = fidelity_cycle_counts(
                store.workload,
                store.config,
                seed=seed,
                policy=FidelityPolicy(
                    mode=self.fidelity,
                    probe_count=self.probe_count,
                    escalation_budget=self.escalation_budget,
                ),
                sim_cache=cache,
            )
            return times.values
        simulator = GpuSimulator(store.config, sim_cache=cache)
        return simulator.cycle_counts(store.workload, seed=seed)


@dataclass(frozen=True)
class SweepPoint:
    """Aggregate outcome of one epsilon setting."""

    epsilon: float
    speedup: float
    error_percent: float
    mean_samples: float


def run_error_bound_sweep(
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    config: Optional[ExperimentConfig] = None,
    suite: str = "casio",
    jobs: Optional[int] = 1,
    profile_cache=None,
    sim_cache: Optional[Union[SimResultCache, str]] = None,
    ground_truth: Union[str, Callable, None] = "profile",
    tree_cache: Union[SplitTreeCache, bool, None] = None,
    fidelity: str = "cycle",
    escalation_budget: float = 0.05,
) -> List[SweepPoint]:
    """STEM-only sweep of the error bound over one suite.

    ``jobs``/``profile_cache`` pass straight through to
    :func:`~repro.experiments.runner.run_suite`; the cache pays off
    especially here, since every epsilon re-profiles the same
    (workload, seed) cells.

    ``ground_truth`` selects what plans are scored against:
    ``"profile"`` (default, the paper's Table 3 methodology),
    ``"sim"`` (the cycle simulator, reusing ``sim_cache`` across
    points and runs), or any custom :func:`run_suite`-style callable.

    ``tree_cache`` shares ROOT candidate split trees across epsilon
    points; sequential sweeps create one automatically (epsilon is not
    part of the tree key, so every point after the first re-walks cached
    trees instead of re-clustering).  Pass ``False`` to disable the
    automatic cache (the benchmark's cold baseline).  Results are
    bit-identical with and without every cache.

    ``fidelity``/``escalation_budget`` apply to ``ground_truth="sim"``
    only: ``"analytical"`` or ``"hybrid"`` replaces the full cycle-level
    truth with the calibrated multi-fidelity screen (see
    :mod:`repro.core.fidelity`); ``"cycle"`` (default) keeps the legacy
    path bit-identical.
    """
    if fidelity not in ("cycle", "analytical", "hybrid"):
        raise ValueError(
            f"fidelity must be 'cycle', 'analytical' or 'hybrid', got {fidelity!r}"
        )
    if config is None:
        config = ExperimentConfig()
    sequential = jobs is None or int(jobs) == 1
    if tree_cache is False:
        tree_cache = None
    elif tree_cache is None and sequential and config.tree_cache is None:
        tree_cache = SplitTreeCache()
    if tree_cache is not None:
        config = replace(config, tree_cache=tree_cache)

    if callable(ground_truth):
        truth_fn: Optional[Callable] = ground_truth
    elif ground_truth in (None, "profile"):
        truth_fn = None
    elif ground_truth == "sim":
        root: Optional[str] = None
        if isinstance(sim_cache, SimResultCache):
            _SIM_CACHES[sim_cache.root] = sim_cache
            root = sim_cache.root
        elif sim_cache is not None:
            root = str(sim_cache)
        truth_fn = SimGroundTruth(
            sim_cache_root=root,
            fidelity=fidelity,
            escalation_budget=escalation_budget,
        )
    else:
        raise ValueError(
            f"ground_truth must be 'profile', 'sim' or a callable, "
            f"got {ground_truth!r}"
        )

    points: List[SweepPoint] = []
    for epsilon in epsilons:
        # ``replace`` keeps every other knob — fault plans, validation,
        # caches — instead of silently resetting new fields to defaults.
        cfg = replace(config, epsilon=epsilon)
        rows = run_suite(
            suite,
            config=cfg,
            methods=["stem"],
            ground_truth=truth_fn,
            jobs=jobs,
            profile_cache=profile_cache,
        )
        # Average per workload first, then across workloads.
        by_workload: Dict[str, List] = {}
        for row in rows:
            by_workload.setdefault(row.workload, []).append(row)
        speeds, errors, samples = [], [], []
        for reps in by_workload.values():
            speeds.append(harmonic_mean([r.speedup for r in reps]))
            errors.append(float(np.mean([r.error_percent for r in reps])))
            samples.append(float(np.mean([r.num_samples for r in reps])))
        points.append(
            SweepPoint(
                epsilon=epsilon,
                speedup=harmonic_mean(speeds),
                error_percent=float(np.mean(errors)),
                mean_samples=float(np.mean(samples)),
            )
        )
    return points
