"""Runtime-heterogeneity histograms (Figure 1).

Collects execution-time distributions of repeatedly invoked kernels from
CASIO-style ML workloads and classifies each distribution's shape — the
observation motivating the whole methodology: multi-peak kernels
(``bn_fw_inf``, ``sgemm_128x64``) and wide memory-bound kernels
(``max_pool``) coexist in one workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.histogram import KernelShape, classify_times
from ..baselines import ProfileStore
from ..hardware import RTX_2080, GPUConfig
from ..workloads import load_workload

__all__ = ["KernelHistogram", "run_figure1"]


@dataclass(frozen=True)
class KernelHistogram:
    """One kernel's execution-time sample and its classified shape."""

    workload: str
    kernel: str
    times: np.ndarray
    shape: KernelShape


def run_figure1(
    workload_names: Optional[List[str]] = None,
    suite: str = "casio",
    gpu: Optional[GPUConfig] = None,
    seed: int = 0,
    workload_scale: float = 1.0,
) -> List[KernelHistogram]:
    """Per-kernel execution-time distributions from ML workloads."""
    gpu = gpu or RTX_2080
    histograms: List[KernelHistogram] = []
    for name in workload_names or ["resnet50_infer", "bert_infer"]:
        workload = load_workload(suite, name, scale=workload_scale, seed=seed)
        store = ProfileStore(workload, gpu, seed=seed)
        times = store.execution_times()
        for kernel_name, indices in workload.indices_by_name().items():
            kernel_times = times[indices]
            histograms.append(
                KernelHistogram(
                    workload=name,
                    kernel=kernel_name,
                    times=kernel_times,
                    shape=classify_times(kernel_times),
                )
            )
    return histograms


def shape_census(histograms: List[KernelHistogram]) -> Dict[str, int]:
    """Count of kernels per shape label — the Figure 2 taxonomy summary."""
    census: Dict[str, int] = {}
    for h in histograms:
        census[h.shape.label] = census.get(h.shape.label, 0) + 1
    return census


__all__.append("shape_census")
