"""Workload-suite summary (paper Table 2).

Reports, per suite: workload count, average modeled execution time, and
average kernel-call count — the scale axis the whole evaluation story
moves along (Rodinia ~1.4k calls, CASIO ~64k, HuggingFace millions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..hardware import RTX_2080, GPUConfig, TimingModel
from ..workloads import load_suite

__all__ = ["SuiteSummaryRow", "run_table2", "PAPER_TABLE2"]

#: Paper Table 2: {suite: (num_workloads, avg_exec_seconds, avg_kernel_calls)}.
PAPER_TABLE2 = {
    "rodinia": (13, 6.46, 1403),
    "casio": (11, 7.26, 64279),
    "huggingface": (6, 1835.27, 11599870),
}


@dataclass(frozen=True)
class SuiteSummaryRow:
    """One suite's scale summary."""

    suite: str
    num_workloads: int
    avg_execution_seconds: float
    avg_kernel_calls: float


def run_table2(
    gpu: Optional[GPUConfig] = None,
    seed: int = 0,
    workload_scale: float = 1.0,
    suites: Optional[List[str]] = None,
) -> List[SuiteSummaryRow]:
    """Summarize each suite's scale on the modeled profiling GPU."""
    gpu = gpu or RTX_2080
    timing = TimingModel(gpu)
    rows: List[SuiteSummaryRow] = []
    for suite in suites or ["rodinia", "casio", "huggingface"]:
        workloads = load_suite(suite, scale=workload_scale, seed=seed)
        calls = [len(w) for w in workloads]
        seconds = [timing.total_time_us(w, seed=seed) / 1e6 for w in workloads]
        rows.append(
            SuiteSummaryRow(
                suite=suite,
                num_workloads=len(workloads),
                avg_execution_seconds=float(np.mean(seconds)),
                avg_kernel_calls=float(np.mean(calls)),
            )
        )
    return rows
