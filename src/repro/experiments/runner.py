"""Shared experiment orchestration.

Runs (method x workload x repetition) grids, producing flat result rows
that the per-table/per-figure experiment modules aggregate.  Encodes the
paper's methodology choices:

* every experiment repeats ``repetitions`` times (paper: 10) with varied
  hardware-noise and sampler seeds, then averages — harmonic mean for
  speedup, arithmetic mean for error;
* PKA and Sieve are hand-tuned to random (instead of first-chronological)
  selection on the workloads the paper lists (``gaussian``, ``heartwall``,
  ``ssdrn34-infer``, ``unet-infer/train``), and Sieve's KDE clustering is
  disabled on CASIO;
* uniform random sampling uses 10% on Rodinia and 0.1% on CASIO and
  HuggingFace;
* methods whose profiling is infeasible at a workload's scale (PKA, Sieve
  and Photon on HuggingFace) are reported as N/A rows.

Fault tolerance (all off by default, see :mod:`repro.resilience`):

* ``ExperimentConfig.fault_plan`` corrupts each repetition's profile
  through a seeded injector; plans are still scored against the clean
  ground truth, so the rows measure how much the corruption hurt;
* only :class:`~repro.errors.InfeasibleProfilingError` maps to an N/A
  row — unrelated runtime bugs propagate instead of masquerading as
  "profiling infeasible".  With a fault plan active, profile-validation
  and simulation failures also degrade to N/A rows so one poisoned cell
  cannot kill the grid;
* passing ``checkpoint`` (a path or
  :class:`~repro.resilience.GridCheckpoint`) persists each completed
  cell to JSONL; a re-run resumes exactly where the previous one died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..analysis import detsan
from ..baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
    TbpointSampler,
)
from ..core import StemRootSampler, evaluate_plan
from ..core.plan import SamplingPlan
from ..errors import (
    InfeasibleProfilingError,
    ProfileValidationError,
    SimulationFailure,
)
from ..hardware import RTX_2080, GPUConfig
from ..resilience.checkpoint import GridCheckpoint
from ..resilience.faults import FaultInjector, FaultPlan
from ..workloads import load_suite
from ..workloads.workload import Workload

__all__ = [
    "ExperimentConfig",
    "ResultRow",
    "METHODS",
    "run_workload",
    "run_suite",
    "compute_cell_rows",
    "repetition_seed",
]

#: Workloads the paper hand-tuned to random sample selection (Sec. 5.1).
HAND_TUNED_WORKLOADS = {
    "gaussian",
    "heartwall",
    "ssdrn34_infer",
    "unet_infer",
    "unet_train",
}

#: Canonical method order used in every table (the paper's Table 3).
METHODS = ["random", "pka", "sieve", "photon", "stem"]

#: Additional methods available on request (e.g. the TBPoint predecessor).
EXTRA_METHODS = ["tbpoint"]

#: Uniform-random sampling fraction per suite (paper Table 3 footnote).
RANDOM_FRACTIONS = {"rodinia": 0.10, "casio": 0.001, "huggingface": 0.001, "synthetic": 0.01}


@dataclass(frozen=True)
class ResultRow:
    """One (method, workload, repetition) evaluation."""

    suite: str
    workload: str
    method: str
    repetition: int
    error_percent: float
    speedup: float
    num_samples: int
    num_clusters: int
    feasible: bool = True
    #: The cell's task kept killing pool workers and was quarantined by
    #: the supervisor (see :mod:`repro.parallel.supervisor`); the value
    #: columns are NaN/0 like an infeasible row.  Quarantined rows are
    #: never checkpointed, so a resumed grid retries them.
    quarantined: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "workload": self.workload,
            "method": self.method,
            "repetition": self.repetition,
            "error_percent": self.error_percent,
            "speedup": self.speedup,
            "num_samples": self.num_samples,
            "num_clusters": self.num_clusters,
            "feasible": self.feasible,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResultRow":
        return cls(
            suite=str(payload["suite"]),
            workload=str(payload["workload"]),
            method=str(payload["method"]),
            repetition=int(payload["repetition"]),  # type: ignore[arg-type]
            error_percent=float(payload["error_percent"]),  # type: ignore[arg-type]
            speedup=float(payload["speedup"]),  # type: ignore[arg-type]
            num_samples=int(payload["num_samples"]),  # type: ignore[arg-type]
            num_clusters=int(payload["num_clusters"]),  # type: ignore[arg-type]
            feasible=bool(payload.get("feasible", True)),
            quarantined=bool(payload.get("quarantined", False)),
        )


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments."""

    gpu: GPUConfig = field(default_factory=lambda: RTX_2080)
    repetitions: int = 10
    base_seed: int = 0
    epsilon: float = 0.05
    #: Workload-count scale factor (tests shrink workloads through this).
    workload_scale: float = 1.0
    #: Optional seeded fault model applied to every repetition's profile
    #: (see :class:`repro.resilience.FaultPlan`).  ``None`` = no faults.
    fault_plan: Optional[FaultPlan] = None
    #: Profile validation mode for the stores this runner builds
    #: (``off``/``strict``/``repair``).  Forced to ``repair`` whenever a
    #: fault plan corrupts profiles, so injected garbage is healed rather
    #: than crashing every sampler.
    validation: str = "off"
    #: Optional :class:`~repro.memo.SplitTreeCache` handed to every STEM
    #: sampler this config builds.  Sharing one cache across configs that
    #: differ only in ``epsilon`` (see ``run_error_bound_sweep``) reuses
    #: each (workload, seed) ROOT candidate tree per epsilon point.
    #: Deliberately absent from :meth:`fingerprint` — caching never
    #: changes results, so checkpoints stay interchangeable.
    tree_cache: Optional[object] = field(default=None, repr=False, compare=False)

    def sampler_for(self, method: str, workload: Workload):
        """Instantiate a sampling method with the paper's tuning rules.

        Feasibility caps (the kernel counts beyond which PKA/Sieve/Photon
        profiling takes months) are scaled by ``workload_scale`` so a
        reduced workload inherits the feasibility of the full-size
        original it stands in for.
        """
        suite = workload.suite
        tuned = workload.name in HAND_TUNED_WORKLOADS
        select = "random" if tuned else "first"
        scale = self.workload_scale
        if method == "random":
            fraction = RANDOM_FRACTIONS.get(suite, 0.01)
            return RandomSampler(fraction)
        if method == "pka":
            return PkaSampler(
                select=select, max_points_for_sweep=max(1, int(200_000 * scale))
            )
        if method == "sieve":
            return SieveSampler(
                select=select,
                use_kde=(suite == "rodinia"),
                max_kernels=max(1, int(300_000 * scale)),
            )
        if method == "photon":
            return PhotonSampler(max_kernels=max(1, int(500_000 * scale)))
        if method == "tbpoint":
            return TbpointSampler(max_kernels=max(1, int(200_000 * scale)))
        if method == "stem":
            return StemRootSampler(epsilon=self.epsilon, tree_cache=self.tree_cache)
        raise KeyError(
            f"unknown method {method!r}; available: {METHODS + EXTRA_METHODS}"
        )

    def store_for(
        self, workload: Workload, seed: int, cache=None
    ) -> ProfileStore:
        """Build the repetition's profile store, wiring in fault injection.

        ``cache`` (a :class:`repro.parallel.ProfileCache`, or ``None``)
        lets the store reuse already-collected nsys profiles instead of
        recollecting them; cached profiles are the *clean* ones, so fault
        injection and validation behave identically either way.
        """
        injector = None
        validation = self.validation
        if self.fault_plan is not None and self.fault_plan.enabled:
            if self.fault_plan.corrupts_profiles:
                injector = FaultInjector(self.fault_plan)
                if validation == "off":
                    validation = "repair"
            if self.fault_plan.corrupts_cache and cache is not None:
                if getattr(cache, "fault_injector", None) is None:
                    # Chaos-testing hook: corrupt freshly stored cache
                    # entries on disk.  Results stay bit-identical — the
                    # in-memory array is what gets used, and corrupted
                    # entries are quarantined and recollected on read.
                    cache.fault_injector = FaultInjector(self.fault_plan)
        return ProfileStore(
            workload,
            self.gpu,
            seed=seed,
            fault_injector=injector,
            validation=validation,
            cache=cache,
        )

    def fingerprint(self) -> Dict[str, object]:
        """Checkpoint-compatible summary of everything that shapes rows."""
        return {
            "gpu": self.gpu.name,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "epsilon": self.epsilon,
            "workload_scale": self.workload_scale,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan is not None else None
            ),
            "validation": self.validation,
        }


def build_plan(sampler, store: ProfileStore, seed: int) -> SamplingPlan:
    """Dispatch to the method's plan builder (STEM consumes the store too)."""
    if hasattr(sampler, "build_plan_from_store"):
        return sampler.build_plan_from_store(store, seed=seed)
    return sampler.build_plan(store, seed=seed)


def _infeasible_row(workload: Workload, method: str, rep: int) -> ResultRow:
    return ResultRow(
        suite=workload.suite,
        workload=workload.name,
        method=method,
        repetition=rep,
        error_percent=float("nan"),
        speedup=float("nan"),
        num_samples=0,
        num_clusters=0,
        feasible=False,
    )


def _quarantined_row(workload: Workload, method: str, rep: int) -> ResultRow:
    """An N/A-shaped row for a cell whose task was poison-quarantined."""
    return ResultRow(
        suite=workload.suite,
        workload=workload.name,
        method=method,
        repetition=rep,
        error_percent=float("nan"),
        speedup=float("nan"),
        num_samples=0,
        num_clusters=0,
        feasible=False,
        quarantined=True,
    )


def _as_checkpoint(
    checkpoint: Optional[Union[str, GridCheckpoint]],
    config: ExperimentConfig,
) -> Optional[GridCheckpoint]:
    if checkpoint is None or isinstance(checkpoint, GridCheckpoint):
        return checkpoint
    return GridCheckpoint(str(checkpoint), config=config.fingerprint())


def repetition_seed(config: ExperimentConfig, rep: int) -> int:
    """The RNG seed of one repetition — a pure function of the config.

    Every grid cell derives its randomness from this (never from shared
    state), which is what makes parallel execution bit-identical to
    sequential: a cell's result depends only on (workload, method, rep),
    not on which worker ran it or in what order.
    """
    return config.base_seed + rep * 1009 + 1


def compute_cell_rows(
    workload: Workload,
    config: ExperimentConfig,
    methods: Iterable[str],
    rep: int,
    ground_truth: Optional[Callable[[ProfileStore, int], np.ndarray]] = None,
    profile_cache=None,
) -> Iterator[Tuple[str, ResultRow]]:
    """Compute the (method, row) cells of one repetition, lazily.

    The single source of truth for cell evaluation: the sequential runner
    drains this generator cell-by-cell (checkpointing each row as it
    lands), and parallel grid workers drain it inside their own process —
    both paths therefore produce identical rows by construction.

    The repetition's profile store is created lazily and shared across
    all requested methods, so a repetition profiles its workload at most
    once (and not at all when ``methods`` is empty or the profile comes
    out of ``profile_cache``).
    """
    seed = repetition_seed(config, rep)
    faulty = config.fault_plan is not None and config.fault_plan.enabled
    store: Optional[ProfileStore] = None
    truth: Optional[np.ndarray] = None

    def rep_store() -> ProfileStore:
        nonlocal store
        if store is None:
            store = config.store_for(workload, seed, cache=profile_cache)
        return store

    def rep_truth() -> np.ndarray:
        nonlocal truth
        if truth is None:
            truth = (
                rep_store().true_execution_times()
                if ground_truth is None
                else ground_truth(rep_store(), seed)
            )
        return truth

    for method in methods:
        sampler = config.sampler_for(method, workload)
        try:
            plan = build_plan(sampler, rep_store(), seed=seed)
        except InfeasibleProfilingError:
            # Profiling infeasible at this scale (Table 3/5 "N/A").
            row = _infeasible_row(workload, method, rep)
        except (ProfileValidationError, SimulationFailure):
            if not faulty:
                raise
            # An injected fault broke this cell beyond repair; record
            # it as N/A so the rest of the grid survives.
            obs.log_event(
                "resilience.grid_cell_failed",
                level="warning",
                workload=workload.name,
                method=method,
                repetition=rep,
            )
            row = _infeasible_row(workload, method, rep)
        else:
            result = evaluate_plan(plan, rep_truth())
            row = ResultRow(
                suite=workload.suite,
                workload=workload.name,
                method=method,
                repetition=rep,
                error_percent=result.error_percent,
                speedup=result.speedup,
                num_samples=plan.num_samples,
                num_clusters=plan.num_clusters,
            )
        yield method, row


def run_workload(
    workload: Workload,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[Iterable[str]] = None,
    ground_truth: Optional[Callable[[ProfileStore, int], np.ndarray]] = None,
    checkpoint: Optional[Union[str, GridCheckpoint]] = None,
    jobs: Optional[int] = 1,
    profile_cache=None,
    policy=None,
) -> List[ResultRow]:
    """Evaluate methods on one workload across repetitions.

    ``ground_truth`` optionally overrides what the plans are scored
    against (the DSE experiments score against a *different* hardware's
    times than the plans were built from); it receives the profile store
    and the repetition seed and returns per-invocation times.  By default
    plans are scored against the profiled execution times themselves, the
    paper's Table 3 methodology (the *clean* profile — injected faults
    corrupt what the samplers see, never the truth).

    ``checkpoint`` persists each completed (method, repetition) cell;
    cells already present are replayed from the file instead of being
    recomputed, making a killed grid resumable.

    ``jobs`` fans repetitions across worker processes (``1``/``None`` =
    sequential, ``0`` = all cores); results are bit-identical to
    ``jobs=1`` because every
    cell's randomness derives from :func:`repetition_seed` alone.  With
    ``jobs != 1``, ``ground_truth`` must be picklable (a module-level
    function).  ``profile_cache`` (a :class:`repro.parallel.ProfileCache`)
    reuses collected profiles across runs and processes.  ``policy`` (a
    :class:`repro.parallel.SupervisionPolicy`) tunes worker-death
    supervision for the parallel path; it never affects results.
    """
    if config is None:
        config = ExperimentConfig()
    if jobs is not None and int(jobs) != 1:
        from ..parallel.grid import execute_grid

        return execute_grid(
            [workload],
            config=config,
            methods=methods,
            ground_truth=ground_truth,
            checkpoint=checkpoint,
            profile_cache=profile_cache,
            jobs=jobs,
            policy=policy,
        )
    checkpoint = _as_checkpoint(checkpoint, config)
    method_list = list(methods or METHODS)
    rows: List[ResultRow] = []
    for rep in range(config.repetitions):
        # Replay checkpointed cells; when the whole repetition is stored,
        # its profile is never collected at all.
        stored_rows: Dict[str, ResultRow] = {}
        missing: List[str] = []
        for method in method_list:
            stored = (
                checkpoint.get(workload.suite, workload.name, method, rep)
                if checkpoint is not None
                else None
            )
            if stored is not None:
                stored_rows[method] = ResultRow.from_dict(stored)
                obs.inc("resilience.checkpoint_cells_replayed")
            else:
                missing.append(method)
        computed: Dict[str, ResultRow] = {}
        for method, row in compute_cell_rows(
            workload,
            config,
            missing,
            rep,
            ground_truth=ground_truth,
            profile_cache=profile_cache,
        ):
            # Record the moment each cell lands, so a kill mid-repetition
            # loses at most the in-flight cell.
            computed[method] = row
            if detsan.is_enabled():
                # Sync point: the post-aggregation row — what every
                # downstream table is built from — in its serialized
                # form, so sequential rows compare against parallel
                # rows received by the grid parent.
                detsan.record(
                    f"grid.row|{workload.suite}|{workload.name}"
                    f"|{method}|rep={rep}",
                    row.as_dict(),
                )
            if checkpoint is not None:
                checkpoint.record(
                    workload.suite, workload.name, method, rep, row.as_dict()
                )
        for method in method_list:
            rows.append(
                stored_rows[method] if method in stored_rows else computed[method]
            )
    return rows


def run_suite(
    suite: str,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[Iterable[str]] = None,
    workload_names: Optional[Iterable[str]] = None,
    ground_truth: Optional[Callable[[ProfileStore, int], np.ndarray]] = None,
    checkpoint: Optional[Union[str, GridCheckpoint]] = None,
    jobs: Optional[int] = 1,
    profile_cache=None,
    policy=None,
) -> List[ResultRow]:
    """Evaluate methods on every workload of a suite.

    ``ground_truth`` overrides what plans are scored against, exactly as
    in :func:`run_workload` (picklable when ``jobs != 1``);
    ``checkpoint`` (path or :class:`~repro.resilience.GridCheckpoint`)
    makes the grid resumable; ``jobs`` fans (workload, repetition) cells
    across processes with bit-identical results; ``profile_cache`` reuses
    collected profiles — see :func:`run_workload`.
    """
    if config is None:
        config = ExperimentConfig()
    workloads = load_suite(suite, scale=config.workload_scale, seed=config.base_seed)
    if workload_names is not None:
        wanted = set(workload_names)
        workloads = [w for w in workloads if w.name in wanted]
    if jobs is not None and int(jobs) != 1:
        from ..parallel.grid import execute_grid

        return execute_grid(
            workloads,
            config=config,
            methods=methods,
            ground_truth=ground_truth,
            checkpoint=checkpoint,
            profile_cache=profile_cache,
            jobs=jobs,
            policy=policy,
        )
    checkpoint = _as_checkpoint(checkpoint, config)
    rows: List[ResultRow] = []
    for workload in workloads:
        rows.extend(
            run_workload(
                workload,
                config=config,
                methods=methods,
                ground_truth=ground_truth,
                checkpoint=checkpoint,
                profile_cache=profile_cache,
            )
        )
    return rows
