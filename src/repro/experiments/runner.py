"""Shared experiment orchestration.

Runs (method x workload x repetition) grids, producing flat result rows
that the per-table/per-figure experiment modules aggregate.  Encodes the
paper's methodology choices:

* every experiment repeats ``repetitions`` times (paper: 10) with varied
  hardware-noise and sampler seeds, then averages — harmonic mean for
  speedup, arithmetic mean for error;
* PKA and Sieve are hand-tuned to random (instead of first-chronological)
  selection on the workloads the paper lists (``gaussian``, ``heartwall``,
  ``ssdrn34-infer``, ``unet-infer/train``), and Sieve's KDE clustering is
  disabled on CASIO;
* uniform random sampling uses 10% on Rodinia and 0.1% on CASIO and
  HuggingFace;
* methods whose profiling is infeasible at a workload's scale (PKA, Sieve
  and Photon on HuggingFace) are reported as N/A rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..baselines import (
    PhotonSampler,
    PkaSampler,
    ProfileStore,
    RandomSampler,
    SieveSampler,
    TbpointSampler,
)
from ..core import StemRootSampler, evaluate_plan
from ..core.plan import SamplingPlan
from ..hardware import RTX_2080, GPUConfig
from ..workloads import load_suite
from ..workloads.workload import Workload

__all__ = ["ExperimentConfig", "ResultRow", "METHODS", "run_workload", "run_suite"]

#: Workloads the paper hand-tuned to random sample selection (Sec. 5.1).
HAND_TUNED_WORKLOADS = {
    "gaussian",
    "heartwall",
    "ssdrn34_infer",
    "unet_infer",
    "unet_train",
}

#: Canonical method order used in every table (the paper's Table 3).
METHODS = ["random", "pka", "sieve", "photon", "stem"]

#: Additional methods available on request (e.g. the TBPoint predecessor).
EXTRA_METHODS = ["tbpoint"]

#: Uniform-random sampling fraction per suite (paper Table 3 footnote).
RANDOM_FRACTIONS = {"rodinia": 0.10, "casio": 0.001, "huggingface": 0.001, "synthetic": 0.01}


@dataclass(frozen=True)
class ResultRow:
    """One (method, workload, repetition) evaluation."""

    suite: str
    workload: str
    method: str
    repetition: int
    error_percent: float
    speedup: float
    num_samples: int
    num_clusters: int
    feasible: bool = True

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "workload": self.workload,
            "method": self.method,
            "repetition": self.repetition,
            "error_percent": self.error_percent,
            "speedup": self.speedup,
            "num_samples": self.num_samples,
            "num_clusters": self.num_clusters,
            "feasible": self.feasible,
        }


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments."""

    gpu: GPUConfig = field(default_factory=lambda: RTX_2080)
    repetitions: int = 10
    base_seed: int = 0
    epsilon: float = 0.05
    #: Workload-count scale factor (tests shrink workloads through this).
    workload_scale: float = 1.0

    def sampler_for(self, method: str, workload: Workload):
        """Instantiate a sampling method with the paper's tuning rules.

        Feasibility caps (the kernel counts beyond which PKA/Sieve/Photon
        profiling takes months) are scaled by ``workload_scale`` so a
        reduced workload inherits the feasibility of the full-size
        original it stands in for.
        """
        suite = workload.suite
        tuned = workload.name in HAND_TUNED_WORKLOADS
        select = "random" if tuned else "first"
        scale = self.workload_scale
        if method == "random":
            fraction = RANDOM_FRACTIONS.get(suite, 0.01)
            return RandomSampler(fraction)
        if method == "pka":
            return PkaSampler(
                select=select, max_points_for_sweep=max(1, int(200_000 * scale))
            )
        if method == "sieve":
            return SieveSampler(
                select=select,
                use_kde=(suite == "rodinia"),
                max_kernels=max(1, int(300_000 * scale)),
            )
        if method == "photon":
            return PhotonSampler(max_kernels=max(1, int(500_000 * scale)))
        if method == "tbpoint":
            return TbpointSampler(max_kernels=max(1, int(200_000 * scale)))
        if method == "stem":
            return StemRootSampler(epsilon=self.epsilon)
        raise KeyError(
            f"unknown method {method!r}; available: {METHODS + EXTRA_METHODS}"
        )


def build_plan(sampler, store: ProfileStore, seed: int) -> SamplingPlan:
    """Dispatch to the method's plan builder (STEM consumes the store too)."""
    if hasattr(sampler, "build_plan_from_store"):
        return sampler.build_plan_from_store(store, seed=seed)
    return sampler.build_plan(store, seed=seed)


def run_workload(
    workload: Workload,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[Iterable[str]] = None,
    ground_truth: Optional[Callable[[ProfileStore, int], np.ndarray]] = None,
) -> List[ResultRow]:
    """Evaluate methods on one workload across repetitions.

    ``ground_truth`` optionally overrides what the plans are scored
    against (the DSE experiments score against a *different* hardware's
    times than the plans were built from); it receives the profile store
    and the repetition seed and returns per-invocation times.  By default
    plans are scored against the profiled execution times themselves, the
    paper's Table 3 methodology.
    """
    if config is None:
        config = ExperimentConfig()
    rows: List[ResultRow] = []
    for rep in range(config.repetitions):
        seed = config.base_seed + rep * 1009 + 1
        store = ProfileStore(workload, config.gpu, seed=seed)
        truth = (
            store.execution_times()
            if ground_truth is None
            else ground_truth(store, seed)
        )
        for method in methods or METHODS:
            sampler = config.sampler_for(method, workload)
            try:
                plan = build_plan(sampler, store, seed=seed)
            except RuntimeError:
                # Profiling infeasible at this scale (Table 3/5 "N/A").
                rows.append(
                    ResultRow(
                        suite=workload.suite,
                        workload=workload.name,
                        method=method,
                        repetition=rep,
                        error_percent=float("nan"),
                        speedup=float("nan"),
                        num_samples=0,
                        num_clusters=0,
                        feasible=False,
                    )
                )
                continue
            result = evaluate_plan(plan, truth)
            rows.append(
                ResultRow(
                    suite=workload.suite,
                    workload=workload.name,
                    method=method,
                    repetition=rep,
                    error_percent=result.error_percent,
                    speedup=result.speedup,
                    num_samples=plan.num_samples,
                    num_clusters=plan.num_clusters,
                )
            )
    return rows


def run_suite(
    suite: str,
    config: Optional[ExperimentConfig] = None,
    methods: Optional[Iterable[str]] = None,
    workload_names: Optional[Iterable[str]] = None,
) -> List[ResultRow]:
    """Evaluate methods on every workload of a suite."""
    if config is None:
        config = ExperimentConfig()
    workloads = load_suite(suite, scale=config.workload_scale, seed=config.base_seed)
    if workload_names is not None:
        wanted = set(workload_names)
        workloads = [w for w in workloads if w.name in wanted]
    rows: List[ResultRow] = []
    for workload in workloads:
        rows.extend(run_workload(workload, config=config, methods=methods))
    return rows
