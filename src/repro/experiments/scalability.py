"""Scalability of the sampling pipeline itself (paper Sec. 5.6).

The paper claims STEM's post-processing runs in ``O(N log K)`` to
``O(N log N)`` and scales to millions of kernel calls, unlike Photon's
quadratic BBV comparison.  This experiment measures the *actual*
wall-clock time of profiling + clustering + allocation at increasing
workload sizes and fits a power-law exponent — near-linear means an
exponent close to 1.

Timing comes from :mod:`repro.obs` spans rather than ad-hoc
``perf_counter`` pairs: each phase is wrapped in a span on the active
obs session (or a private tracer when observability is disabled), so
the numbers reported here and the spans in an exported trace are the
same measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core import StemRootSampler
from ..hardware import RTX_2080, GPUConfig, TimingModel
from ..workloads import load_workload

__all__ = ["ScalePoint", "run_scalability", "fit_exponent"]


@dataclass(frozen=True)
class ScalePoint:
    """Pipeline wall time at one workload size."""

    num_invocations: int
    profile_seconds: float
    plan_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.profile_seconds + self.plan_seconds


def run_scalability(
    scales: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4),
    workload_name: str = "gpt2",
    suite: str = "huggingface",
    gpu: Optional[GPUConfig] = None,
    seed: int = 0,
) -> List[ScalePoint]:
    """Time the STEM pipeline at several workload sizes."""
    gpu = gpu or RTX_2080
    timing = TimingModel(gpu)
    session = obs.current()
    tracer = session.tracer if session is not None else obs.Tracer()
    points: List[ScalePoint] = []
    for scale in scales:
        workload = load_workload(suite, workload_name, scale=scale, seed=seed)

        with tracer.span(
            "profile.scalability", invocations=len(workload), scale=scale
        ) as profile_span:
            times = timing.execution_times(workload, seed=seed)

        with tracer.span(
            "sampler.scalability", invocations=len(workload), scale=scale
        ) as plan_span:
            StemRootSampler().build_plan(workload, times, seed=seed)

        points.append(
            ScalePoint(
                num_invocations=len(workload),
                profile_seconds=profile_span.dur_us / 1e6,
                plan_seconds=plan_span.dur_us / 1e6,
            )
        )
    return points


def fit_exponent(points: List[ScalePoint]) -> Tuple[float, float]:
    """Least-squares power-law fit ``time ~ N^p``.

    Returns ``(exponent, r_squared)``.  Near-linear scaling means an
    exponent around 1; Photon-style quadratic behaviour would show ~2.
    """
    if len(points) < 2:
        raise ValueError("need at least two scale points")
    log_n = np.log([p.num_invocations for p in points])
    log_t = np.log([max(p.total_seconds, 1e-9) for p in points])
    slope, intercept = np.polyfit(log_n, log_t, 1)
    predicted = slope * log_n + intercept
    ss_res = float(((log_t - predicted) ** 2).sum())
    ss_tot = float(((log_t - log_t.mean()) ** 2).sum()) or 1e-12
    return float(slope), 1.0 - ss_res / ss_tot
