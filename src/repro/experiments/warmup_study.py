"""Cache-warmup sensitivity study (paper Sec. 6.2).

The paper quantifies the impact of imperfect inter-kernel cache warmup
with an extreme-case experiment (flushing L2 between kernels) and finds
minimal accuracy degradation — error moved by only 0.70% on Rodinia and
0.07% on CASIO for STEM — because most reuse happens *within* kernels.

This experiment runs the analogous comparison on the cycle-level
simulator: the same sampling plans are scored against ground truths
produced under different warmup assumptions (cold caches, proportional
residual warmup, a short warmup kernel), and the per-strategy sampling
errors are compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines import ProfileStore
from ..core import StemRootSampler, evaluate_plan
from ..hardware import RTX_2080, GPUConfig
from ..sim import GpuSimulator, ProportionalWarmup, WarmupKernel
from ..workloads import load_workload

__all__ = ["WarmupStudyRow", "run_warmup_study", "DEFAULT_STRATEGIES"]

DEFAULT_STRATEGIES = (
    ("cold", None),
    ("proportional", ProportionalWarmup(0.5)),
    ("warmup-kernel", WarmupKernel(0.25)),
)


@dataclass(frozen=True)
class WarmupStudyRow:
    """Sampling error under one warmup assumption."""

    workload: str
    strategy: str
    error_percent: float
    total_cycles: float


def run_warmup_study(
    workload_names: Optional[List[str]] = None,
    gpu: Optional[GPUConfig] = None,
    epsilon: float = 0.05,
    repetitions: int = 2,
    max_invocations: int = 80,
    seed: int = 0,
) -> List[WarmupStudyRow]:
    """Score STEM plans against ground truths per warmup strategy."""
    gpu = gpu or RTX_2080
    rows: List[WarmupStudyRow] = []
    for name in workload_names or ["hotspot", "bfs", "heartwall"]:
        workload = load_workload("rodinia", name, scale=0.1, seed=seed)
        if len(workload) > max_invocations:
            picks = np.linspace(0, len(workload) - 1, max_invocations)
            workload = workload.subset(np.unique(picks.astype(np.int64)), name=name)

        truths: Dict[str, np.ndarray] = {}
        for label, strategy in DEFAULT_STRATEGIES:
            simulator = GpuSimulator(gpu, warmup=strategy)
            truths[label] = simulator.cycle_counts(workload, seed=seed)

        errors: Dict[str, List[float]] = {label: [] for label, _ in DEFAULT_STRATEGIES}
        for rep in range(repetitions):
            rep_seed = seed + rep * 1009 + 1
            store = ProfileStore(workload, gpu, seed=rep_seed)
            plan = StemRootSampler(epsilon=epsilon).build_plan_from_store(
                store, seed=rep_seed
            )
            for label, _ in DEFAULT_STRATEGIES:
                errors[label].append(
                    evaluate_plan(plan, truths[label]).error_percent
                )
        for label, _ in DEFAULT_STRATEGIES:
            rows.append(
                WarmupStudyRow(
                    workload=name,
                    strategy=label,
                    error_percent=float(np.mean(errors[label])),
                    total_cycles=float(truths[label].sum()),
                )
            )
    return rows
