"""Limitations of prior kernel signatures (Figure 10).

Reproduces the paper's DLRM case study: take the kernels that PKA and
Photon each consider "identical" (one PKA k-means cluster; one Photon BBV
representative group), and show that their *execution times* still span a
wide range — the runtime diversity a single proxy sample cannot carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines import PhotonSampler, PkaSampler, ProfileStore
from ..hardware import RTX_2080, GPUConfig
from ..workloads import load_workload

__all__ = ["IdenticalGroup", "run_identical_kernels"]


@dataclass(frozen=True)
class IdenticalGroup:
    """One "identical according to method X" kernel group's time spread."""

    method: str
    label: str
    size: int
    min_time_us: float
    max_time_us: float
    cov: float
    times: np.ndarray

    @property
    def spread_factor(self) -> float:
        """max/min execution-time ratio within the group."""
        if self.min_time_us <= 0:
            return float("inf")
        return self.max_time_us / self.min_time_us


def _largest_groups(
    method: str,
    clusters,
    times: np.ndarray,
    top: int,
) -> List[IdenticalGroup]:
    """Summarize the largest clusters of a plan by member time spread.

    For spread we need each cluster's *members*, which plans do not carry
    — so the experiment re-derives membership from the plan labels where
    possible; here we instead use the sampler's clusters directly.
    """
    groups: List[IdenticalGroup] = []
    for label, member_indices in clusters:
        member_times = times[member_indices]
        if len(member_times) < 2:
            continue
        groups.append(
            IdenticalGroup(
                method=method,
                label=label,
                size=len(member_indices),
                min_time_us=float(member_times.min()),
                max_time_us=float(member_times.max()),
                cov=float(member_times.std() / member_times.mean()),
                times=member_times,
            )
        )
    # Rank by total-time share: the groups that matter for sampling error
    # are the ones carrying the most workload time (Figure 10 shows those).
    groups.sort(key=lambda g: float(g.times.sum()), reverse=True)
    return groups[:top]


def run_identical_kernels(
    workload_name: str = "dlrm",
    suite: str = "casio",
    gpu: Optional[GPUConfig] = None,
    seed: int = 0,
    top: int = 3,
    workload_scale: float = 1.0,
) -> Dict[str, List[IdenticalGroup]]:
    """Time spreads of the groups PKA / Photon treat as one kernel."""
    workload = load_workload(suite, workload_name, scale=workload_scale, seed=seed)
    store = ProfileStore(workload, gpu or RTX_2080, seed=seed)
    times = store.execution_times()

    # PKA: recover k-means membership by re-running its clustering.
    pka = PkaSampler()
    rng = np.random.default_rng(seed)
    features = pka.normalize(store.pka_features())
    k = pka.choose_k(features, rng)
    from ..core.clustering import kmeans

    result = kmeans(features, k, rng=rng, n_init=3)
    pka_clusters = [
        (f"cluster {j}", members)
        for j, members in enumerate(result.cluster_indices())
        if len(members)
    ]

    # Photon: group = the launches matched onto one BBV representative.
    photon = PhotonSampler()
    plan = photon.build_plan(store, seed=seed)
    table = store.bbv_table()
    photon_clusters = []
    for sid, (start, stop) in enumerate(table.spec_slices):
        group_indices = np.flatnonzero(workload.spec_ids == sid)
        if len(group_indices) == 0:
            continue
        vectors = table.vectors[group_indices, start:stop].astype(np.float64)
        assignment = photon._match_spec_group(vectors, group_indices)
        name = workload.specs[sid].name
        for rep_pos, member_positions in assignment.items():
            photon_clusters.append(
                (f"{name}/rep{rep_pos}", group_indices[np.asarray(member_positions)])
            )

    _ = plan  # built to mirror the method's real flow; membership reused above
    return {
        "pka": _largest_groups("pka", pka_clusters, times, top),
        "photon": _largest_groups("photon", photon_clusters, times, top),
    }
