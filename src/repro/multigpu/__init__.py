"""Multi-GPU workload sampling on execution traces (paper Sec. 6.2).

The paper's named future-work direction, implemented as its suggested
starting point: Chakra-style execution-trace DAGs, a multi-GPU timeline
simulator, and STEM+ROOT node sampling that reconstructs full-trace
timelines from per-cluster representatives.
"""

from .et import EtNode, ExecutionTrace, OpKind
from .generators import data_parallel_training, pipeline_parallel_inference
from .sampling import EtSamplingResult, EtStemSampler
from .timeline import ClusterConfig, EtSimResult, TimelineSimulator

__all__ = [
    "OpKind",
    "EtNode",
    "ExecutionTrace",
    "data_parallel_training",
    "pipeline_parallel_inference",
    "ClusterConfig",
    "EtSimResult",
    "TimelineSimulator",
    "EtStemSampler",
    "EtSamplingResult",
]
