"""Multi-GPU timeline simulation of execution traces.

A list scheduler over the ET: every operator starts when its dependencies
have finished AND its resource (a GPU's compute queue, or the
interconnect) is free; operators on one resource serialize in dependency
order.  Durations come from a cost model — compute work over device
throughput, communication bytes over link bandwidth plus latency — times
the node's runtime-context factor and a lognormal noise term.

This is the multi-GPU "detailed simulator": the sampling extension avoids
paying its per-node cost for every node by estimating unsampled nodes'
durations from their cluster statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .et import EtNode, ExecutionTrace, OpKind

__all__ = ["ClusterConfig", "EtSimResult", "TimelineSimulator"]


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware parameters of the multi-GPU cluster."""

    #: Compute throughput: work units per microsecond per GPU.
    gpu_throughput: float = 1.0
    #: Interconnect bandwidth: work (bytes-equivalent) units per us.
    link_bandwidth: float = 2.0
    #: Fixed communication latency per transfer, us.
    link_latency_us: float = 5.0
    #: Per-operator launch overhead, us.
    launch_overhead_us: float = 1.0
    #: Lognormal sigma of run-to-run duration noise.
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.gpu_throughput <= 0 or self.link_bandwidth <= 0:
            raise ValueError("throughputs must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass
class EtSimResult:
    """Outcome of one timeline simulation."""

    trace_name: str
    durations: Dict[int, float]
    start_times: Dict[int, float]
    makespan: float
    #: Busy time per resource, for utilization accounting.
    busy_time: Dict[str, float] = field(default_factory=dict)

    def total_device_time(self) -> float:
        return float(sum(self.durations.values()))

    def utilization(self, resource: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_time.get(resource, 0.0) / self.makespan


class TimelineSimulator:
    """Simulates an execution trace on a modeled GPU cluster."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()

    # -- durations -------------------------------------------------------
    def node_duration(
        self, node: EtNode, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Modeled duration (us) of one operator."""
        cfg = self.config
        if node.kind == OpKind.COMPUTE:
            base = node.work / cfg.gpu_throughput
        else:
            base = node.work / cfg.link_bandwidth + cfg.link_latency_us
        duration = cfg.launch_overhead_us + base * node.context_scale
        if rng is not None and cfg.jitter:
            duration *= float(
                np.exp(rng.standard_normal() * cfg.jitter - 0.5 * cfg.jitter**2)
            )
        return duration

    def profile_durations(
        self, trace: ExecutionTrace, seed: int = 0
    ) -> Dict[int, float]:
        """Per-node durations of one run (the ET profiler's output)."""
        rng = np.random.default_rng(seed)
        return {
            node.node_id: self.node_duration(node, rng) for node in trace.nodes()
        }

    # -- scheduling --------------------------------------------------------
    def schedule(
        self, trace: ExecutionTrace, durations: Dict[int, float]
    ) -> EtSimResult:
        """List-schedule the trace under given per-node durations."""
        resource_free: Dict[str, float] = {}
        busy: Dict[str, float] = {}
        start: Dict[int, float] = {}
        finish: Dict[int, float] = {}
        for node_id in trace.topological_order():
            node = trace.node(node_id)
            duration = durations[node_id]
            ready = max(
                (finish[p] for p in trace.predecessors(node_id)), default=0.0
            )
            begin = max(ready, resource_free.get(node.resource, 0.0))
            start[node_id] = begin
            finish[node_id] = begin + duration
            resource_free[node.resource] = finish[node_id]
            busy[node.resource] = busy.get(node.resource, 0.0) + duration
        makespan = max(finish.values(), default=0.0)
        return EtSimResult(
            trace_name=trace.name,
            durations=dict(durations),
            start_times=start,
            makespan=makespan,
            busy_time=busy,
        )

    def simulate(self, trace: ExecutionTrace, seed: int = 0) -> EtSimResult:
        """Full detailed simulation: model every node, then schedule."""
        return self.schedule(trace, self.profile_durations(trace, seed=seed))
