"""STEM-style node sampling on execution traces.

The extension the paper's Sec. 6.2 sketches: treat operator types as
"kernels", cluster each type's node durations with ROOT, size samples
with STEM, and simulate *only the sampled nodes* in detail.  Unsampled
nodes receive their cluster's sample-mean duration, and the full trace's
timeline (makespan, per-resource utilization) is reconstructed by the
cheap list scheduler — which preserves all dependency and contention
structure, so computation–communication overlap is retained.

Two error metrics matter on a DAG:

* ``total_time_error`` — the classic STEM quantity (sum of durations),
  directly covered by the Eq. (5) bound; and
* ``makespan_error`` — end-to-end latency, which the bound does not
  formally cover (makespan is a non-linear max-plus functional of the
  durations) but which stays small in practice because per-cluster means
  are faithful; the evaluation reports both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..core.plan import PlanCluster, SamplingPlan
from ..core.root import RootConfig, root_split
from ..core.stem import DEFAULT_EPSILON, DEFAULT_Z, kkt_sample_sizes
from .et import ExecutionTrace
from .timeline import TimelineSimulator

__all__ = ["EtSamplingResult", "EtStemSampler"]


@dataclass(frozen=True)
class EtSamplingResult:
    """Sampled-vs-full comparison on one execution trace."""

    trace_name: str
    num_nodes: int
    num_sampled: int
    full_makespan: float
    estimated_makespan: float
    full_total_time: float
    estimated_total_time: float

    @property
    def makespan_error_percent(self) -> float:
        return abs(self.estimated_makespan - self.full_makespan) / self.full_makespan * 100

    @property
    def total_time_error_percent(self) -> float:
        return (
            abs(self.estimated_total_time - self.full_total_time)
            / self.full_total_time
            * 100
        )

    @property
    def detail_fraction(self) -> float:
        """Share of nodes that needed detailed simulation."""
        return self.num_sampled / self.num_nodes


class EtStemSampler:
    """STEM+ROOT over execution-trace nodes."""

    method = "stem-et"

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        z: float = DEFAULT_Z,
        min_cluster_size: int = 8,
    ):
        self.epsilon = epsilon
        self.z = z
        self.root_config = RootConfig(
            epsilon=epsilon, z=z, min_cluster_size=min_cluster_size
        )
        #: label -> member node ids of the most recent plan.
        self.last_membership: Dict[str, np.ndarray] = {}

    def build_plan(
        self,
        trace: ExecutionTrace,
        durations: Dict[int, float],
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> SamplingPlan:
        """Cluster per operator group, allocate jointly, sample nodes."""
        if rng is None:
            rng = np.random.default_rng(seed)
        labeled = []
        with obs.span("multigpu.cluster", trace=trace.name, nodes=len(trace)):
            for group, node_ids in trace.groups().items():
                ids = np.asarray(node_ids, dtype=np.int64)
                times = np.array([durations[int(i)] for i in ids], dtype=np.float64)
                for leaf in root_split(times, ids, config=self.root_config, rng=rng):
                    labeled.append((group, leaf))

        with obs.span("multigpu.allocate", clusters=len(labeled)):
            sizes = kkt_sample_sizes(
                [leaf.stats for _, leaf in labeled], epsilon=self.epsilon, z=self.z
            )
        clusters: List[PlanCluster] = []
        counter: Dict[str, int] = {}
        self.last_membership = {}
        for (group, leaf), m in zip(labeled, sizes):
            peak = counter.get(group, 0)
            counter[group] = peak + 1
            self.last_membership[f"{group}#{peak}"] = leaf.indices
            m = int(min(m, leaf.size))
            if m < leaf.size:
                chosen = rng.choice(leaf.indices, size=m, replace=True)
            else:
                chosen = leaf.indices
            clusters.append(
                PlanCluster(
                    label=f"{group}#{peak}",
                    member_count=leaf.size,
                    sampled_indices=np.asarray(chosen, dtype=np.int64),
                )
            )
        plan = SamplingPlan(
            method=self.method,
            workload_name=trace.name,
            clusters=clusters,
            metadata={"epsilon": self.epsilon, "z": self.z},
        )
        obs.inc("multigpu.plans_built")
        obs.inc("multigpu.nodes_sampled", len(plan.unique_indices()))
        return plan

    def estimate_durations(
        self,
        plan: SamplingPlan,
        detailed: Dict[int, float],
        trace: ExecutionTrace,
        membership: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[int, float]:
        """Annotated durations: detailed for samples, cluster means else.

        ``detailed`` must contain every sampled node's simulated duration;
        any node it already covers keeps its detailed value.  ``membership``
        maps cluster labels to member node ids (defaults to the membership
        recorded by the most recent :meth:`build_plan`).
        """
        if membership is None:
            membership = self.last_membership
        estimated: Dict[int, float] = {}
        for cluster in plan.clusters:
            members = membership.get(cluster.label)
            if members is None:
                raise KeyError(f"no membership for cluster {cluster.label!r}")
            sample_values = [detailed[int(i)] for i in cluster.sampled_indices]
            mean = float(np.mean(sample_values))
            for node_id in members:
                node_id = int(node_id)
                estimated[node_id] = detailed.get(node_id, mean)
        missing = [n.node_id for n in trace.nodes() if n.node_id not in estimated]
        if missing:
            raise KeyError(f"{len(missing)} nodes not covered by the plan")
        return estimated

    def evaluate(
        self,
        trace: ExecutionTrace,
        simulator: TimelineSimulator,
        seed: int = 0,
        profile_seed: Optional[int] = None,
    ) -> EtSamplingResult:
        """Full sampled-vs-detailed comparison on one trace."""
        with obs.span("multigpu.profile", trace=trace.name):
            profile = simulator.profile_durations(
                trace, seed=profile_seed if profile_seed is not None else seed + 1
            )
        plan = self.build_plan(trace, profile, seed=seed)

        # "Detailed simulation" of sampled nodes only: their true durations
        # from the evaluation run.
        truth = simulator.profile_durations(trace, seed=seed)
        sampled_ids = {int(i) for i in plan.unique_indices()}
        detailed = {i: truth[i] for i in sampled_ids}
        estimated = self.estimate_durations(plan, detailed, trace)

        with obs.span("multigpu.schedule", trace=trace.name):
            full = simulator.schedule(trace, truth)
            sampled = simulator.schedule(trace, estimated)
        return EtSamplingResult(
            trace_name=trace.name,
            num_nodes=len(trace),
            num_sampled=len(sampled_ids),
            full_makespan=full.makespan,
            estimated_makespan=sampled.makespan,
            full_total_time=full.total_device_time(),
            estimated_total_time=sampled.total_device_time(),
        )
