"""Chakra-style execution traces (ETs) for multi-GPU workloads.

The paper's Sec. 6.2 names extending STEM to multi-GPU workloads as
future work, suggesting Chakra execution traces — DAGs of compute and
communication operators with explicit dependencies — as the substrate,
with "node and edge sampling on such DAG-style ETs" as the starting
point.  This package implements that starting point:

* :class:`EtNode` — one operator: a compute kernel on one GPU, or a
  collective/point-to-point transfer occupying the interconnect;
* :class:`ExecutionTrace` — the dependency DAG (backed by networkx),
  with grouping by operator type for kernel-style clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import networkx as nx

__all__ = ["OpKind", "EtNode", "ExecutionTrace"]


class OpKind:
    """Operator categories of an execution trace."""

    COMPUTE = "compute"
    ALLREDUCE = "allreduce"
    P2P = "p2p"

    ALL = (COMPUTE, ALLREDUCE, P2P)


@dataclass(frozen=True)
class EtNode:
    """One operator in an execution trace.

    ``group`` is the operator-type label used for clustering (the
    multi-GPU analogue of a kernel name, e.g. ``"fwd_gemm_layer"``);
    ``resource`` is what the operator occupies while running (``"gpu3"``
    for compute, ``"net"`` for communication).  ``work`` is the abstract
    cost driver — FLOPs for compute, bytes for communication — and
    ``context`` carries runtime heterogeneity exactly like
    :class:`~repro.workloads.kernel.LaunchContext` does for kernels.
    """

    node_id: int
    group: str
    kind: str
    resource: str
    work: float
    #: Runtime-context multiplier on the operator's duration (stragglers,
    #: congestion, input-dependent compute).
    context_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OpKind.ALL:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.work <= 0:
            raise ValueError("work must be positive")
        if self.context_scale <= 0:
            raise ValueError("context_scale must be positive")


class ExecutionTrace:
    """A DAG of :class:`EtNode` operators."""

    def __init__(self, name: str = "et"):
        self.name = name
        self._graph = nx.DiGraph()
        self._nodes: Dict[int, EtNode] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, node: EtNode) -> EtNode:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        return node

    def add_dependency(self, parent_id: int, child_id: int) -> None:
        """child cannot start before parent finishes."""
        if parent_id not in self._nodes or child_id not in self._nodes:
            raise KeyError("both endpoints must be added before an edge")
        self._graph.add_edge(parent_id, child_id)

    def validate(self) -> None:
        """Raise if the trace is not a DAG."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"execution trace {self.name!r} has a cycle")

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> EtNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[EtNode]:
        return iter(self._nodes.values())

    def predecessors(self, node_id: int) -> List[int]:
        return list(self._graph.predecessors(node_id))

    def successors(self, node_id: int) -> List[int]:
        return list(self._graph.successors(node_id))

    def topological_order(self) -> List[int]:
        return list(nx.topological_sort(self._graph))

    def groups(self) -> Dict[str, List[int]]:
        """Node ids grouped by operator-type label, id-ordered."""
        grouped: Dict[str, List[int]] = {}
        for node in self._nodes.values():
            grouped.setdefault(node.group, []).append(node.node_id)
        for ids in grouped.values():
            ids.sort()
        return grouped

    def resources(self) -> List[str]:
        return sorted({node.resource for node in self._nodes.values()})

    def critical_path_length(self, durations: Dict[int, float]) -> float:
        """Longest path under given per-node durations (dependency-only;
        the timeline simulator additionally models resource contention)."""
        finish: Dict[int, float] = {}
        for node_id in self.topological_order():
            ready = max(
                (finish[p] for p in self.predecessors(node_id)), default=0.0
            )
            finish[node_id] = ready + durations[node_id]
        return max(finish.values(), default=0.0)

    def describe(self) -> Dict[str, float]:
        kinds: Dict[str, int] = {}
        for node in self._nodes.values():
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        return {
            "num_nodes": float(len(self)),
            "num_edges": float(self._graph.number_of_edges()),
            "num_groups": float(len(self.groups())),
            "num_resources": float(len(self.resources())),
            **{f"num_{k}": float(v) for k, v in kinds.items()},
        }
