"""Synthetic multi-GPU execution-trace generators.

Two canonical parallel-training structures:

* :func:`data_parallel_training` — every GPU runs the full model on its
  own micro-batch; gradients are all-reduced per layer each step, with
  backward compute overlapping communication of earlier layers;
* :func:`pipeline_parallel_inference` — layers are partitioned across
  GPUs and activations flow stage-to-stage via point-to-point sends.

Runtime heterogeneity mirrors the single-GPU workload model: per-node
``context_scale`` factors model stragglers (slow input shards), variable
sequence lengths, and network congestion — heterogeneity that node-level
sampling has to capture.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .et import EtNode, ExecutionTrace, OpKind

__all__ = ["data_parallel_training", "pipeline_parallel_inference"]


def data_parallel_training(
    num_gpus: int = 4,
    layers: int = 8,
    steps: int = 40,
    seed: int = 0,
    straggler_probability: float = 0.08,
) -> ExecutionTrace:
    """Data-parallel training: fwd+bwd per GPU, per-layer allreduce.

    Dependencies per step: forward layers chain per GPU; backward layers
    chain in reverse; each layer's allreduce waits for that layer's
    backward on ALL GPUs; the next step's forward waits on the previous
    step's allreduces (optimizer update folded in).
    """
    if num_gpus < 2:
        raise ValueError("data-parallel training needs at least 2 GPUs")
    rng = np.random.default_rng(seed)
    et = ExecutionTrace(name=f"dp{num_gpus}x{layers}x{steps}")
    next_id = 0

    def fresh_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id - 1

    prev_step_allreduce = {}
    for step in range(steps):
        fwd = {}
        bwd = {}
        for gpu in range(num_gpus):
            # Straggler shards slow a whole GPU's step.
            straggle = 1.0 + (
                rng.uniform(0.4, 1.2) if rng.random() < straggler_probability else 0.0
            )
            prev = None
            for layer in range(layers):
                node = et.add_node(
                    EtNode(
                        node_id=fresh_id(),
                        group=f"fwd_layer{layer}",
                        kind=OpKind.COMPUTE,
                        resource=f"gpu{gpu}",
                        work=1.0 + 0.5 * (layer % 3),
                        context_scale=straggle * float(rng.lognormal(0.0, 0.05)),
                    )
                )
                fwd[(gpu, layer)] = node.node_id
                if prev is not None:
                    et.add_dependency(prev, node.node_id)
                elif step > 0:
                    for ar in prev_step_allreduce.values():
                        et.add_dependency(ar, node.node_id)
                prev = node.node_id
            for layer in reversed(range(layers)):
                node = et.add_node(
                    EtNode(
                        node_id=fresh_id(),
                        group=f"bwd_layer{layer}",
                        kind=OpKind.COMPUTE,
                        resource=f"gpu{gpu}",
                        work=2.0 + 1.0 * (layer % 3),
                        context_scale=straggle * float(rng.lognormal(0.0, 0.05)),
                    )
                )
                bwd[(gpu, layer)] = node.node_id
                et.add_dependency(prev, node.node_id)
                prev = node.node_id

        step_allreduce = {}
        for layer in range(layers):
            congestion = float(rng.lognormal(0.0, 0.15))
            node = et.add_node(
                EtNode(
                    node_id=fresh_id(),
                    group=f"allreduce_layer{layer}",
                    kind=OpKind.ALLREDUCE,
                    resource="net",
                    work=4.0 * (1.0 + 0.5 * (layer % 2)) * num_gpus,
                    context_scale=congestion,
                )
            )
            step_allreduce[layer] = node.node_id
            for gpu in range(num_gpus):
                et.add_dependency(bwd[(gpu, layer)], node.node_id)
        prev_step_allreduce = step_allreduce

    et.validate()
    return et


def pipeline_parallel_inference(
    num_stages: int = 4,
    requests: int = 60,
    seed: int = 0,
    long_request_probability: float = 0.2,
) -> ExecutionTrace:
    """Pipeline-parallel inference: stage compute chained by P2P sends.

    Requests vary in length (long sequences cost more at every stage),
    and stages process requests in order — the pipeline structure makes
    the makespan sensitive to the slowest stage, which sampling must
    represent faithfully.
    """
    if num_stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    rng = np.random.default_rng(seed)
    et = ExecutionTrace(name=f"pp{num_stages}x{requests}")
    next_id = 0

    def fresh_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id - 1

    prev_on_stage = [None] * num_stages
    for _request in range(requests):
        long_request = rng.random() < long_request_probability
        length_scale = rng.uniform(3.0, 5.0) if long_request else rng.uniform(0.8, 1.2)
        carry: Optional[int] = None
        for stage in range(num_stages):
            node = et.add_node(
                EtNode(
                    node_id=fresh_id(),
                    group=f"stage{stage}_compute",
                    kind=OpKind.COMPUTE,
                    resource=f"gpu{stage}",
                    work=1.0 + 0.3 * stage,
                    context_scale=length_scale * float(rng.lognormal(0.0, 0.08)),
                )
            )
            if carry is not None:
                et.add_dependency(carry, node.node_id)
            if prev_on_stage[stage] is not None:
                et.add_dependency(prev_on_stage[stage], node.node_id)
            prev_on_stage[stage] = node.node_id
            carry = node.node_id
            if stage < num_stages - 1:
                send = et.add_node(
                    EtNode(
                        node_id=fresh_id(),
                        group=f"p2p_stage{stage}to{stage + 1}",
                        kind=OpKind.P2P,
                        resource="net",
                        work=0.5 * length_scale,
                        context_scale=float(rng.lognormal(0.0, 0.1)),
                    )
                )
                et.add_dependency(carry, send.node_id)
                carry = send.node_id

    et.validate()
    return et
