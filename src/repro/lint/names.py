"""Import-aware dotted-name resolution for lint passes.

AST passes that ban ``np.random.rand`` or ``time.time`` must see through
import aliasing (``import numpy as np``, ``from time import time``)
without ever flagging same-named locals (``rng.random()`` or a variable
called ``random``).  :class:`ImportMap` records what each module-level
name is bound to by import statements; :meth:`resolve_call` only
resolves a dotted expression whose *first* segment is such a binding, so
anything rooted in a local variable, parameter or attribute chain stays
unresolved (returns ``None``) and is never matched against ban lists.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["ImportMap", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


class ImportMap:
    """Module-level bindings introduced by import statements."""

    def __init__(self, tree: ast.Module):
        #: local name -> absolute dotted target (e.g. ``np`` -> ``numpy``,
        #: ``default_rng`` -> ``numpy.random.default_rng``).
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        self.bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative imports never resolve to stdlib/numpy
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{module}.{alias.name}"

    def resolve(self, dotted: str) -> Optional[str]:
        """Absolute dotted path if the first segment is import-bound."""
        first, _, rest = dotted.partition(".")
        target = self.bindings.get(first)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Absolute dotted path of a call's callee, when import-rooted."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        return self.resolve(dotted)
