"""``--changed`` support: which Python files differ from a git ref.

``repro lint --changed`` and ``repro analyze --changed`` restrict
*reporting* to files that differ from a base ref (default
``origin/main``, configurable via ``changed-ref`` in
``[tool.repro.lint]``).  The analysis tier still loads the whole program
graph — interprocedural facts do not localize — but only findings in
changed files are reported, which is what a PR author wants on a large
tree.

Implemented with a ``git diff --name-only`` subprocess against the
working tree (so uncommitted edits count) plus ``git ls-files
--others`` for untracked files.  Any git failure — not a repository,
unknown ref — is a :class:`~repro.lint.config.LintUsageError`, mapped
to exit code 2, never silently "no changes".
"""

from __future__ import annotations

import os
import subprocess
from typing import List

from .config import LintUsageError

__all__ = ["changed_python_files", "under_config_roots"]


def under_config_roots(config, rels: List[str]) -> List[str]:
    """Keep only files inside the configured lint roots.

    ``--changed`` narrows a run; it must never widen one into trees the
    config deliberately leaves unchecked (test fixtures full of
    intentional violations, vendored code).
    """
    roots = [p.replace(os.sep, "/").rstrip("/") for p in config.paths]
    out = []
    for rel in rels:
        for root in roots:
            if root in (".", "") or rel == root or rel.startswith(root + "/"):
                out.append(rel)
                break
    return out


def _git(root: str, *argv: str) -> List[str]:
    try:
        proc = subprocess.run(
            ["git", *argv],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        raise LintUsageError(f"--changed: cannot run git: {err}") from err
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise LintUsageError(
            "--changed: git "
            + " ".join(argv)
            + " failed: "
            + (detail[0] if detail else f"exit {proc.returncode}")
        )
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_python_files(root: str, ref: str) -> List[str]:
    """Root-relative POSIX paths of ``.py`` files differing from ``ref``.

    Includes files modified in the working tree or in commits since the
    merge base with ``ref``, plus untracked ``.py`` files.  Deleted
    files are excluded (nothing to lint).  Sorted and deduplicated.
    """
    # Merge-base semantics so a stale base branch doesn't blame
    # unrelated upstream edits on this change.  Resolved explicitly:
    # ``git diff ref...`` compares against HEAD, not the working tree,
    # and uncommitted edits must count.
    base = _git(root, "merge-base", ref, "HEAD")
    diff = _git(root, "diff", "--name-only", base[0] if base else ref, "--")
    untracked = _git(
        root, "ls-files", "--others", "--exclude-standard", "--", "*.py"
    )
    out: List[str] = []
    seen = set()
    for rel in diff + untracked:
        if not rel.endswith(".py") or rel in seen:
            continue
        seen.add(rel)
        if os.path.isfile(os.path.join(root, rel)):
            out.append(rel.replace(os.sep, "/"))
    return sorted(out)
