"""``repro lint`` — AST-based invariant linter for this repository.

The pipeline's correctness claims rest on invariants no type checker or
generic linter enforces: bit-identical determinism (every RNG explicitly
seeded, no wall-clock reads in result paths), cache-key completeness
(every field of a keyed dataclass covered by its fingerprint function),
typed error handling, and pool safety (picklable task callables).  This
package machine-checks them:

* :mod:`~repro.lint.engine` parses each file once and dispatches to the
  registered passes (:mod:`~repro.lint.passes`);
* findings are filtered by inline ``# repro-lint: disable=<rule>``
  suppressions and the committed baseline
  (:mod:`~repro.lint.baseline`);
* configuration lives in ``[tool.repro.lint]`` in pyproject.toml
  (:mod:`~repro.lint.config`);
* ``repro lint`` (:mod:`~repro.lint.cli`) reports as text or JSON with
  exit codes 0 (clean) / 1 (findings) / 2 (internal error).

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from .baseline import load_baseline, match_baseline, write_baseline
from .config import CacheKeySpec, LintConfig, LintUsageError, load_config
from .engine import LintResult, SourceModule, run_lint
from .findings import Finding
from .passes import LintPass, load_builtin_passes, register, registered_passes
from .reporters import render_json, render_text, report_dict

__all__ = [
    "CacheKeySpec",
    "Finding",
    "LintConfig",
    "LintPass",
    "LintResult",
    "LintUsageError",
    "SourceModule",
    "load_baseline",
    "load_builtin_passes",
    "load_config",
    "match_baseline",
    "register",
    "registered_passes",
    "render_json",
    "render_text",
    "report_dict",
    "run_lint",
    "write_baseline",
]
