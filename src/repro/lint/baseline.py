"""Committed baseline of grandfathered findings.

The baseline lets ``repro lint`` gate *new* violations in CI while
pre-existing, explicitly-acknowledged ones are tracked instead of
fixed-or-reverted in one PR.  Entries match findings by identity —
(rule, path, message) — deliberately ignoring line numbers so unrelated
edits to a file do not un-baseline its grandfathered findings.  Matching
is multiset-aware: two identical findings need two baseline entries, so
a *new* duplicate of a grandfathered violation still fails.

``repro lint --update-baseline`` rewrites the file from the current
(unsuppressed) findings; review the diff like any other code change.
When the update run linted only explicit path operands, entries for
files *outside* those paths are carried over unchanged — a partial run
must never drop another file's grandfathered findings.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from .config import LintUsageError
from .findings import Finding

__all__ = ["load_baseline", "match_baseline", "write_baseline"]

BASELINE_VERSION = 1


def _load_entries(path: str) -> List[Dict[str, str]]:
    """Raw baseline entries (empty if the file is absent)."""
    if not os.path.isfile(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise LintUsageError(f"unreadable baseline {path}: {err}") from err
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise LintUsageError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    return [
        {
            "rule": str(entry["rule"]),
            "path": str(entry["path"]),
            "message": str(entry["message"]),
        }
        for entry in payload.get("findings", [])
    ]


def load_baseline(path: str) -> Counter:
    """Identity multiset of the baseline file (empty if absent)."""
    identities: Counter = Counter()
    for entry in _load_entries(path):
        identities[(entry["rule"], entry["path"], entry["message"])] += 1
    return identities


def match_baseline(
    findings: List[Finding], path: str
) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined-count) against the baseline."""
    remaining = load_baseline(path)
    if not remaining:
        return findings, 0
    fresh: List[Finding] = []
    baselined = 0
    for finding in findings:
        identity = finding.identity()
        if remaining.get(identity, 0) > 0:
            remaining[identity] -= 1
            baselined += 1
        else:
            fresh.append(finding)
    return fresh, baselined


def write_baseline(
    findings: List[Finding],
    path: str,
    linted_paths: Optional[Sequence[str]] = None,
) -> int:
    """Persist the given findings as the new baseline; returns the count.

    With ``linted_paths`` (the root-relative files a *partial* run
    actually looked at), only entries for those files are replaced;
    existing entries for every other file are preserved.  Without it,
    the whole baseline is rewritten from ``findings``.
    """
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message}
        for f in sorted(findings)
    ]
    if linted_paths is not None:
        linted = set(linted_paths)
        entries.extend(
            e for e in _load_entries(path) if e["path"] not in linted
        )
    entries.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)
