"""Text and JSON rendering of a lint run.

The JSON report is the machine interface (CI gates on it and archives it
as an artifact), so its top-level schema is versioned and append-only:
``version``, ``clean``, ``counts`` and ``findings`` are stable; new keys
may be added but never removed or retyped.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from .engine import LintResult

__all__ = ["REPORT_VERSION", "render_json", "render_text", "report_dict"]

REPORT_VERSION = 1


def report_dict(result: LintResult) -> Dict[str, object]:
    by_rule = Counter(f.rule for f in result.findings)
    return {
        "version": REPORT_VERSION,
        "clean": result.clean,
        "counts": {
            "files": result.files_checked,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [f.to_dict() for f in result.findings],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_dict(result), indent=2, sort_keys=True) + "\n"


def render_text(result: LintResult) -> str:
    lines = [f.format_text() for f in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
        f" ({result.suppressed} suppressed, {result.baselined} baselined)"
    )
    if result.clean:
        summary = (
            f"clean: {result.files_checked} file(s), 0 findings"
            f" ({result.suppressed} suppressed, {result.baselined} baselined)"
        )
    lines.append(summary)
    return "\n".join(lines) + "\n"
