"""Lint configuration, read from ``[tool.repro.lint]`` in pyproject.toml.

The config answers four questions: which files to lint (``paths`` /
``exclude``), where grandfathered findings live (``baseline``), which
rules are off repo-wide (``disable``), and the per-rule options —
including the ``[[tool.repro.lint.cache-key]]`` array that declares
which dataclasses are cache-keyed and by what key function (see
:mod:`repro.lint.passes.cache_keys`).

The project *root* is the directory containing the pyproject.toml the
config was read from; every relative path in the config (and every
finding path) is resolved against it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ImportError:
        tomllib = None

__all__ = ["CacheKeySpec", "LintConfig", "LintUsageError", "load_config"]

#: Top-level [tool.repro.lint] keys that are not per-rule option tables.
_RESERVED_KEYS = {
    "paths", "exclude", "baseline", "disable", "cache-key",
    "analysis-baseline", "changed-ref",
}


class LintUsageError(Exception):
    """Unusable invocation or config — maps to exit code 2, not a finding."""


@dataclass(frozen=True)
class CacheKeySpec:
    """One keyed dataclass the cache-key-completeness pass must verify.

    ``key`` is either the name of a method of the class (its fingerprint
    or serialization function) or the literal string ``"repr"`` for
    types keyed through ``repr(instance)`` — where completeness means no
    field opts out with ``field(repr=False)``.

    ``exempt`` fields are *reviewed exemptions*: the analysis tier
    (rule ``cache-key-soundness``) requires a non-empty
    ``justification`` explaining why the exempted fields cannot change
    results — an exemption nobody can defend is a stale-cache bug
    waiting to happen.
    """

    path: str
    cls: str
    key: str
    exempt: tuple = ()
    justification: str = ""


@dataclass
class LintConfig:
    """Resolved lint configuration for one project root."""

    root: str
    paths: List[str] = field(default_factory=lambda: ["src"])
    exclude: List[str] = field(default_factory=list)
    baseline: str = "lint-baseline.json"
    #: Baseline of the whole-program analysis tier (``repro analyze``).
    analysis_baseline: str = "analysis-baseline.json"
    #: Default git ref for ``--changed`` (lint/analyze only files that
    #: differ from this ref).
    changed_ref: str = "origin/main"
    disable: List[str] = field(default_factory=list)
    cache_keys: List[CacheKeySpec] = field(default_factory=list)
    #: Per-rule option tables, keyed by rule id.
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def options_for(self, rule: str) -> Dict[str, Any]:
        return self.rule_options.get(rule, {})

    def baseline_path(self) -> str:
        return os.path.join(self.root, self.baseline)

    def analysis_baseline_path(self) -> str:
        return os.path.join(self.root, self.analysis_baseline)


def _find_pyproject(start: str) -> Optional[str]:
    """Walk up from ``start`` to the filesystem root looking for pyproject."""
    current = os.path.abspath(start)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def _parse_cache_key(raw: Dict[str, Any], source: str) -> CacheKeySpec:
    try:
        path = str(raw["path"])
        cls = str(raw["class"])
    except KeyError as missing:
        raise LintUsageError(
            f"{source}: [[tool.repro.lint.cache-key]] entry needs "
            f"'path' and 'class' (missing {missing})"
        ) from None
    return CacheKeySpec(
        path=path,
        cls=cls,
        key=str(raw.get("key", "repr")),
        exempt=tuple(str(name) for name in raw.get("exempt", [])),
        justification=str(raw.get("justification", "")).strip(),
    )


def load_config(
    config_path: Optional[str] = None, cwd: Optional[str] = None
) -> LintConfig:
    """Load lint config from an explicit pyproject path or by discovery.

    Without ``config_path``, the nearest pyproject.toml at or above
    ``cwd`` (default: the process cwd) is used; a project without one —
    or without a ``[tool.repro.lint]`` table — gets the defaults with
    the discovery directory as root.
    """
    if config_path is None:
        config_path = _find_pyproject(cwd or os.getcwd())
        if config_path is None:
            return LintConfig(root=os.path.abspath(cwd or os.getcwd()))
    config_path = os.path.abspath(config_path)
    if not os.path.isfile(config_path):
        raise LintUsageError(f"config file not found: {config_path}")
    if tomllib is None:
        raise LintUsageError(
            "reading pyproject.toml requires a TOML parser: use Python "
            ">= 3.11 (tomllib) or install 'tomli' on older interpreters"
        )
    with open(config_path, "rb") as fh:
        try:
            payload = tomllib.load(fh)
        except tomllib.TOMLDecodeError as err:
            raise LintUsageError(f"{config_path}: invalid TOML: {err}") from err

    table = payload.get("tool", {}).get("repro", {}).get("lint", {})
    if not isinstance(table, dict):
        raise LintUsageError(f"{config_path}: [tool.repro.lint] must be a table")

    root = os.path.dirname(config_path)
    config = LintConfig(root=root)
    if "paths" in table:
        config.paths = [str(p) for p in table["paths"]]
    if "exclude" in table:
        config.exclude = [str(p) for p in table["exclude"]]
    if "baseline" in table:
        config.baseline = str(table["baseline"])
    if "analysis-baseline" in table:
        config.analysis_baseline = str(table["analysis-baseline"])
    if "changed-ref" in table:
        config.changed_ref = str(table["changed-ref"])
    if "disable" in table:
        config.disable = [str(r) for r in table["disable"]]
    for raw in table.get("cache-key", []):
        config.cache_keys.append(_parse_cache_key(raw, config_path))
    for key, value in table.items():
        if key in _RESERVED_KEYS:
            continue
        if isinstance(value, dict):
            config.rule_options[key] = value
        else:
            raise LintUsageError(
                f"{config_path}: unknown [tool.repro.lint] key {key!r} "
                "(per-rule options must be tables)"
            )
    return config
