"""Implementation of the ``repro lint`` subcommand.

Exit codes are part of the contract CI relies on:

* ``0`` — clean (no non-baselined, non-suppressed findings);
* ``1`` — findings;
* ``2`` — internal/usage error (bad path, broken config, crash).
"""

from __future__ import annotations

import sys
from typing import Optional

from .baseline import write_baseline
from .config import LintUsageError, load_config
from .engine import run_lint
from .passes import load_builtin_passes, registered_passes
from .reporters import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint_command"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser) -> None:
    """Attach ``repro lint`` arguments to an argparse subparser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.repro.lint] paths)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)")
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help="pyproject.toml to read [tool.repro.lint] from "
             "(default: nearest pyproject.toml above the cwd)")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="override the configured baseline file")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0 "
             "(with path operands, only entries for the linted files are "
             "replaced; the rest of the baseline is preserved)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to this path")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")


def _list_rules() -> int:
    load_builtin_passes()
    for rule, cls in sorted(registered_passes().items()):
        print(f"{rule:26s} [{cls.severity}] {cls.description}")
    return EXIT_CLEAN


def run_lint_command(args) -> int:
    """Entry point used by ``repro.cli``; returns the process exit code."""
    try:
        return _run(args)
    except LintUsageError as err:
        print(f"repro lint: error: {err}", file=sys.stderr)
        return EXIT_ERROR
    except Exception as err:  # internal error contract: never a traceback
        print(
            f"repro lint: internal error: {type(err).__name__}: {err}",
            file=sys.stderr,
        )
        return EXIT_ERROR


def _run(args) -> int:
    if args.list_rules:
        return _list_rules()
    config = load_config(args.config)
    if args.baseline:
        config.baseline = args.baseline
    rules: Optional[list] = args.rule

    result = run_lint(
        config,
        paths=args.paths or None,
        use_baseline=not (args.no_baseline or args.update_baseline),
        rules=rules,
    )

    if args.update_baseline:
        count = write_baseline(
            result.findings,
            config.baseline_path(),
            # A partial run (explicit path operands) must not drop
            # grandfathered entries for files it never looked at.
            linted_paths=result.linted_paths if args.paths else None,
        )
        print(
            f"baseline updated: {count} finding(s) written to "
            f"{config.baseline_path()}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    report = render_json(result) if args.format == "json" else render_text(result)
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_json(result))
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS
