"""The lint engine: file discovery, parsing, pass dispatch, filtering.

One :func:`run_lint` call walks the configured roots, parses every
Python file once into a shared :class:`SourceModule`, runs every enabled
pass (module-local hooks first, then project-wide hooks), and filters
the raw findings through two mechanisms, in order:

1. **inline suppressions** — ``# repro-lint: disable=<rule>[,<rule>]``
   on the flagged line (or ``disable`` with no ``=`` to suppress every
   rule on that line);
2. **the committed baseline** — grandfathered findings matched by
   (rule, path, message) identity, so pre-existing debt doesn't fail CI
   while any *new* finding still does.

Suppressed and baselined findings are counted, never silently dropped.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .baseline import match_baseline
from .config import LintConfig, LintUsageError
from .findings import Finding
from .names import ImportMap
from .passes import load_builtin_passes
from .passes.base import registered_passes

__all__ = ["LintResult", "SourceModule", "run_lint"]

#: ``# repro-lint: disable=rule-a,rule-b`` (no ``=rules`` = all rules).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\- ]+))?"
)


@dataclass
class SourceModule:
    """One parsed Python file, shared by every pass."""

    path: str  # absolute
    rel: str  # POSIX path relative to the project root
    source: str
    tree: ast.Module
    #: line number -> suppressed rule ids ("*" suppresses every rule).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    _imports: Optional[ImportMap] = field(default=None, repr=False)

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and ("*" in rules or finding.rule in rules)


@dataclass
class LintResult:
    """Outcome of one lint run, pre-rendered counts included."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    #: Raw (pre-suppression, pre-baseline) findings, newest baseline input.
    raw_findings: List[Finding] = field(default_factory=list)
    #: Root-relative POSIX paths of every file this run looked at —
    #: what a partial --update-baseline may rewrite entries for.
    linted_paths: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            table[lineno] = {"*"}
        else:
            table[lineno] = {r.strip() for r in raw.split(",") if r.strip()}
    return table


def _rel_posix(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive on Windows
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def _excluded(rel: str, patterns: Sequence[str]) -> bool:
    return any(
        fnmatch.fnmatch(rel, pat) or fnmatch.fnmatch(os.path.basename(rel), pat)
        for pat in patterns
    )


def discover_files(
    config: LintConfig, paths: Optional[Sequence[str]] = None
) -> List[str]:
    """Absolute paths of every Python file to lint, sorted and deduped.

    Explicit ``paths`` (CLI operands) override the configured roots; a
    nonexistent operand is a usage error, not an empty result.
    """
    roots = [os.path.join(config.root, p) for p in (paths or config.paths)]
    files: List[str] = []
    for root in roots:
        root = os.path.abspath(root)
        if os.path.isfile(root):
            files.append(root)
        elif os.path.isdir(root):
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__"
                    and not _excluded(_rel_posix(os.path.join(dirpath, d), config.root), config.exclude)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise LintUsageError(f"no such file or directory: {root}")
    unique: List[str] = []
    seen: Set[str] = set()
    for path in files:
        rel = _rel_posix(path, config.root)
        if path in seen or _excluded(rel, config.exclude):
            continue
        seen.add(path)
        unique.append(path)
    return sorted(unique)


def parse_module(path: str, root: str) -> SourceModule:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    return SourceModule(
        path=path,
        rel=_rel_posix(path, root),
        source=source,
        tree=tree,
        suppressions=_scan_suppressions(source),
    )


def run_lint(
    config: LintConfig,
    paths: Optional[Sequence[str]] = None,
    use_baseline: bool = True,
    rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every enabled pass over the configured (or given) paths."""
    load_builtin_passes()
    known = set(registered_passes())
    unknown = sorted(
        {rule for rule in (list(rules or []) + list(config.disable)) if rule not in known}
    )
    if unknown:
        raise LintUsageError(
            "unknown rule id(s): " + ", ".join(unknown)
            + " (run `repro lint --list-rules` for the registry)"
        )
    enabled = {
        rule: cls
        for rule, cls in registered_passes().items()
        if rule not in config.disable and (rules is None or rule in rules)
    }

    modules: List[SourceModule] = []
    raw: List[Finding] = []
    linted_rels: List[str] = []
    for path in discover_files(config, paths):
        linted_rels.append(_rel_posix(path, config.root))
        try:
            modules.append(parse_module(path, config.root))
        except SyntaxError as err:
            raw.append(
                Finding(
                    path=_rel_posix(path, config.root),
                    line=int(err.lineno or 1),
                    col=int(err.offset or 0),
                    rule="parse-error",
                    severity="error",
                    message=f"file does not parse: {err.msg}",
                    hint="fix the syntax error; unparseable files are unlintable",
                )
            )

    module_by_rel = {m.rel: m for m in modules}
    for cls in enabled.values():
        instance = cls()
        for module in modules:
            raw.extend(instance.check_module(module, config))
        raw.extend(instance.check_project(modules, config))
    raw.sort()

    visible: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = module_by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed += 1
        else:
            visible.append(finding)

    baselined = 0
    if use_baseline:
        visible, baselined = match_baseline(visible, config.baseline_path())

    return LintResult(
        findings=visible,
        files_checked=len(modules),
        suppressed=suppressed,
        baselined=baselined,
        raw_findings=raw,
        linted_paths=linted_rels,
    )
