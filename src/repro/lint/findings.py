"""The :class:`Finding` record every lint pass emits.

A finding pins one invariant violation to a source location.  Findings
are value objects: the engine sorts, deduplicates, baselines and
serializes them, so they are frozen and carry a stable :meth:`identity`
(rule, path, message) that survives unrelated line-number drift — the
committed baseline matches on identity, not on line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["Finding", "SEVERITIES"]

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at one source location.

    Attributes
    ----------
    path:
        Project-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Identifier of the pass that fired (e.g. ``"global-rng"``).
    severity:
        ``"error"`` or ``"warning"``.
    message:
        What is wrong, phrased as the violated invariant.
    hint:
        How to fix or suppress it (may be empty).
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str = field(default="error", compare=False)
    message: str = field(default="", compare=False)
    hint: str = field(default="", compare=False)

    def identity(self) -> Tuple[str, str, str]:
        """Baseline-matching key: stable across line-number drift."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def format_text(self) -> str:
        tail = f"  [fix: {self.hint}]" if self.hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule}: {self.message}{tail}"
        )
