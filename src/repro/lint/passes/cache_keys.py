"""Rule ``cache-key-completeness``: keyed dataclasses hash every field.

The content-addressed caches (:class:`repro.parallel.ProfileCache`,
:class:`repro.memo.SimResultCache`) and the grid checkpoint derive their
keys from dataclass *fingerprints*: ``Workload.fingerprint()``,
``ExperimentConfig.fingerprint()``, ``FaultPlan.to_dict()``, and plain
``repr()`` for :class:`~repro.hardware.GPUConfig` and the kernel-spec
types.  A field added to one of these dataclasses but forgotten by its
key function is the worst kind of bug: the cache keeps *hitting* on
entries computed under a different value of the new field — silently
stale results with no crash to notice.

Keyed types are declared in pyproject.toml::

    [[tool.repro.lint.cache-key]]
    path = "src/repro/experiments/runner.py"
    class = "ExperimentConfig"
    key = "fingerprint"            # method name, or "repr"
    exempt = ["tree_cache"]        # fields proven not to affect results

For a method key, every declared field must appear as ``self.<field>``
inside the method (a call to ``dataclasses.fields``/``fields`` makes the
method complete by construction and satisfies all fields).  For a
``repr`` key, no field may opt out via ``field(repr=False)`` — such a
field is invisible to ``repr()`` and thus to the cache key.  Exempt
entries must name real fields, so a rename cannot quietly turn an
exemption into dead config.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Optional, Set

from ..config import CacheKeySpec
from ..findings import Finding
from ..names import dotted_name
from .base import LintPass, register


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    name = None
    if isinstance(annotation, ast.Subscript):
        name = dotted_name(annotation.value)
    else:
        name = dotted_name(annotation)
    return bool(name) and name.rsplit(".", 1)[-1] == "ClassVar"


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Declared field name -> its AnnAssign node, in declaration order."""
    fields: Dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not _is_classvar(stmt.annotation)
        ):
            fields[stmt.target.id] = stmt
    return fields


def _field_call_kwarg(default: Optional[ast.AST], kwarg: str) -> Optional[ast.AST]:
    """The ``kwarg`` value if ``default`` is a ``field(...)`` call."""
    if not isinstance(default, ast.Call):
        return None
    name = dotted_name(default.func)
    if not name or name.rsplit(".", 1)[-1] != "field":
        return None
    for kw in default.keywords:
        if kw.arg == kwarg:
            return kw.value
    return None


def _init_self_fields(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    """``self.x = …`` targets in ``__init__``, for plain keyed classes."""
    fields: Dict[str, ast.AST] = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            for node in ast.walk(stmt):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                        and target.attr not in fields
                    ):
                        fields[target.attr] = node
    return fields


def _referenced_fields(method: ast.AST) -> Set[str]:
    """Names accessed as ``self.<name>`` anywhere inside the method."""
    referenced: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            referenced.add(node.attr)
    return referenced


def _calls_dataclasses_fields(method: ast.AST) -> bool:
    """True when the method enumerates ``dataclasses.fields(...)``.

    ``{f.name: getattr(self, f.name) for f in fields(self)}`` is complete
    by construction — new fields are picked up automatically — so it
    satisfies every declared field.
    """
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.rsplit(".", 1)[-1] == "fields":
                return True
    return False


@register
class CacheKeyCompletenessPass(LintPass):
    rule = "cache-key-completeness"
    description = (
        "every field of a cache-keyed dataclass must be covered by its "
        "key function (or explicitly exempted); a missed field means "
        "silently stale cache hits"
    )

    def check_project(self, modules, config) -> Iterable[Finding]:
        by_rel = {m.rel: m for m in modules}
        for spec in config.cache_keys:
            yield from self._check_spec(spec, by_rel, config)

    def _check_spec(
        self, spec: CacheKeySpec, by_rel, config
    ) -> Iterable[Finding]:
        rel = spec.path.replace(os.sep, "/")
        module = by_rel.get(rel)
        if module is None:
            if os.path.isfile(os.path.join(config.root, rel)):
                # The keyed type's file exists but is not part of this
                # run (explicit path operands): skip, don't cry wolf.
                return
            yield Finding(
                path=rel,
                line=1,
                col=0,
                rule=self.rule,
                severity="error",
                message=f"cache-key spec unresolved: cannot read {rel}",
                hint="fix the 'path' of this [[tool.repro.lint.cache-key]] entry",
            )
            return

        cls = self._find_class(module.tree, spec.cls)
        if cls is None:
            yield self.finding(
                module,
                module.tree,
                f"cache-key spec unresolved: no class {spec.cls!r} in {rel}",
                hint="fix the 'class' of this [[tool.repro.lint.cache-key]] entry",
            )
            return
        is_dataclass = _is_dataclass_decorated(cls)
        if is_dataclass:
            fields = _dataclass_fields(cls)
        else:
            # Plain class: its field set is the ``self.x = …``
            # assignments in ``__init__``.  repr() of a plain class is
            # the default object repr — useless as a cache key.
            if spec.key == "repr":
                yield self.finding(
                    module,
                    cls,
                    f"{spec.cls} is keyed through repr() but is not a "
                    "@dataclass; the default repr carries no field "
                    "values, so every instance would share one key",
                    hint="key it through a fingerprint method instead",
                )
                return
            fields = _init_self_fields(cls)
        for exempt in spec.exempt:
            if exempt not in fields:
                yield self.finding(
                    module,
                    cls,
                    f"cache-key exemption {exempt!r} names no field of "
                    f"{spec.cls}; stale exemptions hide future misses",
                    hint="remove or update the 'exempt' entry in pyproject.toml",
                )

        if spec.key == "repr":
            yield from self._check_repr_keyed(module, spec, cls, fields)
        else:
            yield from self._check_method_keyed(module, spec, cls, fields)

    def _check_repr_keyed(self, module, spec, cls, fields) -> Iterable[Finding]:
        for name, node in fields.items():
            if name in spec.exempt:
                continue
            repr_kw = _field_call_kwarg(node.value, "repr")
            if (
                isinstance(repr_kw, ast.Constant)
                and repr_kw.value is False
            ):
                yield self.finding(
                    module,
                    node,
                    f"{spec.cls}.{name} sets field(repr=False) but "
                    f"{spec.cls} is keyed through repr(); the field is "
                    "invisible to the cache key, so changing it serves "
                    "stale entries",
                    hint="drop repr=False, or exempt the field in the "
                    "cache-key entry with a rationale",
                )

    def _check_method_keyed(self, module, spec, cls, fields) -> Iterable[Finding]:
        method = None
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == spec.key
            ):
                method = stmt
                break
        if method is None:
            yield self.finding(
                module,
                cls,
                f"cache-key spec unresolved: {spec.cls} has no method "
                f"{spec.key!r}",
                hint="fix the 'key' of this [[tool.repro.lint.cache-key]] entry",
            )
            return
        if _calls_dataclasses_fields(method):
            return  # enumerates fields() — complete by construction
        referenced = _referenced_fields(method)
        for name in fields:
            if name in spec.exempt or name in referenced:
                continue
            yield self.finding(
                module,
                method,
                f"{spec.cls}.{name} is not referenced by key function "
                f"{spec.key}(); entries keyed before the field changes "
                "will be served as stale hits",
                hint=f"hash self.{name} inside {spec.key}(), or add the "
                "field to this cache-key entry's 'exempt' list with a "
                "rationale",
            )

    @staticmethod
    def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None
