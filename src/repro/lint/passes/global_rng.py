"""Rule ``global-rng``: every random draw must be explicitly seeded.

Bit-identical reproduction (the paper's trustworthiness claim rests on
deterministic sampling) requires all randomness to flow through
explicitly-seeded ``np.random.default_rng`` generators threaded through
call signatures.  This rule forbids the two ways hidden global state
sneaks in:

* **module-state RNGs** — any call into ``numpy.random`` other than the
  explicit-generator constructors (``default_rng``, ``Generator``, bit
  generators, ``SeedSequence``), and any use of the stdlib ``random``
  module at all;
* **seedless generators** — ``default_rng()`` or ``default_rng(None)``,
  which draw OS entropy and differ run to run.

Annotations like ``np.random.Generator`` are attribute accesses, not
calls, and are always allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintPass, register

#: Explicit-construction entry points under numpy.random that are fine.
_ALLOWED_NUMPY_RANDOM = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}


def _is_seedless(call: ast.Call) -> bool:
    if call.keywords:
        # default_rng(seed=...) — treat any keyword form as seeded unless
        # it is literally seed=None.
        for kw in call.keywords:
            if kw.arg == "seed":
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        return False
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


@register
class GlobalRngPass(LintPass):
    rule = "global-rng"
    description = (
        "forbid module-state RNGs (np.random.*, stdlib random) and "
        "seedless default_rng(); determinism needs explicit seeded generators"
    )

    def check_module(self, module, config) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "random":
                        yield self.finding(
                            module,
                            node,
                            "stdlib 'random' module is banned: its global "
                            "state breaks bit-identical runs",
                            hint="use np.random.default_rng(seed) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if not node.level and (node.module or "").split(".", 1)[0] == "random":
                    yield self.finding(
                        module,
                        node,
                        "importing from stdlib 'random' is banned: its "
                        "global state breaks bit-identical runs",
                        hint="use np.random.default_rng(seed) instead",
                    )
            elif isinstance(node, ast.Call):
                resolved = module.imports.resolve_call(node)
                if resolved is None:
                    continue
                if resolved == "numpy.random.default_rng" and _is_seedless(node):
                    yield self.finding(
                        module,
                        node,
                        "seedless default_rng() draws OS entropy and is "
                        "nondeterministic",
                        hint="pass an explicit seed: default_rng(seed)",
                    )
                elif (
                    resolved.startswith("numpy.random.")
                    and resolved not in _ALLOWED_NUMPY_RANDOM
                ):
                    yield self.finding(
                        module,
                        node,
                        f"call to module-state RNG '{resolved}' bypasses "
                        "explicit seeding",
                        hint="draw from a seeded np.random.default_rng(seed) "
                        "generator threaded through the call signature",
                    )
                elif resolved.startswith("random."):
                    yield self.finding(
                        module,
                        node,
                        f"call to stdlib global RNG '{resolved}' is "
                        "nondeterministic across runs",
                        hint="use a seeded np.random.default_rng(seed) generator",
                    )
