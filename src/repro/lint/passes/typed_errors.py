"""Rule ``typed-errors``: expected failures raise the ReproError hierarchy.

PR 2 introduced :mod:`repro.errors` precisely because orchestration code
that catches generic ``RuntimeError`` relabels *any* runtime bug as an
expected, handled condition (the runner once reported real crashes as
"profiling infeasible").  This rule keeps the hierarchy load-bearing:

* ``raise RuntimeError(...)`` / ``raise Exception(...)`` are forbidden —
  expected failures get a :class:`~repro.errors.ReproError` subclass,
  programming errors get a precise builtin (``ValueError``,
  ``KeyError``, ``TypeError``);
* bare ``except:`` is forbidden — it swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides the actual failure type.  Catch the typed
  error you can handle (``except BaseException: ... raise`` cleanup
  blocks that re-raise are still bare-``except``-free and allowed).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from .base import LintPass, register

_GENERIC_RAISES = {"RuntimeError", "Exception"}


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""


@register
class TypedErrorsPass(LintPass):
    rule = "typed-errors"
    description = (
        "forbid 'raise RuntimeError/Exception' and bare 'except:'; "
        "expected failures must use the repro.errors.ReproError hierarchy"
    )

    def check_module(self, module, config) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in _GENERIC_RAISES:
                    yield self.finding(
                        module,
                        node,
                        f"'raise {name}' hides the failure class; callers "
                        "cannot catch it without also catching real bugs",
                        hint="raise a repro.errors.ReproError subclass for "
                        "expected failures, or a precise builtin "
                        "(ValueError/KeyError/TypeError) for bugs",
                    )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit "
                    "and every bug",
                    hint="catch the typed errors this code can actually "
                    "handle (see repro.errors)",
                )
