"""Rule ``unordered-iteration``: no set-order dependence in key functions.

Fingerprint and serialization functions feed hashes, cache keys and
checkpoint records; anything order-dependent inside them must iterate in
a deterministic order.  Python sets iterate in *hash* order, which for
strings varies with ``PYTHONHASHSEED`` — iterating a set inside a
fingerprint function therefore produces a different hash per process,
which defeats the cache (spurious misses) or, worse, collides distinct
states.  Dicts preserve insertion order and are fine.

The rule fires inside functions whose name matches the configured
``key_functions`` patterns (default: ``fingerprint``/``*_fingerprint``,
``key_for``/``context_for``, ``_meta``, ``to_dict``/``as_dict``,
``memo_identity``) when a set literal, set comprehension or ``set()``/
``frozenset()`` call is iterated — as a ``for`` target, a comprehension
source, or an argument to ``join``/``list``/``tuple``.  Wrapping the set
in ``sorted(...)`` restores a deterministic order and is the idiomatic
fix.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable

from ..findings import Finding
from ..names import dotted_name
from .base import LintPass, register

_DEFAULT_KEY_FUNCTIONS = (
    "fingerprint",
    "*_fingerprint",
    "key_for",
    "context_for",
    "_meta",
    "to_dict",
    "as_dict",
    "memo_identity",
)

#: Order-sensitive consumers: feeding them a set leaks hash order.
_ORDER_SENSITIVE_CALLS = {"join", "list", "tuple"}


def _is_unordered(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        return callee in {"set", "frozenset"}
    return False


@register
class UnorderedIterationPass(LintPass):
    rule = "unordered-iteration"
    severity = "error"
    description = (
        "forbid iterating sets inside fingerprint/serialization "
        "functions; set order is per-process hash order and poisons keys"
    )

    def check_module(self, module, config) -> Iterable[Finding]:
        patterns = tuple(
            str(p)
            for p in config.options_for(self.rule).get(
                "key_functions", _DEFAULT_KEY_FUNCTIONS
            )
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(fnmatch.fnmatch(node.name, pat) for pat in patterns):
                continue
            yield from self._check_function(module, node)

    def _check_function(self, module, fn: ast.AST) -> Iterable[Finding]:
        name = fn.name
        for node in ast.walk(fn):
            sources = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                sources.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    short = func.attr  # covers "sep".join(...) too
                elif isinstance(func, ast.Name):
                    short = func.id
                else:
                    short = ""
                if short in _ORDER_SENSITIVE_CALLS:
                    sources.extend(node.args)
            for source in sources:
                if _is_unordered(source):
                    yield self.finding(
                        module,
                        source,
                        f"key function '{name}' iterates a set; set order "
                        "is per-process hash order, so the derived "
                        "key/serialization is not reproducible",
                        hint="iterate sorted(<set>) or restructure around "
                        "an insertion-ordered dict/list",
                    )
