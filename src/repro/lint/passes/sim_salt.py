"""Rule ``sim-version-salt``: simulator changes must bump ``SIM_VERSION``.

:data:`repro.memo.sim_cache.SIM_VERSION` salts every cache key so that
raw simulation results computed by an older simulator can never be
replayed against a newer one.  The salt only works if someone remembers
to bump it — which is exactly the kind of invariant a linter should
carry, not a reviewer.

The rule keeps a committed *salt manifest* (JSON: the ``SIM_VERSION``
value plus a sha256 per watched file) recording the simulator tree as it
was when the salt was last reviewed.  On every lint run:

* a watched module missing from the manifest is flagged (new simulator
  code nobody reviewed for cache impact);
* a watched module whose hash differs from the manifest is flagged —
  either the change is result-neutral (refresh the manifest with
  ``repro lint --update-sim-salt``) or it is not (bump ``SIM_VERSION``,
  *then* refresh);
* a manifest recorded under a different ``SIM_VERSION`` than the
  current one is stale as a whole and must be refreshed.

Config (the rule is active only when this table exists)::

    [tool.repro.lint.sim-version-salt]
    manifest = "sim-salt.json"
    watch = ["src/repro/sim"]
    version-source = "src/repro/memo/sim_cache.py"
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import LintConfig
from ..findings import Finding
from .base import LintPass, register

__all__ = ["SimVersionSaltPass", "update_salt_manifest"]

_MANIFEST_VERSION = 1


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            h.update(chunk)
    return h.hexdigest()


def _watched_files(config: LintConfig, watch: List[str]) -> List[str]:
    """Root-relative POSIX paths of every watched .py file, sorted."""
    out: List[str] = []
    for entry in watch:
        absolute = os.path.join(config.root, entry)
        if os.path.isfile(absolute):
            out.append(entry.replace(os.sep, "/"))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    rel = os.path.relpath(
                        os.path.join(dirpath, name), config.root
                    )
                    out.append(rel.replace(os.sep, "/"))
    return sorted(set(out))


def _current_sim_version(config: LintConfig, source_rel: str) -> Optional[int]:
    """The ``SIM_VERSION = <int>`` constant in the version-source file."""
    path = os.path.join(config.root, source_rel)
    if not os.path.isfile(path):
        return None
    try:
        tree = ast.parse(open(path, "r", encoding="utf-8").read())
    except SyntaxError:
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "SIM_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
    return None


def _salt_options(config: LintConfig) -> Optional[Tuple[str, List[str], str]]:
    options = config.options_for("sim-version-salt")
    if not options:
        return None
    manifest = str(options.get("manifest", "sim-salt.json"))
    watch = [str(p) for p in options.get("watch", ["src/repro/sim"])]
    version_source = str(
        options.get("version-source", "src/repro/memo/sim_cache.py")
    )
    return manifest, watch, version_source


def update_salt_manifest(config: LintConfig) -> Tuple[str, int]:
    """Rewrite the manifest from the current tree; returns (path, count)."""
    resolved = _salt_options(config)
    if resolved is None:
        from ..config import LintUsageError

        raise LintUsageError(
            "--update-sim-salt needs a [tool.repro.lint.sim-version-salt] "
            "table in pyproject.toml"
        )
    manifest_rel, watch, version_source = resolved
    files = _watched_files(config, watch)
    payload = {
        "manifest_version": _MANIFEST_VERSION,
        "sim_version": _current_sim_version(config, version_source),
        "files": {
            rel: _sha256_file(os.path.join(config.root, rel)) for rel in files
        },
    }
    manifest_path = os.path.join(config.root, manifest_rel)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest_path, len(files)


@register
class SimVersionSaltPass(LintPass):
    rule = "sim-version-salt"
    description = (
        "watched simulator modules must match the committed SIM_VERSION "
        "salt manifest; a changed simulator with an unbumped salt can "
        "replay stale cached results"
    )

    def check_project(self, modules, config: LintConfig) -> Iterable[Finding]:
        resolved = _salt_options(config)
        if resolved is None:
            return  # rule inactive without config
        manifest_rel, watch, version_source = resolved
        manifest_path = os.path.join(config.root, manifest_rel)
        module_by_rel = {m.rel: m for m in modules}

        if not os.path.isfile(manifest_path):
            anchor = self._anchor(module_by_rel, watch)
            if anchor is not None:
                yield self.finding(
                    anchor,
                    anchor.tree,
                    f"sim-version salt manifest {manifest_rel} does not "
                    "exist; simulator changes cannot be checked against "
                    "the cache salt",
                    hint="run `repro lint --update-sim-salt` and commit "
                    "the manifest",
                )
            return

        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            recorded_files: Dict[str, str] = dict(manifest.get("files", {}))
            recorded_version = manifest.get("sim_version")
        except (ValueError, OSError):
            anchor = self._anchor(module_by_rel, watch)
            if anchor is not None:
                yield self.finding(
                    anchor,
                    anchor.tree,
                    f"sim-version salt manifest {manifest_rel} is "
                    "unreadable",
                    hint="regenerate it with `repro lint --update-sim-salt`",
                )
            return

        current_version = _current_sim_version(config, version_source)
        version_stale = (
            current_version is not None and recorded_version != current_version
        )

        for rel in _watched_files(config, watch):
            module = module_by_rel.get(rel)
            if module is None:
                continue  # partial run: this file is not being linted
            recorded = recorded_files.get(rel)
            if recorded is None:
                yield self.finding(
                    module,
                    module.tree,
                    f"{rel} is under a SIM_VERSION-salted tree but absent "
                    f"from {manifest_rel}; its changes would never prompt "
                    "a salt review",
                    hint="run `repro lint --update-sim-salt` (bump "
                    "SIM_VERSION first if raw outputs changed)",
                )
                continue
            actual = _sha256_file(module.path)
            if actual != recorded:
                yield self.finding(
                    module,
                    module.tree,
                    f"{rel} changed since the salt manifest was recorded "
                    f"(SIM_VERSION {recorded_version}); stale cache "
                    "entries may replay against the new simulator",
                    hint="if raw simulation outputs changed, bump "
                    "SIM_VERSION in repro/memo/sim_cache.py; then run "
                    "`repro lint --update-sim-salt` to re-record",
                )
            elif version_stale:
                yield self.finding(
                    module,
                    module.tree,
                    f"salt manifest {manifest_rel} was recorded under "
                    f"SIM_VERSION {recorded_version} but the code says "
                    f"{current_version}; the manifest is stale",
                    hint="run `repro lint --update-sim-salt` to re-record "
                    "under the current SIM_VERSION",
                )
                return  # one finding is enough for a stale manifest

    @staticmethod
    def _anchor(module_by_rel, watch: List[str]):
        """Some watched module to anchor manifest-level findings at."""
        for rel in sorted(module_by_rel):
            for entry in watch:
                prefix = entry.replace(os.sep, "/").rstrip("/") + "/"
                if rel == entry or rel.startswith(prefix):
                    return module_by_rel[rel]
        return None
