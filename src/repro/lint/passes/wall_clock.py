"""Rule ``wall-clock``: no ambient nondeterminism outside the allowlist.

Results, cache keys, fingerprints and checkpoints must depend only on
explicit inputs.  Wall-clock reads (``time.time``, ``datetime.now``),
OS entropy (``os.urandom``) and UUIDs are ambient state: two identical
runs observe different values, which silently poisons anything they
touch.  Monotonic timers (``time.perf_counter``/``monotonic``) are fine
— they measure durations, they don't stamp results.

The observability layer legitimately needs one wall-clock epoch to
rebase worker traces; such sanctioned sites either live in a file listed
in the rule's ``allow`` config or carry an inline
``# repro-lint: disable=wall-clock`` suppression with a rationale.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable

from ..findings import Finding
from .base import LintPass, register

#: Ambient-state calls forbidden by default.  ``datetime.datetime.now``
#: covers ``from datetime import datetime; datetime.now()`` after import
#: resolution; naming the class path also catches ``import datetime``.
_FORBIDDEN = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}


@register
class WallClockPass(LintPass):
    rule = "wall-clock"
    description = (
        "forbid wall-clock/OS-entropy reads (time.time, datetime.now, "
        "os.urandom, uuid4) outside the configured allowlist"
    )

    def check_module(self, module, config) -> Iterable[Finding]:
        options = config.options_for(self.rule)
        allow = [str(p) for p in options.get("allow", [])]
        if any(fnmatch.fnmatch(module.rel, pattern) for pattern in allow):
            return
        forbidden = _FORBIDDEN | {str(f) for f in options.get("forbid", [])}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve_call(node)
            if resolved in forbidden:
                yield self.finding(
                    module,
                    node,
                    f"'{resolved}' reads ambient wall-clock/OS state; "
                    "results must depend only on explicit inputs",
                    hint="use a monotonic timer for durations, or pass the "
                    "value in; sanctioned sites add "
                    "'# repro-lint: disable=wall-clock' with a rationale",
                )
