"""Built-in lint passes and their registry.

Importing this package is side-effect free; :func:`load_builtin_passes`
imports every built-in rule module exactly once, which registers each
pass class via the :func:`~repro.lint.passes.base.register` decorator.
Third-party or test-local passes can call ``register`` directly.
"""

from __future__ import annotations

from .base import LintPass, register, registered_passes

__all__ = ["LintPass", "load_builtin_passes", "register", "registered_passes"]

_LOADED = False


def load_builtin_passes() -> None:
    """Import (and thereby register) every built-in rule module."""
    global _LOADED
    if _LOADED:
        return
    from . import (  # noqa: F401  (imported for registration side effect)
        cache_keys,
        global_rng,
        pool_safety,
        sim_salt,
        typed_errors,
        unordered_iter,
        wall_clock,
    )

    _LOADED = True
