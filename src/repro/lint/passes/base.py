"""Lint pass protocol and registry.

A pass is a class with a ``rule`` id and one or both hooks:

* :meth:`LintPass.check_module` — called once per parsed file, for
  purely local rules (RNG discipline, wall-clock bans, raise hygiene);
* :meth:`LintPass.check_project` — called once with every parsed file,
  for cross-file rules (cache-key completeness needs the dataclass and
  its key function, which may live in different modules).

Passes register themselves with :func:`register`; the engine
instantiates every registered pass per run, so passes may keep per-run
state but must not keep cross-run state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Type

from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import LintConfig
    from ..engine import SourceModule

__all__ = ["LintPass", "register", "registered_passes"]

_REGISTRY: Dict[str, Type["LintPass"]] = {}


def register(cls: Type["LintPass"]) -> Type["LintPass"]:
    """Class decorator adding a pass to the global registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} must set a non-empty rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.rule!r}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_passes() -> Dict[str, Type["LintPass"]]:
    """Rule id -> pass class, in registration order."""
    return dict(_REGISTRY)


class LintPass:
    """Base class of every lint rule."""

    #: Rule id used in reports, config tables and suppression comments.
    rule: str = ""
    #: Default severity of this rule's findings.
    severity: str = "error"
    #: One-line summary of the invariant the rule protects.
    description: str = ""

    def check_module(
        self, module: "SourceModule", config: "LintConfig"
    ) -> Iterable[Finding]:
        return ()

    def check_project(
        self, modules: List["SourceModule"], config: "LintConfig"
    ) -> Iterable[Finding]:
        return ()

    # -- helpers shared by concrete passes ---------------------------------
    def finding(
        self,
        module: "SourceModule",
        node,
        message: str,
        hint: str = "",
        severity: str = "",
    ) -> Finding:
        """Build a finding anchored at an AST node of ``module``."""
        return Finding(
            path=module.rel,
            line=int(getattr(node, "lineno", 1) or 1),
            col=int(getattr(node, "col_offset", 0) or 0),
            rule=self.rule,
            severity=severity or self.severity,
            message=message,
            hint=hint,
        )
