"""Rule ``pool-safety``: task functions handed to the pool must pickle.

:func:`repro.parallel.run_tasks` ships its ``worker`` callable to
process-pool workers by pickling it **by qualified name**.  Lambdas,
functions defined inside other functions, and the closures they form
have no importable qualified name — they work by accident under the
``fork`` start method (the child inherits the parent's memory) and
explode with ``PicklingError`` under ``spawn`` (macOS/Windows default).
Since ``run_tasks`` promises "any worker count or platform produces the
same values", only module-level functions are legal task callables.

The check covers the ``worker`` argument of ``run_tasks`` and any
callable literal handed to ``execute_grid``; parent-side callbacks such
as ``on_result`` never cross the process boundary and stay unrestricted.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from ..findings import Finding
from ..names import dotted_name
from .base import LintPass, register

_POOL_ENTRYPOINTS = {"run_tasks", "execute_grid"}


def _called_name(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    return dotted.rsplit(".", 1)[-1]


def _nested_defs(tree: ast.Module) -> Dict[str, ast.AST]:
    """Names of functions defined inside another function or lambda.

    A name that *also* has a module-level def is excluded: a bare-name
    reference to it at a pool call site resolves to the (picklable)
    module-level function, not to some other function's local of the
    same name, so flagging it would be a false positive.
    """
    nested: Dict[str, ast.AST] = {}
    toplevel: set = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn:
                if inside_function:
                    nested[child.name] = child
                elif isinstance(node, ast.Module):
                    toplevel.add(child.name)
            walk(child, inside_function or is_fn or isinstance(child, ast.Lambda))

    walk(tree, inside_function=False)
    return {name: node for name, node in nested.items() if name not in toplevel}


@register
class PoolSafetyPass(LintPass):
    rule = "pool-safety"
    description = (
        "forbid lambdas, nested functions and closures as pool task "
        "callables (run_tasks/execute_grid); spawn-start pickling needs "
        "module-level functions"
    )

    def check_module(self, module, config) -> Iterable[Finding]:
        nested = _nested_defs(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name not in _POOL_ENTRYPOINTS:
                continue
            candidates = []
            if name == "run_tasks":
                if node.args:
                    candidates.append(("worker", node.args[0]))
                candidates.extend(
                    (kw.arg, kw.value) for kw in node.keywords if kw.arg == "worker"
                )
            else:  # execute_grid: no worker parameter, but no callable
                # literal in any argument may cross the pool boundary.
                candidates.extend(
                    (kw.arg or "*args", kw.value)
                    for kw in node.keywords
                    if isinstance(kw.value, ast.Lambda)
                )
                candidates.extend(
                    ("positional", arg)
                    for arg in node.args
                    if isinstance(arg, ast.Lambda)
                )
            for role, value in candidates:
                yield from self._check_callable(module, name, role, value, nested)

    def _check_callable(
        self, module, entrypoint: str, role: str, value: ast.AST, nested
    ) -> Iterable[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                module,
                value,
                f"lambda passed as {role} to {entrypoint}() cannot be "
                "pickled to spawn-start pool workers",
                hint="define a module-level function and pass it by name",
            )
        elif isinstance(value, ast.Name) and value.id in nested:
            yield self.finding(
                module,
                value,
                f"nested function '{value.id}' passed as {role} to "
                f"{entrypoint}() is a closure with no importable qualified "
                "name and cannot be pickled to pool workers",
                hint="hoist it to module level and pass state through the "
                "payloads instead of captured variables",
            )
