"""STEM+ROOT core: statistical error modeling and hierarchical clustering."""

from .bootstrap import BootstrapInterval, bootstrap_estimate
from .budget import BudgetPlan, epsilon_for_budget, plan_for_budget
from .clustering import KMeansResult, count_kde_peaks, kmeans, kmeans_1d, silhouette_score
from .error_model import (
    combine_fidelity_bound,
    plan_error_bound,
    union_error_bound,
    verify_fidelity_bound,
    verify_union_theorem,
)
from .fidelity import (
    FIDELITY_MODES,
    FidelityPolicy,
    FidelityTimes,
    fidelity_cycle_counts,
    probe_indices,
    tail_gap,
)
from .estimator import (
    SampledSimulationResult,
    estimate_metrics,
    evaluate_plan,
    metric_error_percents,
    sampling_error_percent,
)
from .plan import PlanCluster, SamplingPlan
from .report import ClusterReport, SamplingReport, build_report
from .root import RootCluster, RootConfig, RootTreeNode, root_split
from .sampler import LabeledCluster, StemRootSampler
from .streaming import Reservoir, StreamingProfile, WelfordAccumulator
from .stem import (
    DEFAULT_EPSILON,
    DEFAULT_Z,
    ClusterStats,
    error_bound_satisfied,
    kkt_sample_sizes,
    per_cluster_sample_sizes,
    predicted_error_multi,
    predicted_error_single,
    predicted_simulated_time,
    single_cluster_sample_size,
    z_score,
)

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_Z",
    "ClusterStats",
    "z_score",
    "single_cluster_sample_size",
    "predicted_error_single",
    "kkt_sample_sizes",
    "per_cluster_sample_sizes",
    "predicted_error_multi",
    "predicted_simulated_time",
    "error_bound_satisfied",
    "RootConfig",
    "RootCluster",
    "RootTreeNode",
    "root_split",
    "KMeansResult",
    "kmeans",
    "kmeans_1d",
    "count_kde_peaks",
    "silhouette_score",
    "PlanCluster",
    "SamplingPlan",
    "StemRootSampler",
    "LabeledCluster",
    "SampledSimulationResult",
    "evaluate_plan",
    "estimate_metrics",
    "metric_error_percents",
    "sampling_error_percent",
    "plan_error_bound",
    "ClusterReport",
    "SamplingReport",
    "build_report",
    "BootstrapInterval",
    "BudgetPlan",
    "epsilon_for_budget",
    "plan_for_budget",
    "bootstrap_estimate",
    "StreamingProfile",
    "WelfordAccumulator",
    "Reservoir",
    "union_error_bound",
    "verify_union_theorem",
    "combine_fidelity_bound",
    "verify_fidelity_bound",
    "FIDELITY_MODES",
    "FidelityPolicy",
    "FidelityTimes",
    "fidelity_cycle_counts",
    "probe_indices",
    "tail_gap",
]
